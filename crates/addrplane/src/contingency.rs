//! The bitwise 2^t contingency kernel.
//!
//! The per-address way to build a capture-history table walks the union
//! of `t` source sets and probes each source per address — `O(union·t)`
//! set probes. Over bitmap planes the same table is a word problem: for
//! every 64-address word shared by any source, split the word's union
//! recursively by "in source *i*" / "not in source *i*" and popcount
//! the surviving bits at the leaves. Each leaf's accumulated mask *is*
//! the capture history, so `counts[mask] += popcount(acc)` builds all
//! `2^t` cells in one pass with no per-address loop. Branches whose
//! accumulator goes empty are pruned, which collapses the `2^t` factor
//! on sparse overlap.
//!
//! Cell 0 (the unobservable ghost cell) is structurally zero: every bit
//! fed to the recursion belongs to at least one source, so the all-"not
//! in" path always carries an empty accumulator.

use crate::plane::AddrPlane;
use std::collections::BTreeSet;

/// Maximum number of sources a contingency build accepts; mirrors
/// `ghosts_core::MAX_SOURCES` (the `2^t` cell count makes larger `t`
/// statistically meaningless).
pub const MAX_SOURCES: usize = 16;

/// Builds the `2^t` capture-history cell counts for `t` source planes.
///
/// `counts[mask]` is the number of addresses whose per-source
/// membership pattern is exactly `mask` (bit `i` ⇔ present in
/// `planes[i]`); `counts[0]` is always zero. The result is
/// bit-identical to iterating the union and probing each source per
/// address, because both compute the same exact partition.
///
/// # Panics
///
/// Panics unless `1 <= planes.len() <= MAX_SOURCES`.
pub fn contingency_counts(planes: &[&AddrPlane]) -> Vec<u64> {
    let t = planes.len();
    assert!(
        (1..=MAX_SOURCES).contains(&t),
        "contingency_counts: t = {t} out of range"
    );
    // Words with at most this many union bits take the per-bit path: a
    // handful of shift/mask ops per address beats the recursion's call
    // tree when almost every leaf would be empty anyway.
    const SPARSE_BITS: u32 = 8;
    let mut counts = vec![0u64; 1usize << t];
    let mut keys: BTreeSet<u8> = BTreeSet::new();
    for p in planes {
        keys.extend(p.segment_keys());
    }
    for key in keys {
        // Resolve each present source to its raw word slice once per
        // segment; the word loop then runs on plain slice loads.
        let mut srcs: Vec<(usize, &[u64])> = Vec::with_capacity(t);
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for (i, p) in planes.iter().enumerate() {
            if let Some(seg) = p.segment(key) {
                let span = seg.word_span();
                lo = lo.min(span.start);
                hi = hi.max(span.end);
                srcs.push((i, seg.words_all()));
            }
        }
        // Fresh buffer per segment: sources absent from this /8 must not
        // see stale words from the previous one.
        let mut words = [0u64; MAX_SOURCES];
        for wi in lo..hi {
            let mut union = 0u64;
            for &(i, bits) in &srcs {
                let w = bits.get(wi).copied().unwrap_or(0);
                if let Some(slot) = words.get_mut(i) {
                    *slot = w;
                }
                union |= w;
            }
            if union == 0 {
                continue;
            }
            if union.count_ones() <= SPARSE_BITS {
                let mut rem = union;
                while rem != 0 {
                    let b = rem.trailing_zeros();
                    rem &= rem - 1;
                    let mut mask = 0usize;
                    for (i, w) in words.iter().enumerate().take(t) {
                        mask |= (((w >> b) & 1) as usize) << i;
                    }
                    if let Some(cell) = counts.get_mut(mask) {
                        *cell += 1;
                    }
                }
            } else {
                split(words.get(..t).unwrap_or(&[]), union, 0, 1, &mut counts);
            }
        }
    }
    counts
}

/// Recursive source-by-source refinement of one word. `acc` holds the
/// bits still matching the history prefix encoded in `mask`; `bit` is
/// the mask bit of the next source to split on.
fn split(words: &[u64], acc: u64, mask: usize, bit: usize, counts: &mut [u64]) {
    if acc == 0 {
        return;
    }
    match words.split_first() {
        None => {
            if let Some(cell) = counts.get_mut(mask) {
                *cell += u64::from(acc.count_ones());
            }
        }
        Some((&w, rest)) => {
            split(rest, acc & w, mask | bit, bit << 1, counts);
            split(rest, acc & !w, mask, bit << 1, counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-address reference: iterate the union, probe each source.
    fn reference(planes: &[&AddrPlane]) -> Vec<u64> {
        let mut union = AddrPlane::new();
        for p in planes {
            union.union_with(p);
        }
        let mut counts = vec![0u64; 1usize << planes.len()];
        for addr in union.iter() {
            let mut mask = 0usize;
            for (i, p) in planes.iter().enumerate() {
                if p.contains(addr) {
                    mask |= 1 << i;
                }
            }
            counts[mask] += 1;
        }
        counts
    }

    #[test]
    fn matches_reference_on_small_overlap() {
        let a: AddrPlane = [1u32, 2, 3, 0x0900_0000].into_iter().collect();
        let b: AddrPlane = [2u32, 3, 4].into_iter().collect();
        let c: AddrPlane = [3u32, 4, 0xff00_0001].into_iter().collect();
        let planes = [&a, &b, &c];
        assert_eq!(contingency_counts(&planes), reference(&planes));
    }

    #[test]
    fn ghost_cell_is_structurally_zero_and_totals_add_up() {
        let a: AddrPlane = (0u32..1000).collect();
        let b: AddrPlane = (500u32..1500).collect();
        let counts = contingency_counts(&[&a, &b]);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[0b01], 500);
        assert_eq!(counts[0b10], 500);
        assert_eq!(counts[0b11], 500);
    }

    #[test]
    fn single_source_counts_itself() {
        let a: AddrPlane = [7u32, 8, u32::MAX].into_iter().collect();
        assert_eq!(contingency_counts(&[&a]), vec![0, 3]);
    }

    #[test]
    fn segment_straddling_sources_match_reference() {
        // Sources spanning several /8s with boundary addresses.
        let a: AddrPlane = [0u32, (1 << 24) - 1, 1 << 24, u32::MAX]
            .into_iter()
            .collect();
        let b: AddrPlane = [(1u32 << 24) - 1, 1 << 24, 0x7f00_0001]
            .into_iter()
            .collect();
        let planes = [&a, &b];
        assert_eq!(contingency_counts(&planes), reference(&planes));
    }

    #[test]
    #[should_panic]
    fn zero_sources_rejected() {
        contingency_counts(&[]);
    }
}
