//! # ghosts-addrplane
//!
//! A dependency-free bitmap plane over the full IPv4 space for the
//! *Capturing Ghosts* reproduction (Zander, Andrew & Armitage, IMC
//! 2014). One bit per address, 2 MiB segments allocated lazily on the
//! first set bit, and every data structure iterates in ascending
//! address order by construction:
//!
//! * [`AddrPlane`] — the segmented bitmap with word-wise boolean
//!   kernels (AND/OR/XOR/AND-NOT), popcounts per arbitrary range or
//!   prefix, bulk word ingest, and a set-bit iterator.
//! * [`contingency_counts`] — the bitwise 2^t kernel: all
//!   capture-history cells of `t` source planes from one walk over
//!   their shared words, bit-identical to the per-address construction.
//! * [`PrefixPlane`] — a compact index-based binary trie answering
//!   longest-prefix match and per-prefix covered-address counts for
//!   routing and truncation.
//!
//! The crate sits at the bottom of the workspace stack (below
//! `ghosts-net`) and deliberately depends on nothing, so every layer —
//! sets, pipelines, the estimator, the simulator, and the server — can
//! share one address-plane substrate without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contingency;
pub mod plane;
pub mod prefix;

pub use contingency::{contingency_counts, MAX_SOURCES};
pub use plane::{AddrPlane, SEG_BITS, SEG_WORDS};
pub use prefix::PrefixPlane;
