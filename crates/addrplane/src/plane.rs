//! The segmented bitmap over the full IPv4 space.
//!
//! One bit per address, grouped into 2 MiB segments covering one /8 each.
//! Segments are allocated lazily on first set bit, and the segment
//! directory is a `BTreeMap` so every walk over the plane visits
//! segments in ascending address order by construction — no iteration
//! nondeterminism can reach derived output.
//!
//! Two properties keep resident memory proportional to the *touched*
//! address space rather than the allocated one:
//!
//! * a fresh segment comes from `vec![0u64; SEG_WORDS]`, which the
//!   allocator services with zeroed (copy-on-write) pages — pages no
//!   kernel ever writes stay non-resident;
//! * every segment tracks the word range it has ever touched, and all
//!   kernels (union, intersect, subtract, xor, popcounts, iteration)
//!   confine their scans to that range.

use std::collections::BTreeMap;
use std::ops::Range;

/// Bits per segment: one /8 of address space.
pub const SEG_BITS: usize = 1 << 24;
/// Words per segment (2 MiB of `u64`s).
pub const SEG_WORDS: usize = SEG_BITS / 64;

/// Word index of `addr` within its segment.
fn word_index(addr: u32) -> usize {
    ((addr >> 6) & 0x3_ffff) as usize
}

/// Segment key (first octet) of `addr`.
fn seg_key(addr: u32) -> u8 {
    (addr >> 24) as u8
}

/// Single-bit mask for `addr` within its word.
fn bit_mask(addr: u32) -> u64 {
    // lint: allow(counting-overflow) shift amount is masked below 64
    1u64 << (addr & 63)
}

/// Mask with bits `bit..64` set.
fn low_mask(bit: u32) -> u64 {
    // lint: allow(counting-overflow) callers pass bit < 64
    u64::MAX << bit
}

/// Mask with bits `0..=bit` set.
fn high_mask(bit: u32) -> u64 {
    u64::MAX >> (63 - bit)
}

/// First and last address of the prefix `base/len` (`len >= 1`).
fn prefix_bounds(base: u32, len: u8) -> (u32, u32) {
    debug_assert!((1..=32).contains(&len), "prefix_bounds: len {len}");
    let mask = if len >= 32 {
        u32::MAX
    } else {
        !(u32::MAX >> len)
    };
    (base & mask, (base & mask) | !mask)
}

/// One lazily allocated /8 worth of bits.
pub(crate) struct Segment {
    /// Always `SEG_WORDS` long; allocated zeroed so untouched pages stay
    /// copy-on-write references to the shared zero page.
    bits: Vec<u64>,
    /// Number of set bits.
    count: u64,
    /// Touched word range `lo..=hi` (an over-approximation that never
    /// shrinks); `lo == u32::MAX` means nothing was ever touched.
    lo: u32,
    hi: u32,
}

impl Segment {
    fn new() -> Self {
        Segment {
            bits: vec![0u64; SEG_WORDS],
            count: 0,
            lo: u32::MAX,
            hi: 0,
        }
    }

    /// The touched word range, as a half-open slice range.
    fn span(&self) -> Range<usize> {
        if self.lo == u32::MAX {
            0..0
        } else {
            self.lo as usize..self.hi as usize + 1
        }
    }

    fn touch(&mut self, wi: usize) {
        self.lo = self.lo.min(wi as u32);
        self.hi = self.hi.max(wi as u32);
    }

    fn touch_range(&mut self, lo: u32, hi: u32) {
        self.lo = self.lo.min(lo);
        self.hi = self.hi.max(hi);
    }

    /// The words of the touched range.
    fn words(&self) -> &[u64] {
        self.bits.get(self.span()).unwrap_or(&[])
    }

    /// Single word read; out-of-range reads are zero (cannot happen for
    /// in-segment indices, but total reads keep every caller panic-free).
    pub(crate) fn word(&self, wi: usize) -> u64 {
        self.bits.get(wi).copied().unwrap_or(0)
    }

    /// The segment's touched span as word indices (for kernel walks).
    pub(crate) fn word_span(&self) -> Range<usize> {
        self.span()
    }

    /// The full `SEG_WORDS`-long backing slice, for kernels that index
    /// words directly instead of paying `word()`'s per-call bounds logic.
    pub(crate) fn words_all(&self) -> &[u64] {
        &self.bits
    }

    /// Set bits among bit positions `start..=end` (segment-local).
    fn count_bits(&self, start: usize, end: usize) -> u64 {
        let (sw, sb) = (start / 64, (start % 64) as u32);
        let (ew, eb) = (end / 64, (end % 64) as u32);
        if sw == ew {
            return u64::from((self.word(sw) & low_mask(sb) & high_mask(eb)).count_ones());
        }
        let mut total = u64::from((self.word(sw) & low_mask(sb)).count_ones());
        let span = self.span();
        let from = span.start.max(sw + 1);
        let to = span.end.min(ew);
        for w in self.bits.get(from..to).unwrap_or(&[]) {
            total += u64::from(w.count_ones());
        }
        total + u64::from((self.word(ew) & high_mask(eb)).count_ones())
    }

    /// Sets bit positions `start..=end` (segment-local); returns how many
    /// were newly set.
    fn fill_bits(&mut self, start: usize, end: usize) -> u64 {
        let (sw, sb) = (start / 64, (start % 64) as u32);
        let (ew, eb) = (end / 64, (end % 64) as u32);
        fn orr(bits: &mut [u64], wi: usize, mask: u64) -> u64 {
            match bits.get_mut(wi) {
                Some(w) => {
                    let added = u64::from((mask & !*w).count_ones());
                    *w |= mask;
                    added
                }
                None => 0,
            }
        }
        let mut added = 0u64;
        if sw == ew {
            added += orr(&mut self.bits, sw, low_mask(sb) & high_mask(eb));
        } else {
            added += orr(&mut self.bits, sw, low_mask(sb));
            for w in self.bits.get_mut(sw + 1..ew).unwrap_or(&mut []) {
                added += u64::from((!*w).count_ones());
                *w = u64::MAX;
            }
            added += orr(&mut self.bits, ew, high_mask(eb));
        }
        self.touch_range(sw as u32, ew as u32);
        self.count += added;
        added
    }
}

// Derived `Clone` would memcpy the full 2 MiB (forcing every page
// resident); copying only the touched span preserves the sparse layout.
impl Clone for Segment {
    fn clone(&self) -> Self {
        let mut bits = vec![0u64; SEG_WORDS];
        let span = self.span();
        if let (Some(dst), Some(src)) = (bits.get_mut(span.clone()), self.bits.get(span)) {
            dst.copy_from_slice(src);
        }
        Segment {
            bits,
            count: self.count,
            lo: self.lo,
            hi: self.hi,
        }
    }
}

/// A set of IPv4 addresses as a segmented bitmap over the whole 2^32
/// space.
///
/// ```
/// use ghosts_addrplane::AddrPlane;
///
/// let mut p = AddrPlane::new();
/// p.insert(0xC000_0201); // 192.0.2.1
/// p.insert(0xC000_02C8); // 192.0.2.200
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.count_in_prefix(0xC000_0200, 24), 2);
/// assert!(p.contains(0xC000_0201));
/// ```
#[derive(Clone, Default)]
pub struct AddrPlane {
    segs: BTreeMap<u8, Segment>,
    len: u64,
}

impl Default for Segment {
    fn default() -> Self {
        Segment::new()
    }
}

impl AddrPlane {
    /// Creates an empty plane.
    pub fn new() -> Self {
        AddrPlane {
            segs: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of addresses in the plane.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the plane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated segments (populated /8s).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// The populated segment keys (first octets), ascending.
    pub(crate) fn segment_keys(&self) -> impl Iterator<Item = u8> + '_ {
        self.segs.keys().copied()
    }

    /// The segment for `key`, if populated.
    pub(crate) fn segment(&self, key: u8) -> Option<&Segment> {
        self.segs.get(&key)
    }

    /// Inserts an address; returns `true` if it was not already present.
    pub fn insert(&mut self, addr: u32) -> bool {
        let seg = self.segs.entry(seg_key(addr)).or_default();
        let wi = word_index(addr);
        let mask = bit_mask(addr);
        let Some(w) = seg.bits.get_mut(wi) else {
            return false; // unreachable: wi < SEG_WORDS by construction
        };
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        seg.touch(wi);
        seg.count += 1;
        self.len += 1;
        true
    }

    /// Removes an address; returns `true` if it was present.
    pub fn remove(&mut self, addr: u32) -> bool {
        let key = seg_key(addr);
        let Some(seg) = self.segs.get_mut(&key) else {
            return false;
        };
        let wi = word_index(addr);
        let mask = bit_mask(addr);
        let Some(w) = seg.bits.get_mut(wi) else {
            return false;
        };
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        seg.count -= 1;
        self.len -= 1;
        if seg.count == 0 {
            self.segs.remove(&key);
        }
        true
    }

    /// Membership test: a single word load and mask.
    pub fn contains(&self, addr: u32) -> bool {
        match self.segs.get(&seg_key(addr)) {
            Some(seg) => seg.word(word_index(addr)) & bit_mask(addr) != 0,
            None => false,
        }
    }

    /// OR kernel: merges `other` into `self` (set union).
    pub fn union_with(&mut self, other: &AddrPlane) {
        for (&key, oseg) in &other.segs {
            if oseg.count == 0 {
                continue;
            }
            let seg = self.segs.entry(key).or_default();
            let mut added = 0u64;
            let dst = seg.bits.get_mut(oseg.span()).unwrap_or(&mut []);
            for (w, &ow) in dst.iter_mut().zip(oseg.words()) {
                if ow != 0 {
                    added += u64::from((ow & !*w).count_ones());
                    *w |= ow;
                }
            }
            seg.touch_range(oseg.lo, oseg.hi);
            seg.count += added;
            self.len += added;
        }
    }

    /// AND kernel (counting form): addresses present in both planes.
    pub fn intersection_count(&self, other: &AddrPlane) -> u64 {
        let (small, big) = if self.segs.len() <= other.segs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut total = 0u64;
        for (key, a) in &small.segs {
            let Some(b) = big.segs.get(key) else {
                continue;
            };
            let from = a.span().start.max(b.span().start);
            let to = a.span().end.min(b.span().end);
            let (aw, bw) = (
                a.bits.get(from..to).unwrap_or(&[]),
                b.bits.get(from..to).unwrap_or(&[]),
            );
            for (x, y) in aw.iter().zip(bw) {
                total += u64::from((x & y).count_ones());
            }
        }
        total
    }

    /// AND kernel: the intersection of two planes as a new plane.
    pub fn intersect(&self, other: &AddrPlane) -> AddrPlane {
        let (small, big) = if self.segs.len() <= other.segs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = AddrPlane::new();
        for (&key, a) in &small.segs {
            let Some(b) = big.segs.get(&key) else {
                continue;
            };
            let from = a.span().start.max(b.span().start);
            let to = a.span().end.min(b.span().end);
            if from >= to {
                continue;
            }
            let mut seg = Segment::new();
            let mut count = 0u64;
            let dst = seg.bits.get_mut(from..to).unwrap_or(&mut []);
            let (aw, bw) = (
                a.bits.get(from..to).unwrap_or(&[]),
                b.bits.get(from..to).unwrap_or(&[]),
            );
            for (w, (x, y)) in dst.iter_mut().zip(aw.iter().zip(bw)) {
                *w = x & y;
                count += u64::from(w.count_ones());
            }
            if count > 0 {
                seg.count = count;
                seg.touch_range(from as u32, (to - 1) as u32);
                out.len += count;
                out.segs.insert(key, seg);
            }
        }
        out
    }

    /// AND-NOT kernel: removes from `self` every address in `other`.
    pub fn subtract(&mut self, other: &AddrPlane) {
        let mut doomed = Vec::new();
        for (&key, seg) in &mut self.segs {
            let Some(oseg) = other.segs.get(&key) else {
                continue;
            };
            let from = seg.span().start.max(oseg.span().start);
            let to = seg.span().end.min(oseg.span().end);
            let mut removed = 0u64;
            let dst = seg.bits.get_mut(from..to).unwrap_or(&mut []);
            let src = oseg.bits.get(from..to).unwrap_or(&[]);
            for (w, &ow) in dst.iter_mut().zip(src) {
                if ow != 0 {
                    removed += u64::from((*w & ow).count_ones());
                    *w &= !ow;
                }
            }
            seg.count -= removed;
            self.len -= removed;
            if seg.count == 0 {
                doomed.push(key);
            }
        }
        for key in doomed {
            self.segs.remove(&key);
        }
    }

    /// XOR kernel: symmetric difference, in place.
    pub fn xor_with(&mut self, other: &AddrPlane) {
        let mut doomed = Vec::new();
        for (&key, oseg) in &other.segs {
            if oseg.count == 0 {
                continue;
            }
            let seg = self.segs.entry(key).or_default();
            let mut added = 0u64;
            let mut removed = 0u64;
            let dst = seg.bits.get_mut(oseg.span()).unwrap_or(&mut []);
            for (w, &ow) in dst.iter_mut().zip(oseg.words()) {
                if ow != 0 {
                    removed += u64::from((*w & ow).count_ones());
                    added += u64::from((ow & !*w).count_ones());
                    *w ^= ow;
                }
            }
            seg.touch_range(oseg.lo, oseg.hi);
            seg.count = seg.count + added - removed;
            self.len = self.len + added - removed;
            if seg.count == 0 {
                doomed.push(key);
            }
        }
        for key in doomed {
            self.segs.remove(&key);
        }
    }

    /// Popcount over the inclusive address range `lo..=hi`.
    pub fn count_range(&self, lo: u32, hi: u32) -> u64 {
        if lo > hi {
            return 0;
        }
        let (klo, khi) = (seg_key(lo), seg_key(hi));
        let mut total = 0u64;
        for (&key, seg) in self.segs.range(klo..=khi) {
            let start = if key == klo {
                (lo & 0x00ff_ffff) as usize
            } else {
                0
            };
            let end = if key == khi {
                (hi & 0x00ff_ffff) as usize
            } else {
                SEG_BITS - 1
            };
            if start == 0 && end == SEG_BITS - 1 {
                total += seg.count;
            } else {
                total += seg.count_bits(start, end);
            }
        }
        total
    }

    /// Popcount inside the prefix `base/len` — the routed-range popcount
    /// primitive (`len == 0` is the whole space).
    pub fn count_in_prefix(&self, base: u32, len: u8) -> u64 {
        if len == 0 {
            return self.len;
        }
        let (lo, hi) = prefix_bounds(base, len);
        self.count_range(lo, hi)
    }

    /// Sets every address in the prefix `base/len`; returns how many were
    /// newly set. Filling allocates real pages for the whole prefix —
    /// use for bounded ranges (building reserved/routed masks), not the
    /// full space.
    pub fn fill_prefix(&mut self, base: u32, len: u8) -> u64 {
        let (lo, hi) = if len == 0 {
            (0u32, u32::MAX)
        } else {
            prefix_bounds(base, len)
        };
        let (klo, khi) = (seg_key(lo), seg_key(hi));
        let mut added = 0u64;
        for key in klo..=khi {
            let start = if key == klo {
                (lo & 0x00ff_ffff) as usize
            } else {
                0
            };
            let end = if key == khi {
                (hi & 0x00ff_ffff) as usize
            } else {
                SEG_BITS - 1
            };
            added += self.segs.entry(key).or_default().fill_bits(start, end);
        }
        self.len += added;
        added
    }

    /// ORs a whole word of bits at the 64-aligned address `word_base`;
    /// returns how many bits were newly set. This is the bulk-ingest
    /// primitive the simulator uses to write generated blocks straight
    /// into the plane without per-address directory probes.
    pub fn or_word(&mut self, word_base: u32, bits: u64) -> u64 {
        debug_assert_eq!(word_base & 63, 0, "or_word: unaligned base");
        if bits == 0 {
            return 0;
        }
        let seg = self.segs.entry(seg_key(word_base)).or_default();
        let wi = word_index(word_base);
        let Some(w) = seg.bits.get_mut(wi) else {
            return 0; // unreachable: wi < SEG_WORDS by construction
        };
        let added = u64::from((bits & !*w).count_ones());
        *w |= bits;
        seg.touch(wi);
        seg.count += added;
        self.len += added;
        added
    }

    /// Visits every nonzero word as `(first address of word, word)`, in
    /// ascending address order.
    pub fn for_each_word<F: FnMut(u32, u64)>(&self, mut f: F) {
        for (&key, seg) in &self.segs {
            let base = u32::from(key) << 24;
            let lo = seg.span().start;
            for (off, &w) in seg.words().iter().enumerate() {
                if w != 0 {
                    f(base + (((lo + off) * 64) as u32), w);
                }
            }
        }
    }

    /// Iterates set addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.segs.iter().flat_map(|(&key, seg)| {
            let base = u32::from(key) << 24;
            let lo = seg.span().start;
            seg.words()
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != 0)
                .flat_map(move |(off, &w)| {
                    let word_base = base + (((lo + off) * 64) as u32);
                    BitIter::new(w).map(move |b| word_base + b)
                })
        })
    }

    /// Keeps only addresses satisfying the predicate.
    pub fn retain<F: FnMut(u32) -> bool>(&mut self, mut f: F) {
        let doomed: Vec<u32> = self.iter().filter(|&a| !f(a)).collect();
        for a in doomed {
            self.remove(a);
        }
    }

    /// Per-/8 address counts (index = first octet). Segments are exactly
    /// /8s, so this is a read of the maintained per-segment counts.
    pub fn per_octet_counts(&self) -> [u64; 256] {
        let mut out = [0u64; 256];
        for (&key, seg) in &self.segs {
            if let Some(slot) = out.get_mut(usize::from(key)) {
                *slot = seg.count;
            }
        }
        out
    }
}

/// Iterates the set bit positions of a word.
pub(crate) struct BitIter {
    word: u64,
}

impl BitIter {
    pub(crate) fn new(word: u64) -> Self {
        BitIter { word }
    }
}

impl Iterator for BitIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(b)
    }
}

impl FromIterator<u32> for AddrPlane {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut p = AddrPlane::new();
        for a in iter {
            p.insert(a);
        }
        p
    }
}

impl Extend<u32> for AddrPlane {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl std::fmt::Debug for AddrPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddrPlane {{ len: {}, segments: {} }}",
            self.len,
            self.segs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut p = AddrPlane::new();
        assert!(p.insert(10));
        assert!(!p.insert(10));
        assert!(p.contains(10));
        assert!(!p.contains(11));
        assert_eq!(p.len(), 1);
        assert!(p.remove(10));
        assert!(!p.remove(10));
        assert!(p.is_empty());
        assert_eq!(p.segment_count(), 0, "empty segments must be pruned");
    }

    #[test]
    fn extreme_addresses() {
        let mut p = AddrPlane::new();
        p.insert(0);
        p.insert(u32::MAX);
        p.insert((1 << 24) - 1); // last address of segment 0
        p.insert(1 << 24); // first address of segment 1
        assert_eq!(p.len(), 4);
        assert_eq!(p.segment_count(), 3);
        let all: Vec<u32> = p.iter().collect();
        assert_eq!(all, vec![0, (1 << 24) - 1, 1 << 24, u32::MAX]);
        assert_eq!(p.count_range(0, u32::MAX), 4);
    }

    #[test]
    fn union_intersection_subtract() {
        let a: AddrPlane = [1u32, 2, 3, 0x0900_0000].into_iter().collect();
        let b: AddrPlane = [3u32, 4, 0x0900_0000, 0xff00_0001].into_iter().collect();
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 6);
        assert_eq!(u.iter().count() as u64, u.len());

        let i = a.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 0x0900_0000]);

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        let mut gone = a.clone();
        gone.subtract(&a);
        assert!(gone.is_empty());
        assert_eq!(gone.segment_count(), 0);
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let a: AddrPlane = [1u32, 2, 3].into_iter().collect();
        let b: AddrPlane = [2u32, 3, 4, 0x0a00_0000].into_iter().collect();
        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![1, 4, 0x0a00_0000]);
        // XOR with itself empties and prunes.
        let mut z = b.clone();
        z.xor_with(&b);
        assert!(z.is_empty());
        assert_eq!(z.segment_count(), 0);
    }

    #[test]
    fn count_in_prefix_various_lengths() {
        let mut p = AddrPlane::new();
        for addr in [
            0x0a00_0001u32,
            0x0a00_00c8,
            0x0a00_0107,
            0x0a80_0001,
            0x0b00_0001,
        ] {
            p.insert(addr);
        }
        assert_eq!(p.count_in_prefix(0x0a00_0000, 8), 4);
        assert_eq!(p.count_in_prefix(0x0a00_0000, 24), 2);
        assert_eq!(p.count_in_prefix(0x0a00_0000, 16), 3);
        assert_eq!(p.count_in_prefix(0x0a00_0001, 32), 1);
        assert_eq!(p.count_in_prefix(0x0a00_0002, 32), 0);
        assert_eq!(p.count_in_prefix(0, 0), 5);
        assert_eq!(p.count_in_prefix(0x0c00_0000, 8), 0);
        // Prefixes wider than a segment straddle the directory.
        assert_eq!(p.count_in_prefix(0x0a00_0000, 7), 5);
        assert_eq!(p.count_in_prefix(0x0800_0000, 5), 5);
    }

    #[test]
    fn fill_prefix_sets_whole_blocks() {
        let mut p = AddrPlane::new();
        assert_eq!(p.fill_prefix(0xc000_0200, 24), 256);
        assert_eq!(p.len(), 256);
        // Refill is idempotent.
        assert_eq!(p.fill_prefix(0xc000_0200, 24), 0);
        // Straddling a segment boundary: /7 covers two /8s.
        assert_eq!(p.fill_prefix(0x0a00_0000, 7), 1 << 25);
        assert_eq!(p.count_in_prefix(0x0a00_0000, 8), 1 << 24);
        assert_eq!(p.count_in_prefix(0x0b00_0000, 8), 1 << 24);
        assert!(p.contains(0x0bff_ffff));
        assert!(!p.contains(0x0c00_0000));
    }

    #[test]
    fn or_word_bulk_ingest() {
        let mut p = AddrPlane::new();
        assert_eq!(p.or_word(0x0a00_0040, 0b1011), 3);
        assert_eq!(p.or_word(0x0a00_0040, 0b1111), 1);
        assert_eq!(p.or_word(0x0a00_0040, 0), 0);
        assert_eq!(
            p.iter().collect::<Vec<_>>(),
            vec![0x0a00_0040, 0x0a00_0041, 0x0a00_0042, 0x0a00_0043]
        );
    }

    #[test]
    fn clone_preserves_contents_and_counts() {
        let p: AddrPlane = [0u32, 63, 64, 0x12ff_ffff, u32::MAX].into_iter().collect();
        let q = p.clone();
        assert_eq!(q.len(), p.len());
        assert_eq!(q.iter().collect::<Vec<_>>(), p.iter().collect::<Vec<_>>());
    }

    #[test]
    fn per_octet_counts_match_segments() {
        let mut p = AddrPlane::new();
        p.insert(0x0a01_0203);
        p.insert(0x0ac8_0203);
        p.insert(0x3500_0001);
        let counts = p.per_octet_counts();
        assert_eq!(counts[0x0a], 2);
        assert_eq!(counts[0x35], 1);
        assert_eq!(counts[0x0b], 0);
    }

    #[test]
    fn for_each_word_visits_nonzero_words_in_order() {
        let p: AddrPlane = [5u32, 6, 300, 0x0a00_0000].into_iter().collect();
        let mut seen = Vec::new();
        p.for_each_word(|base, w| seen.push((base, w.count_ones())));
        assert_eq!(seen, vec![(0, 2), (256, 1), (0x0a00_0000, 1)]);
    }

    #[test]
    fn retain_filters() {
        let mut p: AddrPlane = (0u32..100).collect();
        p.retain(|x| x % 2 == 0);
        assert_eq!(p.len(), 50);
        assert!(p.contains(42) && !p.contains(43));
    }
}
