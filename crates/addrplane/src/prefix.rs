//! [`PrefixPlane`]: a compact binary trie over IPv4 prefixes.
//!
//! Nodes live contiguously in one `Vec` and refer to children by index,
//! so the structure is clone-cheap, cache-friendly, and free of the
//! per-node boxing of a pointer trie. It answers the routing-side
//! questions the plane needs: longest-prefix match for membership,
//! union address/subnet counts for truncation bounds, and exact
//! covered-address counts inside an arbitrary block — all by node
//! walks, never by scanning a prefix list.

/// Sentinel for "no child".
const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    zero: u32,
    one: u32,
    terminal: bool,
}

impl Node {
    fn leaf() -> Self {
        Node {
            zero: NO_CHILD,
            one: NO_CHILD,
            terminal: false,
        }
    }
}

/// Zeroes the host bits of `base` for a prefix of length `len`.
fn mask_base(base: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        base
    } else {
        base & !(u32::MAX >> len)
    }
}

/// Number of addresses in a block at `depth` (`depth <= 32`).
fn block_size(depth: u8) -> u64 {
    // lint: allow(counting-overflow) depth <= 32, so the shift fits u64
    1u64 << (32 - u32::from(depth.min(32)))
}

/// The bit of `1` at trie depth `depth` (`depth < 32`).
fn bit_at(depth: u8) -> u32 {
    // lint: allow(counting-overflow) depth < 32 on every trie edge
    1u32 << (31 - u32::from(depth.min(31)))
}

/// A set of IPv4 prefixes with longest-match lookup and per-prefix
/// popcount-style size queries.
///
/// ```
/// use ghosts_addrplane::PrefixPlane;
///
/// let mut t = PrefixPlane::new();
/// t.insert(0x0800_0000, 8); // 8.0.0.0/8
/// t.insert(0x0801_0000, 16); // 8.1.0.0/16
/// assert_eq!(t.longest_match(0x0801_0203), Some((0x0801_0000, 16)));
/// assert_eq!(t.longest_match(0x08c8_0001), Some((0x0800_0000, 8)));
/// assert_eq!(t.union_address_count(), 1 << 24); // nesting dedupes
/// ```
#[derive(Debug, Clone)]
pub struct PrefixPlane {
    nodes: Vec<Node>,
    len: usize,
}

impl Default for PrefixPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixPlane {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixPlane {
            nodes: vec![Node::leaf()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn child_of(&self, id: u32, bit: u32) -> u32 {
        self.nodes
            .get(id as usize)
            .map_or(NO_CHILD, |n| if bit == 0 { n.zero } else { n.one })
    }

    fn is_terminal(&self, id: u32) -> bool {
        self.nodes.get(id as usize).is_some_and(|n| n.terminal)
    }

    /// Inserts the prefix `base/len` (host bits ignored); returns `true`
    /// if it was not already present.
    pub fn insert(&mut self, base: u32, len: u8) -> bool {
        let len = len.min(32);
        let base = mask_base(base, len);
        let mut id = 0u32;
        for depth in 0..len {
            let bit = (base >> (31 - u32::from(depth))) & 1;
            let next = self.child_of(id, bit);
            id = if next == NO_CHILD {
                let nid = self.nodes.len() as u32;
                self.nodes.push(Node::leaf());
                if let Some(n) = self.nodes.get_mut(id as usize) {
                    if bit == 0 {
                        n.zero = nid;
                    } else {
                        n.one = nid;
                    }
                }
                nid
            } else {
                next
            };
        }
        match self.nodes.get_mut(id as usize) {
            Some(n) if !n.terminal => {
                n.terminal = true;
                self.len += 1;
                true
            }
            _ => false,
        }
    }

    /// The most specific stored prefix containing `addr`, as
    /// `(masked base, length)`.
    pub fn longest_match(&self, addr: u32) -> Option<(u32, u8)> {
        let mut best = None;
        let mut id = 0u32;
        for depth in 0u8..=32 {
            if self.is_terminal(id) {
                best = Some((mask_base(addr, depth), depth));
            }
            if depth == 32 {
                break;
            }
            let bit = (addr >> (31 - u32::from(depth))) & 1;
            id = self.child_of(id, bit);
            if id == NO_CHILD {
                break;
            }
        }
        best
    }

    /// Whether any stored prefix contains `addr` — the single-walk bit
    /// test behind routed-membership queries.
    pub fn contains_addr(&self, addr: u32) -> bool {
        let mut id = 0u32;
        for depth in 0u8..=32 {
            if self.is_terminal(id) {
                return true;
            }
            if depth == 32 {
                break;
            }
            let bit = (addr >> (31 - u32::from(depth))) & 1;
            id = self.child_of(id, bit);
            if id == NO_CHILD {
                break;
            }
        }
        false
    }

    /// Visits every stored prefix as `(base, len)` in lexicographic
    /// order (shorter prefixes before their more-specifics).
    pub fn for_each<F: FnMut(u32, u8)>(&self, mut f: F) {
        self.walk_each(0, 0, 0, &mut f);
    }

    fn walk_each<F: FnMut(u32, u8)>(&self, id: u32, base: u32, depth: u8, f: &mut F) {
        let Some(n) = self.nodes.get(id as usize) else {
            return;
        };
        if n.terminal {
            f(base, depth);
        }
        if depth == 32 {
            return;
        }
        if n.zero != NO_CHILD {
            self.walk_each(n.zero, base, depth + 1, f);
        }
        if n.one != NO_CHILD {
            self.walk_each(n.one, base | bit_at(depth), depth + 1, f);
        }
    }

    /// Total addresses covered by the union of all stored prefixes
    /// (nested prefixes are not double counted).
    pub fn union_address_count(&self) -> u64 {
        self.subtree_covered(0, 0)
    }

    /// Addresses of the block `base/len` covered by the union of stored
    /// prefixes. Exact, by a single trie descent plus a subtree walk —
    /// no prefix-list scans.
    pub fn covered_in(&self, base: u32, len: u8) -> u64 {
        let len = len.min(32);
        let base = mask_base(base, len);
        let mut id = 0u32;
        for depth in 0..len {
            if self.is_terminal(id) {
                // An ancestor advertisement covers the whole block.
                return block_size(len);
            }
            let bit = (base >> (31 - u32::from(depth))) & 1;
            id = self.child_of(id, bit);
            if id == NO_CHILD {
                return 0;
            }
        }
        self.subtree_covered(id, len)
    }

    fn subtree_covered(&self, id: u32, depth: u8) -> u64 {
        let Some(n) = self.nodes.get(id as usize) else {
            return 0;
        };
        if n.terminal {
            return block_size(depth);
        }
        if depth >= 32 {
            return 0;
        }
        let mut total = 0u64;
        if n.zero != NO_CHILD {
            total += self.subtree_covered(n.zero, depth + 1);
        }
        if n.one != NO_CHILD {
            total += self.subtree_covered(n.one, depth + 1);
        }
        total
    }

    /// Number of /24 subnets fully or partially covered by the union of
    /// stored prefixes (a /25–/32 marks the single /24 it sits in).
    pub fn union_subnet24_count(&self) -> u64 {
        self.walk24(0, 0)
    }

    fn walk24(&self, id: u32, depth: u8) -> u64 {
        let Some(n) = self.nodes.get(id as usize) else {
            return 0;
        };
        if n.terminal {
            return if depth <= 24 {
                // lint: allow(counting-overflow) depth <= 24 bounds the shift
                1u64 << (24 - u32::from(depth))
            } else {
                1
            };
        }
        if depth >= 24 {
            return u64::from(self.subtree_any(id));
        }
        let mut total = 0u64;
        if n.zero != NO_CHILD {
            total += self.walk24(n.zero, depth + 1);
        }
        if n.one != NO_CHILD {
            total += self.walk24(n.one, depth + 1);
        }
        total
    }

    fn subtree_any(&self, id: u32) -> bool {
        let Some(n) = self.nodes.get(id as usize) else {
            return false;
        };
        if n.terminal {
            return true;
        }
        (n.zero != NO_CHILD && self.subtree_any(n.zero))
            || (n.one != NO_CHILD && self.subtree_any(n.one))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(prefixes: &[(u32, u8)]) -> PrefixPlane {
        let mut t = PrefixPlane::new();
        for &(b, l) in prefixes {
            t.insert(b, l);
        }
        t
    }

    #[test]
    fn insert_and_longest_match() {
        let t = plane(&[(0x0a00_0000, 8), (0x0a01_0000, 16), (0x0a01_0200, 24)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match(0x0a01_0203), Some((0x0a01_0200, 24)));
        assert_eq!(t.longest_match(0x0a01_0909), Some((0x0a01_0000, 16)));
        assert_eq!(t.longest_match(0x0ac8_0001), Some((0x0a00_0000, 8)));
        assert_eq!(t.longest_match(0x0b00_0000), None);
        assert!(t.contains_addr(0x0a07_0707));
        assert!(!t.contains_addr(0x0909_0909));
    }

    #[test]
    fn insert_is_idempotent_and_masks_host_bits() {
        let mut t = PrefixPlane::new();
        assert!(t.insert(0x0a00_00ff, 8));
        assert!(!t.insert(0x0a00_0000, 8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn default_route_and_host_routes() {
        let mut t = PrefixPlane::new();
        t.insert(0, 0);
        assert!(t.contains_addr(0));
        assert!(t.contains_addr(u32::MAX));
        assert_eq!(t.union_address_count(), 1 << 32);

        let mut h = PrefixPlane::new();
        h.insert(0x0102_0304, 32);
        assert!(h.contains_addr(0x0102_0304));
        assert!(!h.contains_addr(0x0102_0305));
        assert_eq!(h.union_address_count(), 1);
    }

    #[test]
    fn for_each_lexicographic() {
        let t = plane(&[(0xc000_0000, 8), (0x0a00_0000, 8), (0x0a01_0000, 16)]);
        let mut got = Vec::new();
        t.for_each(|b, l| got.push((b, l)));
        assert_eq!(
            got,
            vec![(0x0a00_0000, 8), (0x0a01_0000, 16), (0xc000_0000, 8)]
        );
    }

    #[test]
    fn union_counts_dedupe_nesting() {
        let t = plane(&[(0x0a00_0000, 8), (0x0a01_0000, 16), (0xc0a8_0000, 24)]);
        assert_eq!(t.union_address_count(), (1 << 24) + 256);
        assert_eq!(t.union_subnet24_count(), 65536 + 1);
    }

    #[test]
    fn union_subnet24_partial_covers_count_once() {
        let t = plane(&[(0x0102_0380, 25), (0x0102_0300, 26)]);
        assert_eq!(t.union_subnet24_count(), 1);
        assert_eq!(t.union_address_count(), 128 + 64);
    }

    #[test]
    fn covered_in_partial_overlap() {
        let t = plane(&[(0x0800_0000, 9)]);
        assert_eq!(t.covered_in(0x0800_0000, 8), 1 << 23);
        assert_eq!(t.covered_in(0x0800_0000, 9), 1 << 23);
        assert_eq!(t.covered_in(0x0880_0000, 9), 0);
        assert_eq!(t.covered_in(0x0800_0100, 24), 256);
        // Ancestor cover: /8 stored, asking about a /24 inside it.
        let u = plane(&[(0x0800_0000, 8)]);
        assert_eq!(u.covered_in(0x0801_0200, 24), 256);
        assert_eq!(u.covered_in(0, 0), 1 << 24);
    }
}
