//! Property-based tests: the segmented bitmap plane against a
//! `BTreeSet<u32>` reference model under random operation sequences, and
//! segment-boundary edge cases the random strategies would rarely reach.

use ghosts_addrplane::AddrPlane;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Addresses drawn so sequences collide, straddle a segment boundary
/// (`2^24`), and touch both extremes of the space.
fn addr_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        0x00ff_ff00u32..0x0100_0100u32, // straddles segment 0 → 1
        0x0a00_0000u32..0x0a00_0400u32, // dense cluster inside one /8
        Just(0u32),
        Just(u32::MAX),
        any::<u32>(),
    ]
}

/// Operations for the set-model property.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Union(Vec<u32>),
    Intersect(Vec<u32>),
    Subtract(Vec<u32>),
    PopcountPrefix(u32, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let small = || proptest::collection::vec(addr_strategy(), 0..40);
    prop_oneof![
        addr_strategy().prop_map(Op::Insert),
        addr_strategy().prop_map(Op::Remove),
        small().prop_map(Op::Union),
        small().prop_map(Op::Intersect),
        small().prop_map(Op::Subtract),
        // Prefix length derived from the address so one draw covers both.
        addr_strategy().prop_map(|a| Op::PopcountPrefix(a, (a % 33) as u8)),
    ]
}

fn model_count_in_prefix(model: &BTreeSet<u32>, base: u32, len: u8) -> u64 {
    if len == 0 {
        return model.len() as u64;
    }
    let shift = 32 - u32::from(len);
    let lo = (base >> shift) << shift;
    // Two-step shift: `u32::MAX >> 32` would overflow at len == 32.
    let hi = lo | (u32::MAX >> (u32::from(len) - 1) >> 1);
    model.range(lo..=hi).count() as u64
}

proptest! {
    #[test]
    fn plane_matches_btreeset_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut plane = AddrPlane::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(a) => prop_assert_eq!(plane.insert(a), model.insert(a)),
                Op::Remove(a) => prop_assert_eq!(plane.remove(a), model.remove(&a)),
                Op::Union(addrs) => {
                    let other: AddrPlane = addrs.iter().copied().collect();
                    plane.union_with(&other);
                    model.extend(addrs);
                }
                Op::Intersect(addrs) => {
                    let other: AddrPlane = addrs.iter().copied().collect();
                    let keep: BTreeSet<u32> = addrs.into_iter().collect();
                    prop_assert_eq!(
                        plane.intersection_count(&other),
                        model.intersection(&keep).count() as u64
                    );
                    plane = plane.intersect(&other);
                    model = model.intersection(&keep).copied().collect();
                }
                Op::Subtract(addrs) => {
                    let other: AddrPlane = addrs.iter().copied().collect();
                    let drop: BTreeSet<u32> = addrs.into_iter().collect();
                    plane.subtract(&other);
                    model = model.difference(&drop).copied().collect();
                }
                Op::PopcountPrefix(base, len) => {
                    prop_assert_eq!(
                        plane.count_in_prefix(base, len),
                        model_count_in_prefix(&model, base, len),
                        "count_in_prefix({}, {})", base, len
                    );
                }
            }
            prop_assert_eq!(plane.len(), model.len() as u64);
        }
        prop_assert!(plane.iter().eq(model.iter().copied()), "iteration order diverged");
    }

    #[test]
    fn popcount_in_prefix_matches_model_everywhere(
        addrs in proptest::collection::vec(addr_strategy(), 0..300),
        base in addr_strategy(),
        len in 0u8..=32,
    ) {
        let addrs: BTreeSet<u32> = addrs.into_iter().collect();
        let plane: AddrPlane = addrs.iter().copied().collect();
        prop_assert_eq!(
            plane.count_in_prefix(base, len),
            model_count_in_prefix(&addrs, base, len)
        );
    }

    #[test]
    fn xor_is_symmetric_difference(
        a in proptest::collection::vec(addr_strategy(), 0..200),
        b in proptest::collection::vec(addr_strategy(), 0..200),
    ) {
        let a: BTreeSet<u32> = a.into_iter().collect();
        let b: BTreeSet<u32> = b.into_iter().collect();
        let mut plane: AddrPlane = a.iter().copied().collect();
        let pb: AddrPlane = b.iter().copied().collect();
        plane.xor_with(&pb);
        let want: BTreeSet<u32> = a.symmetric_difference(&b).copied().collect();
        prop_assert_eq!(plane.len(), want.len() as u64);
        prop_assert!(plane.iter().eq(want.iter().copied()));
    }
}

#[test]
fn segment_boundary_edge_cases() {
    let mut p = AddrPlane::new();
    // Extremes of the space and both sides of every byte of the first
    // segment boundary.
    for a in [0u32, 1, (1 << 24) - 1, 1 << 24, u32::MAX - 1, u32::MAX] {
        assert!(p.insert(a), "fresh insert of {a}");
        assert!(p.contains(a));
    }
    assert_eq!(p.len(), 6);
    assert_eq!(p.segment_count(), 3); // 0.x, 1.x, 255.x

    // A /7 straddles two /8 segments; prefixes of length ≥ 8 are always
    // /8-aligned, so 0.255.254.0/23 ends right at the segment boundary.
    assert_eq!(p.count_in_prefix(0, 7), 4); // 0.0.0.0–1.255.255.255
    assert_eq!(p.count_in_prefix(0x00ff_fe00, 23), 1); // holds 0.255.255.255
    assert_eq!(p.count_in_prefix(u32::MAX, 8), 2);
    assert_eq!(p.count_in_prefix(0, 0), 6);
    assert_eq!(p.count_in_prefix(0, 32), 1);
    assert_eq!(p.count_in_prefix(u32::MAX, 32), 1);
}

#[test]
fn fill_prefix_straddling_segments_matches_per_bit() {
    // 0.255.255.128/25 through 1.0.0.127: a /7-contained fill crossing
    // the segment directory's key boundary.
    let mut filled = AddrPlane::new();
    let added = filled.fill_prefix(0x00ff_ff80, 25);
    assert_eq!(added, 128);
    let mut per_bit = AddrPlane::new();
    for a in 0x00ff_ff80u32..=0x00ff_ffff {
        per_bit.insert(a);
    }
    assert_eq!(filled.len(), per_bit.len());
    assert!(filled.iter().eq(per_bit.iter()));
}
