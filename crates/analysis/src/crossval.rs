//! The cross-validation harness of §5: leave-one-source-as-universe.
//!
//! "We consider a particular source *i* as the 'universe' of possible IPv4
//! addresses. We apply CR to the addresses/subnets in *i* that are also in
//! the other k−1 sources, to estimate the number of individuals unique to
//! source *i*. Since we know the true number of individuals unique to *i*,
//! we can evaluate the effectiveness of CR."
//!
//! Drives Table 3 (RMSE/MAE over model-selection settings) and Fig 3 (per
//! source normalised estimate ranges for one window).

use ghosts_core::ci::EstimateRange;
use ghosts_core::{
    estimate_table, estimate_table_with_range, ContingencyTable, CrConfig, EstimateError,
};
use ghosts_net::{AddrSet, SubnetSet};
use ghosts_pipeline::dataset::WindowData;
use ghosts_stats::summary::{mae, rmse};

/// Which identifier population to cross-validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Individual IPv4 addresses.
    Addresses,
    /// /24 subnets.
    Subnets,
}

/// Cross-validation outcome for one held-out source.
#[derive(Debug, Clone)]
pub struct CrossValResult {
    /// The held-out source's name.
    pub source: String,
    /// `|i|` — the true universe size (all individuals of source *i*).
    pub truth: u64,
    /// Individuals of *i* seen by at least one other source.
    pub observed_by_others: u64,
    /// Individuals of *i* seen by the ICMP census among the other sources
    /// (the "Obs ping" bar of Fig 3); `None` when IPING is held out or
    /// absent from the window.
    pub observed_by_ping: Option<u64>,
    /// The CR estimate of `|i|`.
    pub estimate: f64,
    /// Profile-likelihood range, when requested.
    pub range: Option<EstimateRange>,
}

impl CrossValResult {
    /// Signed estimation error `estimate − truth`.
    pub fn error(&self) -> f64 {
        self.estimate - self.truth as f64
    }
}

/// Runs leave-one-out cross-validation over every source of a window.
///
/// For each held-out source *i*, the other sources are intersected with
/// *i* and CR estimates `|i|`; the truncation limit is `|i|` itself (the
/// universe is finite and known, the ideal case for the right-truncated
/// cells). `with_ranges` additionally computes profile-likelihood ranges
/// (significantly more expensive).
///
/// # Errors
///
/// Propagates hard estimation failures.
pub fn cross_validate_window(
    data: &WindowData,
    granularity: Granularity,
    cfg: &CrConfig,
    with_ranges: bool,
) -> Result<Vec<CrossValResult>, EstimateError> {
    let names: Vec<&str> = data.sources.iter().map(|s| s.name.as_str()).collect();
    let mut results = Vec::with_capacity(names.len());

    // Pre-project subnet sets once if needed.
    let subnet_sets: Vec<SubnetSet> = if granularity == Granularity::Subnets {
        data.sources.iter().map(|s| s.subnets()).collect()
    } else {
        Vec::new()
    };

    for (i, name) in names.iter().enumerate() {
        let (table, truth, observed_by_others, observed_by_ping) = match granularity {
            Granularity::Addresses => {
                let universe: &AddrSet = &data.sources[i].addrs;
                let restricted: Vec<AddrSet> = data
                    .sources
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, s)| s.addrs.intersect(universe))
                    .collect();
                let refs: Vec<&AddrSet> = restricted.iter().collect();
                let table = ContingencyTable::from_addr_sets(&refs);
                let observed = table_observed(&table);
                let ping = names
                    .iter()
                    .position(|n| *n == "IPING" && *n != *name)
                    .map(|j| data.sources[j].addrs.intersection_count(universe));
                (table, universe.len(), observed, ping)
            }
            Granularity::Subnets => {
                let universe = &subnet_sets[i];
                let restricted: Vec<SubnetSet> = subnet_sets
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, s)| s.intersect(universe))
                    .collect();
                let refs: Vec<&SubnetSet> = restricted.iter().collect();
                let table = ContingencyTable::from_subnet_sets(&refs);
                let observed = table_observed(&table);
                let ping = names
                    .iter()
                    .position(|n| *n == "IPING" && *n != *name)
                    .map(|j| subnet_sets[j].intersection_count(universe));
                (table, universe.len(), observed, ping)
            }
        };

        let limit = Some(truth);
        if with_ranges {
            let (est, range) = estimate_table_with_range(&table, limit, cfg)?;
            results.push(CrossValResult {
                source: name.to_string(),
                truth,
                observed_by_others,
                observed_by_ping,
                estimate: est.total,
                range: Some(range),
            });
        } else {
            let est = estimate_table(&table, limit, cfg)?;
            results.push(CrossValResult {
                source: name.to_string(),
                truth,
                observed_by_others,
                observed_by_ping,
                estimate: est.total,
                range: None,
            });
        }
    }
    Ok(results)
}

fn table_observed(table: &ContingencyTable) -> u64 {
    table.observed_total()
}

/// Aggregate errors over many CV results (a cell of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvErrors {
    /// Root mean square error of the estimates against the truths.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Number of (source, window) cases aggregated.
    pub cases: usize,
}

/// Computes RMSE/MAE over a batch of results.
///
/// # Panics
///
/// Panics on an empty batch.
pub fn aggregate_errors(results: &[CrossValResult]) -> CvErrors {
    assert!(!results.is_empty(), "no CV results to aggregate");
    let pred: Vec<f64> = results.iter().map(|r| r.estimate).collect();
    let truth: Vec<f64> = results.iter().map(|r| r.truth as f64).collect();
    CvErrors {
        rmse: rmse(&pred, &truth),
        mae: mae(&pred, &truth),
        cases: results.len(),
    }
}

/// Baseline errors if one simply used the observed count as the estimate —
/// the comparison that shows CR is worth its complexity (§5.3).
pub fn observed_baseline_errors(results: &[CrossValResult]) -> CvErrors {
    assert!(!results.is_empty(), "no CV results to aggregate");
    let pred: Vec<f64> = results
        .iter()
        .map(|r| r.observed_by_others as f64)
        .collect();
    let truth: Vec<f64> = results.iter().map(|r| r.truth as f64).collect();
    CvErrors {
        rmse: rmse(&pred, &truth),
        mae: mae(&pred, &truth),
        cases: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_pipeline::dataset::SourceDataset;
    use ghosts_pipeline::time::{Quarter, TimeWindow};
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    /// Builds a window with four synthetic heterogeneous sources over a
    /// known universe of `n` addresses.
    fn synthetic_window(n: u32, seed: u64) -> WindowData {
        let mut rng = component_rng(seed, "cv-test");
        let mut sources: Vec<AddrSet> = (0..4).map(|_| AddrSet::new()).collect();
        for addr in 0..n {
            let sociable = rng.gen_bool(0.5);
            for set in sources.iter_mut() {
                let p = if sociable { 0.55 } else { 0.20 };
                if rng.gen_bool(p) {
                    set.insert(addr + 0x0100_0000);
                }
            }
        }
        WindowData {
            window: TimeWindow {
                start: Quarter(0),
                len: 4,
            },
            sources: sources
                .into_iter()
                .enumerate()
                .map(|(i, s)| SourceDataset::new(format!("S{i}"), s, true))
                .collect(),
        }
    }

    fn cfg() -> CrConfig {
        CrConfig {
            min_stratum_observed: 0,
            ..CrConfig::paper()
        }
    }

    #[test]
    fn cv_estimates_beat_observed_baseline() {
        let data = synthetic_window(8_000, 3);
        let results = cross_validate_window(&data, Granularity::Addresses, &cfg(), false).unwrap();
        assert_eq!(results.len(), 4);
        let cr = aggregate_errors(&results);
        let baseline = observed_baseline_errors(&results);
        assert!(
            cr.mae < baseline.mae,
            "CR MAE {} should beat observed MAE {}",
            cr.mae,
            baseline.mae
        );
        assert!(cr.rmse < baseline.rmse);
    }

    #[test]
    fn cv_truth_and_observed_consistent() {
        let data = synthetic_window(3_000, 5);
        let results = cross_validate_window(&data, Granularity::Addresses, &cfg(), false).unwrap();
        for r in &results {
            assert!(r.observed_by_others <= r.truth);
            assert!(r.estimate >= r.observed_by_others as f64 - 1e-9);
            // Truncation by the universe size keeps estimates plausible.
            assert!(r.estimate <= r.truth as f64 + 1e-9);
        }
    }

    #[test]
    fn cv_with_ranges_brackets_estimates() {
        let data = synthetic_window(2_000, 7);
        let results = cross_validate_window(&data, Granularity::Addresses, &cfg(), true).unwrap();
        for r in &results {
            let range = r.range.expect("ranges requested");
            assert!(range.lower <= r.estimate + 1e-6);
            assert!(range.upper >= r.estimate - 1e-6);
        }
    }

    #[test]
    fn subnet_granularity_runs() {
        let data = synthetic_window(4_000, 9);
        let results = cross_validate_window(&data, Granularity::Subnets, &cfg(), false).unwrap();
        // All test addresses share few /24s, so truths are small but the
        // machinery must hold together.
        for r in &results {
            assert!(r.truth > 0);
            assert!(r.estimate.is_finite());
        }
    }

    #[test]
    #[should_panic]
    fn aggregate_empty_panics() {
        aggregate_errors(&[]);
    }
}
