//! Router FIB feasibility (§7.2.1) and the IPv4 market sketch (§8).
//!
//! If every unused prefix were allocated and routed, would forwarding
//! tables cope? The paper counts the prefixes that would exist, compares
//! against the FIB capacities Juniper reported in 2007 (≈ 2 M IPv4 routes
//! then, ≈ 10 M feasible "within a few years"), and concludes routing all
//! of it is feasible. §8 adds a back-of-envelope market value for the
//! routed-but-unused space at the observed US$8–17 per address.

use ghosts_net::freeblocks::BlockCounts;

/// FIB capacity of a 2007-era high-end router (Juniper M120/MX960,
/// [30] in the paper).
pub const FIB_CAPACITY_2007: u64 = 2_000_000;

/// FIB capacity the paper's reference deems feasible "within a few
/// years if demand exists".
pub const FIB_CAPACITY_FEASIBLE: u64 = 10_000_000;

/// The FIB pressure if all unused prefixes were routed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FibProjection {
    /// Prefixes already routed.
    pub current_routes: u64,
    /// Additional routes if every vacant /8–/24 block were announced
    /// as-is (blocks longer than /24 are not routable, §7.1).
    pub new_routes: u64,
    /// Total after full allocation.
    pub total_routes: u64,
    /// Whether the total fits a 2007-era FIB.
    pub fits_2007_fib: bool,
    /// Whether the total fits the near-term-feasible FIB.
    pub fits_feasible_fib: bool,
}

/// Projects FIB growth from the free-block census (`x[len]` = vacant
/// maximal blocks of each prefix length) plus the current route count.
pub fn project_fib(current_routes: u64, free: &BlockCounts) -> FibProjection {
    let new_routes: u64 = (8..=24).map(|len| free[len]).sum();
    let total = current_routes + new_routes;
    FibProjection {
        current_routes,
        new_routes,
        total_routes: total,
        fits_2007_fib: total <= FIB_CAPACITY_2007,
        fits_feasible_fib: total <= FIB_CAPACITY_FEASIBLE,
    }
}

/// The §8 market sketch: the value of unused routed /24s at a per-address
/// price ("previous sales … US$8–17 per IP; at an average price of US$10
/// per IP address, the 4.4 million routed unused /24 subnets have a value
/// of over US$11 billion").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketSketch {
    /// Unused routed /24 subnets.
    pub unused_subnets: f64,
    /// Price per address used.
    pub price_per_address: f64,
    /// Implied total value in the same currency unit.
    pub total_value: f64,
}

/// Values the unused routed /24s at a given per-address price.
pub fn market_value(unused_subnets: f64, price_per_address: f64) -> MarketSketch {
    MarketSketch {
        unused_subnets,
        price_per_address,
        total_value: unused_subnets * 256.0 * price_per_address,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fib_numbers() {
        // §7.2.1: "including the unrouted space there are 0.78 million
        // prefixes that are /24 or larger … more than 0.5 million routed
        // prefixes already … feasible to use and route all less than
        // 1.3 million available prefixes."
        let mut free: BlockCounts = [0; 33];
        // 0.78 M free /8–/24 blocks, spread arbitrarily over the lengths.
        free[20] = 200_000;
        free[22] = 280_000;
        free[24] = 300_000;
        let proj = project_fib(500_000, &free);
        assert_eq!(proj.new_routes, 780_000);
        assert_eq!(proj.total_routes, 1_280_000);
        assert!(proj.fits_2007_fib);
        assert!(proj.fits_feasible_fib);
    }

    #[test]
    fn blocks_below_routable_granularity_ignored() {
        let mut free: BlockCounts = [0; 33];
        free[25] = 1_000_000;
        free[32] = 5_000_000;
        let proj = project_fib(100, &free);
        assert_eq!(proj.new_routes, 0);
        assert_eq!(proj.total_routes, 100);
    }

    #[test]
    fn overflow_detected() {
        let mut free: BlockCounts = [0; 33];
        free[24] = 12_000_000;
        let proj = project_fib(500_000, &free);
        assert!(!proj.fits_2007_fib);
        assert!(!proj.fits_feasible_fib);
    }

    #[test]
    fn paper_market_value() {
        // 4.4 M routed unused /24s at US$10/address ≈ US$11.3 G.
        let m = market_value(4_400_000.0, 10.0);
        assert!(m.total_value > 11.0e9 && m.total_value < 12.0e9);
    }
}
