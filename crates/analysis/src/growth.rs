//! Growth analysis over the quarterly windows (§6).
//!
//! Collects routed/observed/estimated series per window, fits linear
//! trends (the paper: "growth in used /24 subnets and IPv4 addresses was
//! roughly linear, with an increase of 0.45 million /24 subnets and 170
//! million IPv4 addresses per year"), and produces the normalised views of
//! Figs 4–6 and the per-stratum yearly growth of Figs 7–9.

use ghosts_pipeline::time::TimeWindow;
use ghosts_stats::regression::{linear_fit, moving_average, LinearFit, RegressionError};

/// One point of a windowed series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// The window (statistics attach to its end).
    pub window: TimeWindow,
    /// Value at that window.
    pub value: f64,
}

/// A named series over the study windows.
#[derive(Debug, Clone)]
pub struct Series {
    /// Display name ("Routed", "Observed", "Estimated").
    pub name: String,
    /// The points, in window order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates a series from values aligned with `windows`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn new(name: impl Into<String>, windows: &[TimeWindow], values: &[f64]) -> Self {
        assert_eq!(windows.len(), values.len(), "series length mismatch");
        Self {
            name: name.into(),
            points: windows
                .iter()
                .zip(values)
                .map(|(&window, &value)| SeriesPoint { window, value })
                .collect(),
        }
    }

    /// The values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Values normalised on the first point (the paper's normalised plots:
    /// "we always normalise each series on the first value").
    pub fn normalised(&self) -> Vec<f64> {
        let first = self.points.first().map(|p| p.value).unwrap_or(1.0);
        if ghosts_stats::approx::is_exact_zero(first) {
            return self.points.iter().map(|_| f64::NAN).collect();
        }
        self.points.iter().map(|p| p.value / first).collect()
    }

    /// Centred moving-average smoothing (the solid "smoothed" line in
    /// Figs 4–5).
    pub fn smoothed(&self, half: usize) -> Vec<f64> {
        moving_average(&self.values(), half)
    }

    /// Linear trend against time in years (x = years since the first
    /// window's end). The slope is the per-year growth.
    ///
    /// # Errors
    ///
    /// Propagates regression errors (fewer than two points).
    pub fn trend(&self) -> Result<LinearFit, RegressionError> {
        let xs: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.window.end().years_since_first_window_end())
            .collect();
        linear_fit(&xs, &self.values())
    }

    /// Average yearly growth as an absolute rate (trend slope).
    pub fn yearly_growth_abs(&self) -> f64 {
        self.trend().map(|f| f.slope).unwrap_or(0.0)
    }

    /// Average relative yearly growth in percent, measured against the
    /// series midpoint (robust to which end the growth concentrates on).
    pub fn yearly_growth_rel_percent(&self) -> f64 {
        let vals = self.values();
        let mid = ghosts_stats::summary::mean(&vals);
        if ghosts_stats::approx::is_exact_zero(mid) {
            return 0.0;
        }
        100.0 * self.yearly_growth_abs() / mid
    }
}

/// Growth of one stratum (a bar of Figs 7–9).
#[derive(Debug, Clone)]
pub struct StratumGrowth {
    /// Stratum label (prefix size, allocation year, country …).
    pub label: String,
    /// Observed absolute yearly growth.
    pub observed_abs: f64,
    /// Estimated absolute yearly growth.
    pub estimated_abs: f64,
    /// Observed relative yearly growth (percent).
    pub observed_rel: f64,
    /// Estimated relative yearly growth (percent).
    pub estimated_rel: f64,
}

/// Computes per-stratum growth from aligned observed/estimated series.
pub fn stratum_growth(
    label: impl Into<String>,
    observed: &Series,
    estimated: &Series,
) -> StratumGrowth {
    StratumGrowth {
        label: label.into(),
        observed_abs: observed.yearly_growth_abs(),
        estimated_abs: estimated.yearly_growth_abs(),
        observed_rel: observed.yearly_growth_rel_percent(),
        estimated_rel: estimated.yearly_growth_rel_percent(),
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use ghosts_pipeline::time::paper_windows;

    fn lin_series(name: &str, base: f64, slope_per_window: f64) -> Series {
        let ws = paper_windows();
        let vals: Vec<f64> = (0..ws.len())
            .map(|i| base + slope_per_window * i as f64)
            .collect();
        Series::new(name, &ws, &vals)
    }

    #[test]
    fn trend_recovers_yearly_slope() {
        // +10 per window = +40 per year.
        let s = lin_series("x", 100.0, 10.0);
        let fit = s.trend().unwrap();
        assert!((fit.slope - 40.0).abs() < 1e-9);
        assert!((s.yearly_growth_abs() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn normalised_starts_at_one() {
        let s = lin_series("x", 200.0, 20.0);
        let n = s.normalised();
        assert_eq!(n[0], 1.0);
        assert!((n.last().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_growth_in_percent() {
        // Slope 40/yr on a series with mean 300: ~13.3 %/yr.
        let s = lin_series("x", 200.0, 10.0);
        let mean = ghosts_stats::summary::mean(&s.values());
        assert!((s.yearly_growth_rel_percent() - 100.0 * 40.0 / mean).abs() < 1e-9);
    }

    #[test]
    fn smoothing_reduces_noise() {
        let ws = paper_windows();
        let vals: Vec<f64> = (0..ws.len())
            .map(|i| 100.0 + i as f64 + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let s = Series::new("noisy", &ws, &vals);
        let sm = s.smoothed(1);
        let raw_dev: f64 = vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        let smooth_dev: f64 = sm.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(smooth_dev < raw_dev);
    }

    #[test]
    fn stratum_growth_aggregates_both_series() {
        let obs = lin_series("obs", 100.0, 5.0);
        let est = lin_series("est", 150.0, 10.0);
        let g = stratum_growth("APNIC", &obs, &est);
        assert!((g.observed_abs - 20.0).abs() < 1e-9);
        assert!((g.estimated_abs - 40.0).abs() < 1e-9);
        assert!(g.estimated_rel > g.observed_rel);
    }

    #[test]
    fn zero_first_value_normalises_to_nan() {
        let ws = paper_windows();
        let vals = vec![0.0; ws.len()];
        let s = Series::new("zero", &ws, &vals);
        assert!(s.normalised()[0].is_nan());
    }
}
