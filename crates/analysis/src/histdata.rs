//! Embedded long-term context series for Fig 10.
//!
//! Fig 10 juxtaposes the study's windows against a decade of history:
//! allocated addresses since 2003 (RIR delegation files / potaroo),
//! routed addresses since 2008 (RouteViews) and pingable addresses
//! 2003–2011 (USC/LANDER censuses). These are public context series the
//! reproduction embeds as constants, with values read off the published
//! figure and the cited census reports (Pryadkin 2004: 62 M; Heidemann
//! 2007/2008 census: 112 M; the paper's own censuses from 2011 on). They
//! are *anchors for plotting*, not measurement outputs of this system.

/// Allocated IPv4 addresses (billions) at year end, 2003–2014.
pub const ALLOCATED_G: [(u16, f64); 12] = [
    (2003, 1.88),
    (2004, 1.98),
    (2005, 2.10),
    (2006, 2.25),
    (2007, 2.41),
    (2008, 2.56),
    (2009, 2.72),
    (2010, 2.95),
    (2011, 3.18),
    (2012, 3.26),
    (2013, 3.32),
    (2014, 3.36),
];

/// Routed IPv4 addresses (billions) at year end, 2008–2014 (RouteViews).
pub const ROUTED_G: [(u16, f64); 7] = [
    (2008, 1.99),
    (2009, 2.11),
    (2010, 2.27),
    (2011, 2.46),
    (2012, 2.57),
    (2013, 2.65),
    (2014, 2.73),
];

/// Pingable IPv4 addresses (billions) from the USC/LANDER censuses
/// 2003–2011 (the paper's own IPING takes over from 2012).
pub const PING_HISTORY_G: [(u16, f64); 9] = [
    (2003, 0.055),
    (2004, 0.062),
    (2005, 0.075),
    (2006, 0.095),
    (2007, 0.112),
    (2008, 0.140),
    (2009, 0.190),
    (2010, 0.255),
    (2011, 0.330),
];

/// Linear interpolation into a `(year, value)` series at a fractional
/// year. Clamps outside the series range.
pub fn interpolate(series: &[(u16, f64)], year: f64) -> f64 {
    let first = series.first().expect("non-empty series"); // lint: allow(no-unwrap) static tables
    let last = series.last().expect("non-empty series"); // lint: allow(no-unwrap) static tables
    if year <= f64::from(first.0) {
        return first.1;
    }
    if year >= f64::from(last.0) {
        return last.1;
    }
    for pair in series.windows(2) {
        let (y0, v0) = (f64::from(pair[0].0), pair[0].1);
        let (y1, v1) = (f64::from(pair[1].0), pair[1].1);
        if (y0..=y1).contains(&year) {
            let t = (year - y0) / (y1 - y0);
            return v0 + t * (v1 - v0);
        }
    }
    unreachable!("year inside range must fall in a segment")
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn series_monotone_increasing() {
        for s in [&ALLOCATED_G[..], &ROUTED_G[..], &PING_HISTORY_G[..]] {
            for pair in s.windows(2) {
                assert!(pair[1].1 > pair[0].1, "{pair:?}");
            }
        }
    }

    #[test]
    fn allocation_slowdown_after_2011() {
        // Fig 10: the boom 2004–2011, then the slowdown.
        let boom = ALLOCATED_G[8].1 - ALLOCATED_G[1].1; // 2011 − 2004
        let slow = ALLOCATED_G[11].1 - ALLOCATED_G[8].1; // 2014 − 2011
        assert!(boom / 7.0 > 2.5 * (slow / 3.0));
    }

    #[test]
    fn routed_below_allocated() {
        for (y, v) in ROUTED_G {
            let alloc = ALLOCATED_G.iter().find(|(yy, _)| *yy == y).unwrap().1;
            assert!(v < alloc, "routed {v} above allocated {alloc} in {y}");
        }
    }

    #[test]
    fn census_anchors_match_literature() {
        // Pryadkin et al. 2003/04: 62 M; Heidemann census 2007: 112 M.
        let v2004 = PING_HISTORY_G.iter().find(|(y, _)| *y == 2004).unwrap().1;
        let v2007 = PING_HISTORY_G.iter().find(|(y, _)| *y == 2007).unwrap().1;
        assert!((v2004 - 0.062).abs() < 1e-9);
        assert!((v2007 - 0.112).abs() < 1e-9);
    }

    #[test]
    fn interpolation() {
        assert_eq!(interpolate(&ROUTED_G, 2008.0), 1.99);
        assert_eq!(interpolate(&ROUTED_G, 1990.0), 1.99); // clamped
        assert_eq!(interpolate(&ROUTED_G, 2050.0), 2.73); // clamped
        let mid = interpolate(&ROUTED_G, 2008.5);
        assert!((mid - 2.05).abs() < 1e-9);
    }
}
