//! # ghosts-analysis
//!
//! The analysis layer of the *Capturing Ghosts* reproduction: everything
//! that turns per-window CR estimates into the paper's results.
//!
//! * [`growth`] — windowed series, linear trends, per-stratum yearly
//!   growth (§6, Figs 4–9).
//! * [`crossval`] — leave-one-source-as-universe cross-validation (§5,
//!   Table 3, Fig 3), re-exported from `ghosts_reliability` where it now
//!   lives as a first-class batched parallel experiment.
//! * [`unused`] — the free-block merge model and ghost distribution (§7,
//!   Fig 12).
//! * [`supply`] — available space and run-out projections (Table 6).
//! * [`users`] — the ITU user-growth cross-check (§6.9, Fig 11).
//! * [`fib`] — FIB feasibility and the market sketch (§7.2.1, §8).
//! * [`histdata`] — embedded long-term context series (Fig 10).
//! * [`report`] — text-table rendering for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ghosts_reliability::crossval;

pub mod fib;
pub mod growth;
pub mod histdata;
pub mod report;
pub mod supply;
pub mod unused;
pub mod users;

pub use fib::{market_value, project_fib, FibProjection, MarketSketch};
pub use ghosts_reliability::crossval::{
    aggregate_errors, cross_validate_batch, cross_validate_window, observed_baseline_errors,
    CrossValResult, CvBatchReport, CvCell, CvErrors, CvFailure, CvReport, CvSkip, Granularity,
};
pub use growth::{stratum_growth, Series, SeriesPoint, StratumGrowth};
pub use report::TextTable;
pub use supply::{project, SupplyRow};
pub use unused::{
    census_addrs, census_subnets, distribute_ghosts, estimate_ratios, CensusDepth, MergeRatios,
};
