//! Plain-text table rendering for the experiment harness.
//!
//! Every table and figure of the paper is regenerated as text: a header,
//! aligned columns, and (from the harness) a JSON sidecar. This module owns
//! the text part.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = !cell.is_empty()
                    && cell.chars().any(|c| c.is_ascii_digit())
                    && cell
                        .chars()
                        .all(|c| c.is_ascii_digit() || "+-.%eE()–".contains(c));
                if numeric {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    if i + 1 < cols {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a count in millions with one decimal ("1234567" → "1.2").
pub fn fmt_millions(x: f64) -> String {
    format!("{:.1}", x / 1.0e6)
}

/// Formats a count in thousands with one decimal.
pub fn fmt_thousands(x: f64) -> String {
    format!("{:.1}", x / 1.0e3)
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_percent(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Name", "IPs"]);
        t.row(["WIKI", "5.5"]);
        t.row(["IPING", "320.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: both rows end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("320.3"));
    }

    #[test]
    #[should_panic]
    fn ragged_row_panics() {
        TextTable::new(["A", "B"]).row(["only-one"]);
    }

    #[test]
    fn single_letters_left_aligned() {
        let mut t = TextTable::new(["Network", "Value"]);
        t.row(["E", "1.0"]);
        t.row(["LongName", "22.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with('E'), "{s}");
        // Numbers with signs/parens still right-align.
        let mut t2 = TextTable::new(["A", "B"]);
        t2.row(["x", "15.5(-10.2)"]);
        t2.row(["y", "1.0"]);
        let s2 = t2.render();
        assert!(s2.lines().last().unwrap().ends_with("1.0"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_millions(6_300_000.0), "6.3");
        assert_eq!(fmt_thousands(1_234.0), "1.2");
        assert_eq!(fmt_percent(0.451), "45.1");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["X"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
