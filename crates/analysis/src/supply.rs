//! Supply projection: available space, growth rates and run-out years per
//! RIR (§7.2.2, Table 6).
//!
//! "Available" is unallocated space plus allocated-but-unused routed space
//! (from the CR estimates), under the paper's "very optimistic assumption
//! that the whole unused space could be utilised"; the run-out year is
//! when linear growth exhausts it. A utilisation-cap scenario (e.g. only
//! 75% of routed /24s can ever be used) tightens the projection (§7.2.2,
//! §8).

use crate::growth::Series;
use ghosts_net::Rir;

/// One row of the Table-6-style projection.
#[derive(Debug, Clone)]
pub struct SupplyRow {
    /// The registry (or `None` for the world total).
    pub rir: Option<Rir>,
    /// Available identifiers (unallocated + routed-but-unused).
    pub available: f64,
    /// Current growth in identifiers per year.
    pub growth_per_year: f64,
    /// Projected run-out year (fractional), `None` when growth ≤ 0.
    pub runout_year: Option<f64>,
}

/// The decision point the projection anchors on: end of June 2014.
pub const PROJECTION_EPOCH: f64 = 2014.5;

/// Computes one supply row.
///
/// * `unallocated` — the RIR's remaining free pool.
/// * `routed` — its routed identifiers (addresses or /24s).
/// * `estimated_used` — CR-estimated used identifiers at the last window.
/// * `usage_series` — estimated usage per window, for the growth fit.
/// * `utilisation_cap` — fraction of the routed space that can ever be
///   used (1.0 for the optimistic Table 6; 0.75 for the pessimistic §8
///   scenario). The cap shrinks the *usable* routed headroom.
pub fn project(
    rir: Option<Rir>,
    unallocated: f64,
    routed: f64,
    estimated_used: f64,
    usage_series: &Series,
    utilisation_cap: f64,
) -> SupplyRow {
    let headroom = (routed * utilisation_cap - estimated_used).max(0.0);
    let available = unallocated + headroom;
    let growth_per_year = usage_series.yearly_growth_abs();
    let runout_year = if growth_per_year > 0.0 {
        Some(PROJECTION_EPOCH + available / growth_per_year)
    } else {
        None
    };
    SupplyRow {
        rir,
        available,
        growth_per_year,
        runout_year,
    }
}

/// Remaining unallocated pools in mid-2014, as fractions of the total
/// ≈ 5.5 /8s the paper cites ("In July 2014 roughly 5.5 /8 networks of
/// unallocated addresses remained"). AfriNIC held most of the slack; the
/// other RIRs were at or near their last-/8 policies.
pub fn unallocated_share(rir: Rir) -> f64 {
    match rir {
        Rir::AfriNic => 0.60,
        Rir::Apnic => 0.07,
        Rir::Arin => 0.18,
        Rir::LacNic => 0.04,
        Rir::Ripe => 0.11,
    }
}

/// The paper's total unallocated pool in addresses (≈ 5.5 /8s ≈ 92 M), to
/// be scaled by the simulation's scale factor.
pub const UNALLOCATED_TOTAL_2014: f64 = 5.5 * 16_777_216.0;

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use ghosts_pipeline::time::paper_windows;

    fn series(base: f64, per_window: f64) -> Series {
        let ws = paper_windows();
        let vals: Vec<f64> = (0..ws.len())
            .map(|i| base + per_window * i as f64)
            .collect();
        Series::new("est", &ws, &vals)
    }

    #[test]
    fn paper_world_numbers_reproduce_2023() {
        // World: 90 M unallocated + (2725 M routed − 1150 M used) at
        // growth 170 M/yr → run-out 2023–2024 (§7.2.2).
        let s = series(720.0e6, 42.5e6); // 42.5 M per quarter-window ≈ 170 M/yr
        let row = project(None, 90.0e6, 2725.0e6, 1150.0e6, &s, 1.0);
        assert!((row.growth_per_year - 170.0e6).abs() < 1.0e6);
        let runout = row.runout_year.unwrap();
        assert!(
            (2023.0..2025.0).contains(&runout),
            "run-out {runout} (paper: 2023–2024)"
        );
    }

    #[test]
    fn utilisation_cap_tightens_runout() {
        let s = series(720.0e6, 42.5e6);
        let optimistic = project(None, 90.0e6, 2725.0e6, 1150.0e6, &s, 1.0);
        let capped = project(None, 90.0e6, 2725.0e6, 1150.0e6, &s, 0.75);
        assert!(capped.available < optimistic.available);
        assert!(capped.runout_year.unwrap() < optimistic.runout_year.unwrap());
        // The paper's "~2018 under a 75% cap" figure is the /24-subnet
        // view; on addresses the same cap lands around 2020.
        let y = capped.runout_year.unwrap();
        assert!((2019.0..2021.0).contains(&y), "capped run-out {y}");
    }

    #[test]
    fn used_beyond_cap_leaves_only_unallocated() {
        let s = series(100.0, 10.0);
        let row = project(Some(Rir::Apnic), 50.0, 1000.0, 990.0, &s, 0.75);
        // 75% cap = 750 < used 990 → headroom 0.
        assert_eq!(row.available, 50.0);
    }

    #[test]
    fn zero_growth_never_runs_out() {
        let s = series(100.0, 0.0);
        let row = project(None, 10.0, 100.0, 50.0, &s, 1.0);
        assert!(row.runout_year.is_none());
    }

    #[test]
    fn unallocated_shares_sum_to_one() {
        let total: f64 = Rir::ALL.iter().map(|&r| unallocated_share(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // AfriNIC holds the most slack; LACNIC the least (ran out first).
        assert!(unallocated_share(Rir::AfriNic) > unallocated_share(Rir::Arin));
        assert!(unallocated_share(Rir::LacNic) < unallocated_share(Rir::Ripe));
    }
}
