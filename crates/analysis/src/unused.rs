//! The unused-space prediction model of §7.
//!
//! CR says how many ghosts exist but not where; this model predicts how
//! they are distributed among the seemingly-empty blocks. It rests on the
//! observation that when a new data source ∆ is merged into a set S, the
//! probability a newly revealed address lands in a vacant /i block is
//! proportional to `f_i · x_i` — with the ratios `f₁:…:f₃₂` approximately
//! constant across merges (§7.1, eq. 4). The `f_i` are estimated from real
//! merges via the census relation `x' − x = A·n`, then the CR ghost count
//! is "played forward" through the same dynamics.

use ghosts_net::freeblocks::{additions_by_block_size, free_block_census, BlockCounts};
use ghosts_net::{AddrSet, Prefix, SubnetSet};

/// Census granularities supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensusDepth {
    /// Free blocks down to /32 (address-level model).
    Addresses,
    /// Free blocks down to /24 (subnet-level model).
    Subnets,
}

impl CensusDepth {
    fn max_depth(self) -> u8 {
        match self {
            CensusDepth::Addresses => 32,
            CensusDepth::Subnets => 24,
        }
    }
}

/// Free-block census of a used address set within a universe of disjoint
/// prefixes.
pub fn census_addrs(universe: &[Prefix], used: &AddrSet) -> BlockCounts {
    free_block_census(universe, &|p| used.count_in_prefix(p), 32)
}

/// Free-block census of a used /24 set within a universe (lengths > 24 in
/// the universe are rejected by the underlying census).
pub fn census_subnets(universe: &[Prefix], used: &SubnetSet) -> BlockCounts {
    free_block_census(universe, &|p| used.count_in_prefix(p), 24)
}

/// Estimated merge dynamics: the `f` ratios of eq. (4), normalised so the
/// deepest level is 1.
#[derive(Debug, Clone)]
pub struct MergeRatios {
    /// `f[len]` for len `0..=32` (entries beyond the census depth are 0).
    pub f: [f64; 33],
    /// How many merge experiments were averaged.
    pub merges: usize,
}

/// Estimates the `f` ratios from one or more merge experiments.
///
/// Each experiment is a pair (census before, census after) of merging one
/// dataset into the rest. Estimates are averaged over experiments because
/// few large blocks change per merge, making single-merge `f_i` for small
/// `i` noisy (§7.1: "estimates were averaged over four cases").
///
/// # Panics
///
/// Panics if `experiments` is empty.
#[allow(clippy::needless_range_loop)] // rate/denominator arrays share the level index
pub fn estimate_ratios(
    experiments: &[(BlockCounts, BlockCounts)],
    depth: CensusDepth,
) -> MergeRatios {
    assert!(
        !experiments.is_empty(),
        "need at least one merge experiment"
    );
    let deepest = depth.max_depth() as usize;
    let mut f_acc = [0.0f64; 33];
    let mut f_weight = [0.0f64; 33];
    for (before, after) in experiments {
        let n = additions_by_block_size(before, after);
        // Denominators of eq. (4): x_i + Σ_{j<i} n_j (vacancies available
        // at level i during this merge).
        let mut prefix_n = 0.0;
        let mut rates = [0.0f64; 33];
        for len in 0..=deepest {
            let avail = before[len] as f64 + prefix_n;
            if avail > 0.0 && n[len] >= 0.0 {
                rates[len] = n[len] / avail;
            }
            prefix_n += n[len];
        }
        // Normalise on the deepest level with a positive rate (the paper
        // fixes f_32 = 1, but a merge need not add anything to a vacant
        // /32, so fall back to the deepest level that did fill).
        let norm_level = (0..=deepest).rev().find(|&l| rates[l] > 0.0);
        if let Some(nl) = norm_level {
            let norm = rates[nl];
            for len in 0..=deepest {
                if rates[len] > 0.0 {
                    f_acc[len] += rates[len] / norm;
                    f_weight[len] += 1.0;
                }
            }
        }
    }
    let mut f = [0.0f64; 33];
    for len in 0..=deepest {
        if f_weight[len] > 0.0 {
            f[len] = f_acc[len] / f_weight[len];
        }
    }
    // Rescale so the deepest positive level is 1 (f_32 = 1 convention).
    if let Some(nl) = (0..=deepest).rev().find(|&l| f[l] > 0.0) {
        let norm = f[nl];
        for v in f.iter_mut() {
            *v /= norm;
        }
    } else {
        f[deepest] = 1.0;
    }
    MergeRatios {
        f,
        merges: experiments.len(),
    }
}

/// Plays `ghosts` unseen individuals forward through the block dynamics:
/// each batch lands in vacant /i blocks with probability ∝ `f_i·x_i`;
/// filling a vacant /i removes it and spawns one vacant /j for every
/// j in (i, depth]. Returns the additions per block size `n`.
///
/// Deterministic fluid approximation with adaptive step size (no RNG): the
/// counts are large and the paper's model is itself about expectations.
#[allow(clippy::needless_range_loop)] // parallel fills/x/n updates per level
pub fn distribute_ghosts(
    start: &BlockCounts,
    ratios: &MergeRatios,
    ghosts: f64,
    depth: CensusDepth,
) -> [f64; 33] {
    let deepest = depth.max_depth() as usize;
    let mut x: [f64; 33] = [0.0; 33];
    for len in 0..=32 {
        x[len] = start[len] as f64;
    }
    let mut n = [0.0f64; 33];
    let mut remaining = ghosts.max(0.0);
    for _ in 0..200_000 {
        if remaining <= 1e-9 {
            break;
        }
        let weights: Vec<f64> = (0..=deepest).map(|l| ratios.f[l] * x[l]).collect();
        let total_w: f64 = weights.iter().sum();
        if total_w <= 0.0 {
            break; // no vacancies left anywhere
        }
        // Step size: keep each allocation below half the vacancies at its
        // level so no x_l crosses zero within the step.
        let mut step = remaining;
        for (l, &w) in weights.iter().enumerate() {
            if w > 0.0 && x[l] > 0.0 {
                step = step.min(0.5 * x[l] * total_w / w);
            }
        }
        step = step
            .clamp(f64::MIN_POSITIVE, remaining)
            .max(remaining.min(1e-6));
        // Fill: x_l loses the allocations it receives; every fill at level
        // l spawns one vacancy at each deeper level j > l.
        let fills: Vec<f64> = weights.iter().map(|w| step * w / total_w).collect();
        let mut fills_above = 0.0;
        for l in 0..=deepest {
            n[l] += fills[l];
            x[l] = (x[l] - fills[l]).max(0.0) + fills_above;
            fills_above += fills[l];
        }
        remaining -= step;
    }
    n
}

/// Addresses covered by the free blocks of a (possibly fractional) census.
pub fn free_addresses_f(x: &[f64; 33]) -> f64 {
    x.iter()
        .enumerate()
        .map(|(len, &c)| c * (1u64 << (32 - len)) as f64)
        .sum()
}

/// Applies additions `n` to an integer census, returning the predicted
/// fractional census after the ghosts are placed.
pub fn predicted_census(start: &BlockCounts, n: &[f64; 33]) -> [f64; 33] {
    ghosts_net::freeblocks::apply_additions(start, n)
}

/// Number of /24-equivalents covered by additions `n` into blocks of size
/// /8…/24 — the quantity cross-checked against the LLM's ghost /24
/// estimate ("If the used but unobserved /8 to /24 subnets estimated by
/// the model … were divided into /24s, there would be 0.3 million /24s",
/// §7.2).
pub fn ghost_subnet_equivalents(n: &[f64; 33]) -> f64 {
    (8..=24)
        .map(|len| n[len] * (1u64 << (24 - len)) as f64)
        .sum()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn ratios_from_single_uniform_merge() {
        // Universe: one /16. Before: empty. After: 4 addresses spread into
        // different /17+ blocks.
        let universe = [p("10.0.0.0/16")];
        let before = census_addrs(&universe, &AddrSet::new());
        let after_set: AddrSet = ["10.0.0.1", "10.0.128.1", "10.0.64.1", "10.0.192.1"]
            .iter()
            .map(|s| ghosts_net::addr_from_str(s).unwrap())
            .collect();
        let after = census_addrs(&universe, &after_set);
        let ratios = estimate_ratios(&[(before, after)], CensusDepth::Addresses);
        assert_eq!(ratios.merges, 1);
        // The shallow levels got filled (the /16 vacancy was consumed).
        assert!(ratios.f[16] > 0.0);
        // The deepest positive level is normalised to 1.
        let deepest_pos = (0..=32).rev().find(|&l| ratios.f[l] > 0.0).unwrap();
        assert!((ratios.f[deepest_pos] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn distribute_conserves_ghost_mass() {
        let universe = [p("10.0.0.0/16")];
        let mut used = AddrSet::new();
        used.insert(ghosts_net::addr_from_str("10.0.0.1").unwrap());
        let start = census_addrs(&universe, &used);
        let mut f = [0.0f64; 33];
        for l in 0..=32 {
            f[l] = 1.0;
        }
        let ratios = MergeRatios { f, merges: 1 };
        let ghosts = 500.0;
        let n = distribute_ghosts(&start, &ratios, ghosts, CensusDepth::Addresses);
        let placed: f64 = n.iter().sum();
        assert!(
            (placed - ghosts).abs() < 1.0,
            "placed {placed} of {ghosts} ghosts"
        );
    }

    #[test]
    fn distribution_prefers_weighted_levels() {
        // Two starting vacancy levels; weight one heavily.
        let mut start: BlockCounts = [0; 33];
        start[20] = 10;
        start[24] = 10;
        let mut f = [0.0f64; 33];
        f[20] = 10.0;
        f[24] = 0.1;
        f[32] = 1.0;
        let ratios = MergeRatios { f, merges: 1 };
        let n = distribute_ghosts(&start, &ratios, 5.0, CensusDepth::Addresses);
        assert!(n[20] > n[24], "n20 {} vs n24 {}", n[20], n[24]);
    }

    #[test]
    fn no_vacancies_places_nothing() {
        let start: BlockCounts = [0; 33];
        let mut f = [0.0f64; 33];
        f[32] = 1.0;
        let ratios = MergeRatios { f, merges: 1 };
        let n = distribute_ghosts(&start, &ratios, 100.0, CensusDepth::Addresses);
        assert_eq!(n.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn ghost_subnet_equivalents_counts_24s() {
        let mut n = [0.0f64; 33];
        n[24] = 10.0; // ten /24s
        n[20] = 1.0; // one /20 = 16 /24s
        assert!((ghost_subnet_equivalents(&n) - 26.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn subnet_census_depth() {
        let universe = [p("10.0.0.0/16")];
        let mut used = SubnetSet::new();
        used.insert_addr(ghosts_net::addr_from_str("10.0.0.0").unwrap());
        let x = census_subnets(&universe, &used);
        // One /24 used in a /16: maximal free blocks at /17../24.
        for len in 17..=24 {
            assert_eq!(x[len], 1, "len {len}");
        }
        assert_eq!(x[25..].iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic]
    fn empty_experiments_panic() {
        estimate_ratios(&[], CensusDepth::Addresses);
    }
}
