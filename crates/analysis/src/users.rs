//! The Internet-user growth cross-check of §6.9 (Fig 11).
//!
//! The paper argues address growth is driven by user-population growth:
//! with household size `H`, employment ratio `p_E` and `W` employees per
//! work address, yearly address growth is `g_I = (1/H + p_E/W)·g_U`.
//! With `H ∈ [2,5]`, `W ∈ [2,200]`, `p_E = 0.65` and `g_U ≈ 250 M/yr`
//! (2007–2012), the bound is 50–205 M addresses/yr — bracketing the CR
//! estimate of 170 M/yr.

/// ITU Internet-user counts in millions, December of each year 1995–2013
/// (Fig 11; the paper cites ITU's 2005–2013 ICT data, earlier points are
/// the well-known ITU series).
pub const ITU_USERS_M: [(u16, f64); 19] = [
    (1995, 16.0),
    (1996, 36.0),
    (1997, 70.0),
    (1998, 147.0),
    (1999, 248.0),
    (2000, 361.0),
    (2001, 513.0),
    (2002, 587.0),
    (2003, 719.0),
    (2004, 817.0),
    (2005, 1_018.0),
    (2006, 1_093.0),
    (2007, 1_319.0),
    (2008, 1_574.0),
    (2009, 1_802.0),
    (2010, 2_023.0),
    (2011, 2_231.0),
    (2012, 2_494.0),
    (2013, 2_749.0),
];

/// Parameters of the §6.9 model.
#[derive(Debug, Clone, Copy)]
pub struct UserGrowthModel {
    /// Average household size of new Internet users.
    pub household_size: f64,
    /// Employment-to-population ratio.
    pub employment_ratio: f64,
    /// Average employees sharing one public work address.
    pub workers_per_address: f64,
}

impl UserGrowthModel {
    /// Address growth implied by a user growth of `g_u` per year.
    pub fn address_growth(&self, g_u: f64) -> f64 {
        (1.0 / self.household_size + self.employment_ratio / self.workers_per_address) * g_u
    }
}

/// The paper's parameter ranges and the implied bounds.
#[derive(Debug, Clone, Copy)]
pub struct GrowthBounds {
    /// Lower bound on yearly address growth.
    pub lower: f64,
    /// Upper bound on yearly address growth.
    pub upper: f64,
    /// The user growth per year the bounds assume.
    pub user_growth: f64,
}

/// Average ITU user growth per year between two years (inclusive ends).
///
/// # Panics
///
/// Panics if either year is outside the embedded series.
pub fn user_growth_per_year(from: u16, to: u16) -> f64 {
    let get = |y: u16| {
        ITU_USERS_M
            .iter()
            .find(|(yy, _)| *yy == y)
            .unwrap_or_else(|| panic!("year {y} outside ITU series"))
            .1
    };
    (get(to) - get(from)) / f64::from(to - from) * 1.0e6
}

/// The §6.9 bounds: household size 2–5, one work address per 2–200
/// employees, employment ratio 65%.
pub fn paper_bounds() -> GrowthBounds {
    let g_u = user_growth_per_year(2007, 2012);
    let lower = UserGrowthModel {
        household_size: 5.0,
        employment_ratio: 0.65,
        workers_per_address: 200.0,
    }
    .address_growth(g_u);
    let upper = UserGrowthModel {
        household_size: 2.0,
        employment_ratio: 0.65,
        workers_per_address: 2.0,
    }
    .address_growth(g_u);
    GrowthBounds {
        lower,
        upper,
        user_growth: g_u,
    }
}

/// Whether a measured yearly address growth is consistent with the model.
pub fn consistent_with_user_growth(address_growth_per_year: f64) -> bool {
    let b = paper_bounds();
    (b.lower..=b.upper).contains(&address_growth_per_year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itu_series_monotone() {
        for pair in ITU_USERS_M.windows(2) {
            assert!(pair[1].1 > pair[0].1);
            assert_eq!(pair[1].0, pair[0].0 + 1);
        }
        assert_eq!(ITU_USERS_M[0], (1995, 16.0));
        assert_eq!(ITU_USERS_M.last().unwrap().0, 2013);
    }

    #[test]
    fn user_growth_2007_2012_near_250m() {
        let g = user_growth_per_year(2007, 2012);
        // Paper: "Between 2007 and 2012 the number of Internet users grew
        // by roughly 250 million per year".
        assert!((g - 250.0e6).abs() < 30.0e6, "g = {g}");
    }

    #[test]
    fn paper_bounds_bracket_cr_estimate() {
        let b = paper_bounds();
        // Paper: "we would expect the IPv4 addresses to grow between 50
        // million and 205 million per year".
        assert!((40.0e6..=70.0e6).contains(&b.lower), "lower {}", b.lower);
        assert!((180.0e6..=230.0e6).contains(&b.upper), "upper {}", b.upper);
        // The CR estimate of 170 M/yr fits inside.
        assert!(consistent_with_user_growth(170.0e6));
        assert!(!consistent_with_user_growth(400.0e6));
        assert!(!consistent_with_user_growth(10.0e6));
    }

    #[test]
    fn model_formula() {
        let m = UserGrowthModel {
            household_size: 4.0,
            employment_ratio: 0.6,
            workers_per_address: 10.0,
        };
        // 1/4 + 0.6/10 = 0.31 per user.
        assert!((m.address_growth(100.0) - 31.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn out_of_series_year_panics() {
        user_growth_per_year(1990, 2000);
    }
}
