//! Ablation: the two-level bitmap `AddrSet` against `HashSet<u32>` for the
//! workloads the estimator actually runs — bulk insert, membership probes
//! during contingency-table building, and set union.

// The whole point of this ablation is to race AddrSet against the hash
// baseline, so the determinism bans are waived here: iteration order never
// reaches any estimate.
#![allow(clippy::disallowed_types)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ghosts_net::AddrSet;
use ghosts_stats::rng::component_rng;
use rand::Rng;
use std::collections::HashSet; // lint: sorted ablation baseline, order never read

/// Clustered addresses: realistic usage concentrates in /24s.
fn clustered_addrs(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = component_rng(seed, "bench-addrs");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let subnet: u32 = rng.gen_range(0x0100_0000u32..0x0400_0000) & !0xff;
        for _ in 0..rng.gen_range(10..120) {
            out.push(subnet | rng.gen_range(1..255));
            if out.len() == n {
                break;
            }
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let addrs = clustered_addrs(100_000, 1);
    let probes = clustered_addrs(20_000, 2);

    let mut g = c.benchmark_group("addrset_vs_hashset");
    g.bench_function("insert_100k_bitmap", |b| {
        b.iter_batched(
            AddrSet::new,
            |mut s| {
                for &a in &addrs {
                    s.insert(a);
                }
                s.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("insert_100k_hashset", |b| {
        b.iter_batched(
            HashSet::<u32>::new, // lint: sorted ablation baseline
            |mut s| {
                for &a in &addrs {
                    s.insert(a);
                }
                s.len()
            },
            BatchSize::SmallInput,
        )
    });

    let bitmap: AddrSet = addrs.iter().copied().collect();
    let hashset: HashSet<u32> = addrs.iter().copied().collect(); // lint: sorted ablation baseline
    g.bench_function("probe_20k_bitmap", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| bitmap.contains(black_box(a)))
                .count()
        })
    });
    g.bench_function("probe_20k_hashset", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| hashset.contains(&black_box(a)))
                .count()
        })
    });

    let other: AddrSet = clustered_addrs(100_000, 3).into_iter().collect();
    g.bench_function("union_bitmap", |b| {
        b.iter_batched(
            || bitmap.clone(),
            |mut s| {
                s.union_with(&other);
                s.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("intersection_count_bitmap", |b| {
        b.iter(|| bitmap.intersection_count(black_box(&other)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
