//! Free-block census cost (Fig 12's workload): the recursive
//! maximal-free-block sweep over a used set.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_net::freeblocks::{additions_by_block_size, free_block_census};
use ghosts_net::{AddrSet, Prefix};
use ghosts_stats::rng::component_rng;
use rand::Rng;

fn populated(universe: Prefix, n: u32, seed: u64) -> AddrSet {
    let mut rng = component_rng(seed, "bench-free");
    let mut s = AddrSet::new();
    let size = universe.num_addresses();
    while s.len() < u64::from(n) {
        let offset = rng.gen_range(0..size) as u32;
        s.insert(universe.base() + offset);
    }
    s
}

fn bench(c: &mut Criterion) {
    let universe: Prefix = "20.0.0.0/12".parse().unwrap();
    let used = populated(universe, 40_000, 1);
    let mut more = used.clone();
    more.union_with(&populated(universe, 10_000, 2));

    let mut g = c.benchmark_group("freeblocks");
    g.sample_size(10);
    g.bench_function("census_40k_in_slash12", |b| {
        b.iter(|| {
            free_block_census(&[universe], &|p| used.count_in_prefix(p), 32)
                .iter()
                .sum::<u64>()
        })
    });
    let before = free_block_census(&[universe], &|p| used.count_in_prefix(p), 32);
    let after = free_block_census(&[universe], &|p| more.count_in_prefix(p), 32);
    g.bench_function("additions_from_delta", |b| {
        b.iter(|| additions_by_block_size(&before, &after).iter().sum::<f64>())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
