//! Model selection cost (the hot loop of Table 3's sweep), with the
//! DESIGN.md ablations: adaptive vs fixed divisor, and pairwise-only vs
//! pairwise+triples candidate sets.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_core::{
    select_model, CellModel, ContingencyTable, DivisorRule, IcKind, Parallelism, SelectionOptions,
};
use ghosts_stats::rng::component_rng;
use rand::Rng;

fn synthetic_table(t: usize, n: usize, seed: u64) -> ContingencyTable {
    let mut rng = component_rng(seed, "bench-select");
    let mut table = ContingencyTable::new(t);
    for _ in 0..n {
        let sociable = rng.gen_bool(0.5);
        let mut mask = 0u16;
        for i in 0..t {
            let p = if sociable { 0.5 } else { 0.15 };
            if rng.gen_bool(p) {
                mask |= 1 << i;
            }
        }
        table.record(mask);
    }
    table
}

fn bench(c: &mut Criterion) {
    let table6 = synthetic_table(6, 60_000, 1);
    let table9 = synthetic_table(9, 60_000, 2);

    let mut g = c.benchmark_group("model_selection");
    g.sample_size(10);
    for (name, divisor, max_order) in [
        (
            "six_sources_adaptive_pairs",
            DivisorRule::adaptive1000(),
            2u32,
        ),
        ("six_sources_fixed1_pairs", DivisorRule::Fixed(1), 2),
        (
            "six_sources_adaptive_triples",
            DivisorRule::adaptive1000(),
            3,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                select_model(
                    &table6,
                    CellModel::Poisson,
                    &SelectionOptions {
                        ic: IcKind::Bic,
                        divisor,
                        max_order,
                        ..SelectionOptions::default()
                    },
                )
                .unwrap()
                .model
                .num_params()
            })
        });
    }
    g.bench_function("nine_sources_adaptive_pairs", |b| {
        b.iter(|| {
            select_model(&table9, CellModel::Poisson, &SelectionOptions::default())
                .unwrap()
                .model
                .num_params()
        })
    });
    // Sequential vs parallel candidate evaluation on the widest search
    // (nine sources, triples enabled → the largest candidate fan-out).
    for (name, parallelism) in [
        ("nine_sources_triples_seq", Parallelism::SEQUENTIAL),
        ("nine_sources_triples_par4", Parallelism::Fixed(4)),
        ("nine_sources_triples_auto", Parallelism::Auto),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                select_model(
                    &table9,
                    CellModel::Poisson,
                    &SelectionOptions {
                        max_order: 3,
                        parallelism,
                        ..SelectionOptions::default()
                    },
                )
                .unwrap()
                .model
                .num_params()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
