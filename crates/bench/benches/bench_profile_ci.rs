//! Profile-likelihood interval cost (Fig 3's per-source ranges): each
//! interval is ~100 constrained GLM refits.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_core::{profile_interval, CellModel, ContingencyTable, LogLinearModel};

fn bench(c: &mut Criterion) {
    let table = ContingencyTable::from_histories(
        3,
        std::iter::repeat_n(0b001u16, 3_000)
            .chain(std::iter::repeat_n(0b010, 2_000))
            .chain(std::iter::repeat_n(0b100, 2_500))
            .chain(std::iter::repeat_n(0b011, 600))
            .chain(std::iter::repeat_n(0b101, 800))
            .chain(std::iter::repeat_n(0b110, 500))
            .chain(std::iter::repeat_n(0b111, 200)),
    );
    let model = LogLinearModel::independence(3);

    let mut g = c.benchmark_group("profile_ci");
    g.sample_size(10);
    g.bench_function("poisson_alpha_1e7", |b| {
        b.iter(|| {
            profile_interval(&table, &model, CellModel::Poisson, 1e-7)
                .unwrap()
                .upper
        })
    });
    g.bench_function("truncated_alpha_1e7", |b| {
        b.iter(|| {
            profile_interval(&table, &model, CellModel::Truncated { limit: 40_000 }, 1e-7)
                .unwrap()
                .upper
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
