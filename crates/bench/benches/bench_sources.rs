//! Cost of generating one observation window from the ground truth — the
//! dominant fixed cost of every experiment (Table 2 and onwards).

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_pipeline::time::paper_windows;
use ghosts_sim::{Scenario, SimConfig};

fn bench(c: &mut Criterion) {
    let scenario = Scenario::new(SimConfig::tiny(7));
    let windows = paper_windows();

    let mut g = c.benchmark_group("sources");
    g.sample_size(10);
    g.bench_function("window_data_clean_tiny", |b| {
        b.iter(|| scenario.window_data_clean(windows[10]).sources.len())
    });
    g.bench_function("window_data_spoofed_tiny", |b| {
        b.iter(|| scenario.window_data(windows[10]).sources.len())
    });
    g.bench_function("quarter_observations_tiny", |b| {
        b.iter(|| {
            scenario
                .quarter_observations(ghosts_pipeline::time::Quarter(13))
                .len()
        })
    });
    g.bench_function("ground_truth_generation_tiny", |b| {
        b.iter(|| {
            ghosts_sim::GroundTruth::generate(SimConfig::tiny(9))
                .registry
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
