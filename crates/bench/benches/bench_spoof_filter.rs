//! Spoof-filter throughput, with the DESIGN.md ablation: Bayes last-byte
//! stage 2 on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_net::AddrSet;
use ghosts_pipeline::spoof_filter::{filter_spoofed, SpoofFilterConfig};
use ghosts_stats::rng::component_rng;
use rand::Rng;

fn real_usage(per_subnet: u32, subnets: u32) -> AddrSet {
    let mut s = AddrSet::new();
    for sub in 0..subnets {
        let base = (60u32 << 24) | (sub << 8);
        for i in 1..=per_subnet {
            s.insert(base + (i % 200));
        }
    }
    s
}

fn spoofed(count: u64, seed: u64) -> AddrSet {
    let mut rng = component_rng(seed, "bench-spoof");
    let mut s = AddrSet::new();
    while s.len() < count {
        let addr: u32 = rng.gen();
        if !ghosts_net::bogons::is_reserved(addr) {
            s.insert(addr);
        }
    }
    s
}

fn bench(c: &mut Criterion) {
    let clean = real_usage(60, 60);
    let mut target = clean.clone();
    target.union_with(&spoofed(25_000, 1));

    let mut g = c.benchmark_group("spoof_filter");
    g.sample_size(10);
    for (name, stage2) in [("both_stages", true), ("stage1_only", false)] {
        let cfg = SpoofFilterConfig {
            bayes_stage2: stage2,
            ..SpoofFilterConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = component_rng(2, "bench-filter");
                filter_spoofed(&target, &clean, &cfg, &mut rng)
                    .filtered
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
