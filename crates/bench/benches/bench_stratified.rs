//! Stratified estimation cost (Table 5's workload): building stratified
//! contingency tables and estimating each stratum.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_core::{estimate_stratified, ContingencyTable, CrConfig, Parallelism};
use ghosts_net::AddrSet;
use ghosts_stats::rng::component_rng;
use rand::Rng;

/// Four synthetic sources over a universe split into `strata` regions.
fn sources(n: u32, seed: u64) -> Vec<AddrSet> {
    let mut rng = component_rng(seed, "bench-strat");
    let mut sets: Vec<AddrSet> = (0..4).map(|_| AddrSet::new()).collect();
    for addr in 0..n {
        let sociable = rng.gen_bool(0.5);
        for set in sets.iter_mut() {
            let p = if sociable { 0.5 } else { 0.2 };
            if rng.gen_bool(p) {
                set.insert(addr);
            }
        }
    }
    sets
}

fn bench(c: &mut Criterion) {
    let sets = sources(120_000, 1);
    let refs: Vec<&AddrSet> = sets.iter().collect();
    let n_strata = 8usize;
    let cfg = CrConfig {
        truncated: false,
        min_stratum_observed: 0,
        ..CrConfig::paper()
    };

    let mut g = c.benchmark_group("stratified");
    g.sample_size(10);
    g.bench_function("build_8_strata_tables", |b| {
        b.iter(|| {
            ContingencyTable::stratified_from_addr_sets(&refs, n_strata, |addr| {
                Some((addr as usize) % n_strata)
            })
            .len()
        })
    });
    let tables = ContingencyTable::stratified_from_addr_sets(&refs, n_strata, |addr| {
        Some((addr as usize) % n_strata)
    });
    g.bench_function("estimate_8_strata", |b| {
        b.iter(|| estimate_stratified(&tables, None, &cfg).estimated_total)
    });
    // Sequential vs parallel per-stratum fan-out on the same workload.
    for (name, parallelism) in [
        ("estimate_8_strata_seq", Parallelism::SEQUENTIAL),
        ("estimate_8_strata_par4", Parallelism::Fixed(4)),
        ("estimate_8_strata_auto", Parallelism::Auto),
    ] {
        let cfg = CrConfig {
            parallelism,
            ..cfg.clone()
        };
        g.bench_function(name, |b| {
            b.iter(|| estimate_stratified(&tables, None, &cfg).estimated_total)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
