//! Ablation: plain Poisson vs right-truncated Poisson cell likelihoods in
//! the GLM fit (Table 4's comparison) — the truncated family pays for CDF
//! evaluations per Newton step, most when the limit binds.

use criterion::{criterion_group, criterion_main, Criterion};
use ghosts_core::{fit_llm, CellModel, ContingencyTable, LogLinearModel};

fn table(t: usize) -> ContingencyTable {
    // Deterministic cell counts resembling a mid-size stratum.
    let mut table = ContingencyTable::new(t);
    for mask in 1u16..(1 << t) {
        let weight = 1 + u64::from(mask.count_ones()) * 7 + u64::from(mask % 13);
        for _ in 0..(weight * 40) {
            table.record(mask);
        }
    }
    table
}

fn bench(c: &mut Criterion) {
    let t5 = table(5);
    let model = LogLinearModel::with_interactions(5, &[0b00011, 0b00101]);
    let observed = t5.observed_total();

    let mut g = c.benchmark_group("llm_fit");
    g.bench_function("poisson", |b| {
        b.iter(|| fit_llm(&t5, &model, CellModel::Poisson).unwrap().z0)
    });
    g.bench_function("truncated_far_limit", |b| {
        b.iter(|| {
            fit_llm(
                &t5,
                &model,
                CellModel::Truncated {
                    limit: observed * 100,
                },
            )
            .unwrap()
            .z0
        })
    });
    g.bench_function("truncated_tight_limit", |b| {
        b.iter(|| {
            fit_llm(
                &t5,
                &model,
                CellModel::Truncated {
                    limit: observed + observed / 10,
                },
            )
            .unwrap()
            .z0
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
