//! `perf_record` — measures the estimator's hot paths through the
//! observability layer and writes a `RunManifest` perf record
//! (`BENCH_pr3.json` is the committed first point of the trajectory;
//! `BENCH_pr5.json` is the serving layer's; `BENCH_pr6.json` the
//! reliability engine's; `BENCH_pr7.json` ghost-lint's;
//! `BENCH_pr8.json` the telemetry plane's; `BENCH_pr9.json` the durable
//! state plane's; `BENCH_pr10.json` the address plane's).
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin perf_record -- BENCH_pr3.json
//! cargo run -p ghosts-bench --release --bin perf_record -- serve BENCH_pr5.json
//! cargo run -p ghosts-bench --release --bin perf_record -- reliability BENCH_pr6.json
//! cargo run -p ghosts-bench --release --bin perf_record -- lint BENCH_pr7.json
//! cargo run -p ghosts-bench --release --bin perf_record -- obs BENCH_pr8.json
//! cargo run -p ghosts-bench --release --bin perf_record -- durable BENCH_pr9.json
//! cargo run -p ghosts-bench --release --bin perf_record -- addrplane BENCH_pr10.json
//! ```
//!
//! The `serve` mode measures the estimation server end to end over
//! loopback: cold-estimate vs cached-hit latency and requests/sec at
//! worker counts 1 and 4, against an in-process inline backend so the
//! numbers isolate the serving layer (HTTP parse, digest, cache, single
//! flight) from scenario generation.
//!
//! The `reliability` mode measures the parametric-bootstrap fan-out:
//! refit+reselect throughput (refits/sec) over one fixed synthetic table
//! at 1 worker thread and at `auto`, so the record tracks both the
//! per-replicate cost and the parallel speed-up.
//!
//! The `lint` mode (`BENCH_pr7.json`) measures a full-workspace
//! ghost-lint pass: the cold (empty parse cache) wall time, then warm
//! medians at 1 thread and `auto` — the gap between the 1-thread and
//! `auto` lanes is the per-file `par_map` speed-up, and the gap between
//! cold and warm is the content-hash parse cache.
//!
//! The `obs` mode (`BENCH_pr8.json`) measures the telemetry plane
//! itself (DESIGN.md §15): counter/histogram record cost through the
//! sharded registry — asserted at ≤100 ns/op, single-threaded and
//! contended — the `/metrics` render time on a populated hub, and the
//! serving layer's cache-hot request rate re-measured on the lock-free
//! hot path (the regression check against `BENCH_pr5.json`, whose
//! baseline is printed alongside when the file is present).
//!
//! The `durable` mode (`BENCH_pr9.json`) measures the crash-safe state
//! plane (DESIGN.md §16): WAL append latency with the production
//! fsync-per-record policy and with fsync off (the gap is the price of
//! the durability guarantee), checkpoint write cost, recovery scan
//! throughput over a populated log, and the end-to-end acked ingest
//! rate of `POST /v1/observations` over loopback — the ack rate a
//! client actually sees, fsync and all.
//!
//! The `addrplane` mode (`BENCH_pr10.json`) measures the segmented
//! bitmap plane (DESIGN.md §17): 2^t contingency-cell construction via
//! the word-wise kernel against the per-address oracle and a
//! `BTreeMap<addr, mask>` baseline, at one and ten million observed
//! addresses, plus per-probe membership cost (plane bit test and
//! `PrefixPlane` longest-match vs `BTreeSet` lookup).
//!
//! Two timing lanes per workload:
//! * `*_disabled_us` — recorder disabled (the no-op branch production code
//!   runs with); this is the trajectory number.
//! * `*_enabled_us` — full tracing on, to keep the cost of observing
//!   itself observable.
//!
//! Wall timings are volatile by construction and land only in the
//! manifest's `volatile` section; the deterministic counters/histograms
//! ingested alongside them (fit counts, GLM iterations, models evaluated)
//! are byte-stable for the pinned seed.

use ghosts_core::{
    estimate_stratified, estimate_table, CellModel, ContingencyTable, CrConfig, LogLinearModel,
    Parallelism,
};
use ghosts_obs::{Clock, FieldValue, LogicalClock, Recorder, RunManifest, WallClock};
use ghosts_stats::rng::component_rng;
use rand::Rng;
use std::sync::Arc;

/// Fixed-seed synthetic table: `t` sources, `n` individuals, two latent
/// capture classes (same generator as the Criterion model-selection bench).
fn synthetic_table(t: usize, n: usize, seed: u64) -> ContingencyTable {
    let mut rng = component_rng(seed, "perf-record");
    let mut table = ContingencyTable::new(t);
    for _ in 0..n {
        let sociable = rng.gen_bool(0.5);
        let mut mask = 0u16;
        for i in 0..t {
            let p = if sociable { 0.5 } else { 0.15 };
            if rng.gen_bool(p) {
                mask |= 1 << i;
            }
        }
        table.record(mask);
    }
    table
}

/// Median wall microseconds of `iters` runs of `f`, after two untimed
/// warm-up runs (cold caches otherwise bias whichever lane runs first).
fn median_us<F: FnMut()>(wall: &WallClock, iters: usize, mut f: F) -> u64 {
    f();
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = wall.now();
        f();
        samples.push(wall.now() - t0);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The serve-mode backend: three overlapping synthetic sources over
/// 8.0.0.0/8, big enough that a cold estimate dominates HTTP overhead.
fn serve_backend(seed: u64) -> std::sync::Arc<ghosts_serve::InlineBackend> {
    use ghosts_net::{AddrSet, RoutedTable};
    let mut rng = component_rng(seed, "perf-serve");
    let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().expect("prefix")]);
    let mut sources = vec![AddrSet::new(), AddrSet::new(), AddrSet::new()];
    for i in 0..40_000u32 {
        let addr = 0x0800_0000 + i * 13;
        let sociable = rng.gen_bool(0.5);
        for set in sources.iter_mut() {
            let p = if sociable { 0.6 } else { 0.2 };
            if rng.gen_bool(p) {
                set.insert(addr);
            }
        }
    }
    std::sync::Arc::new(ghosts_serve::InlineBackend::new(routed, sources))
}

/// Requests/sec over `clients` loopback connections issuing `per_client`
/// digest-identical (cache-hot) POSTs each.
fn serve_rps(
    wall: &WallClock,
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    body: &str,
) -> u64 {
    let t0 = wall.now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.to_string();
            std::thread::spawn(move || {
                for _ in 0..per_client {
                    let r = ghosts_serve::client::post_json(addr, "/v1/estimate", &body)
                        .expect("serve answers");
                    assert_eq!(r.status, 200, "{}", r.body_text());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed_us = (wall.now() - t0).max(1);
    ((clients * per_client) as u64) * 1_000_000 / elapsed_us
}

/// The serving layer's perf record (`BENCH_pr5.json`).
fn serve_mode(out: &str) {
    use ghosts_serve::{client, MetricsHub, Server, ServerConfig};
    let wall = WallClock::new();
    let iters = 9usize;
    let start = |workers: usize| {
        Server::bind(
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
            serve_backend(5),
            MetricsHub::wall(),
        )
        .expect("bind loopback")
    };

    eprintln!("perf_record: timing cold vs cached estimates (1 worker)…");
    let server = start(1);
    let addr = server.local_addr();
    // Distinct `limit` values give distinct digests: every request below
    // is a cache miss that runs the estimator ("cold").
    let mut next_limit = 10_000_000u64;
    let cold_us = median_us(&wall, iters, || {
        next_limit += 1;
        let body = format!("{{\"window\":0,\"limit\":{next_limit}}}");
        let r = client::post_json(addr, "/v1/estimate", &body).expect("serve answers");
        assert_eq!(r.status, 200, "{}", r.body_text());
    });
    let hot_body = r#"{"window":0}"#;
    client::post_json(addr, "/v1/estimate", hot_body).expect("warm the cache");
    let cached_us = median_us(&wall, iters, || {
        let r = client::post_json(addr, "/v1/estimate", hot_body).expect("serve answers");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit-mem"));
    });

    eprintln!("perf_record: cache-hot throughput at 1 and 4 workers…");
    let rps_w1 = serve_rps(&wall, addr, 1, 200, hot_body);
    server.shutdown();
    let server = start(4);
    let addr = server.local_addr();
    client::post_json(addr, "/v1/estimate", hot_body).expect("warm the cache");
    let rps_w4 = serve_rps(&wall, addr, 4, 200, hot_body);
    let shed = server.hub().counter("serve.shed");
    server.shutdown();

    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    rec.volatile_add("perf.serve_cold_us", cold_us);
    rec.volatile_add("perf.serve_cached_us", cached_us);
    rec.volatile_add("perf.serve_rps_workers1", rps_w1);
    rec.volatile_add("perf.serve_rps_workers4", rps_w4);
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr5".to_string())),
            ("serve_cold_us", FieldValue::U64(cold_us)),
            ("serve_cached_us", FieldValue::U64(cached_us)),
            ("serve_rps_workers1", FieldValue::U64(rps_w1)),
            ("serve_rps_workers4", FieldValue::U64(rps_w4)),
            ("shed_during_bench", FieldValue::U64(shed)),
        ],
    );
    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr5");
    manifest.set_config(
        "workload.serve",
        "inline backend, 3 sources x ~40k addrs; cold = unique limit per \
         request, cached/rps = digest-identical requests",
    );
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: serve cold {cold_us}us / cached {cached_us}us, \
         {rps_w1} req/s @1 worker, {rps_w4} req/s @4 workers → {out}"
    );
}

/// The reliability engine's perf record (`BENCH_pr6.json`): bootstrap
/// refit throughput at 1 worker and at `auto`.
fn reliability_mode(out: &str) {
    use ghosts_reliability::{bootstrap_table, BootstrapConfig};
    let wall = WallClock::new();
    let replicates = 400u64;
    let table = synthetic_table(5, 40_000, 9);
    let cfg = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };
    let run = |par: Parallelism| {
        let t0 = wall.now();
        let summary = bootstrap_table(
            &table,
            None,
            &cfg,
            &BootstrapConfig {
                replicates,
                seed: 2014,
                alpha: 0.05,
                parallelism: par,
            },
        )
        .expect("synthetic table bootstraps");
        let elapsed_us = (wall.now() - t0).max(1);
        assert_eq!(summary.completed, replicates, "no replicate failures");
        (elapsed_us, summary)
    };

    eprintln!("perf_record: bootstrap {replicates} replicates at 1 thread…");
    let (us_t1, s1) = run(Parallelism::Fixed(1));
    eprintln!("perf_record: bootstrap {replicates} replicates at auto threads…");
    let (us_auto, s_auto) = run(Parallelism::Auto);
    assert_eq!(s1.to_json(), s_auto.to_json(), "threading changed results");

    let rps_t1 = replicates * 1_000_000 / us_t1;
    let rps_auto = replicates * 1_000_000 / us_auto;
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    rec.volatile_add("perf.bootstrap_refits_per_sec_threads1", rps_t1);
    rec.volatile_add("perf.bootstrap_refits_per_sec_auto", rps_auto);
    rec.volatile_max("perf.worker_threads", Parallelism::Auto.threads() as u64);
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr6".to_string())),
            ("replicates", FieldValue::U64(replicates)),
            ("bootstrap_us_threads1", FieldValue::U64(us_t1)),
            ("bootstrap_us_auto", FieldValue::U64(us_auto)),
            ("refits_per_sec_threads1", FieldValue::U64(rps_t1)),
            ("refits_per_sec_auto", FieldValue::U64(rps_auto)),
            (
                "speedup_auto",
                FieldValue::F64(us_t1 as f64 / us_auto as f64),
            ),
        ],
    );
    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr6");
    manifest.set_config(
        "workload.bootstrap",
        "5 sources x 40k individuals, 400 parametric replicates (refit + reselect each)",
    );
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: bootstrap {rps_t1} refits/s @1 thread, {rps_auto} refits/s @auto \
         ({:.1}x) → {out}",
        us_t1 as f64 / us_auto as f64
    );
}

/// ghost-lint's perf record (`BENCH_pr7.json`): full-workspace lint
/// wall time, cold vs warm parse cache, 1 thread vs `auto`.
fn lint_mode(out: &str) {
    let wall = WallClock::new();
    let iters = 9usize;
    let root = xtask::workspace::workspace_root();

    eprintln!("perf_record: cold lint (empty parse cache, 1 thread)…");
    let t0 = wall.now();
    let cold = xtask::lint_workspace(&root, Parallelism::Fixed(1)).expect("lint workspace");
    let cold_us = (wall.now() - t0).max(1);

    eprintln!("perf_record: warm lint medians at 1 thread and auto…");
    let warm_t1_us = median_us(&wall, iters, || {
        xtask::lint_workspace(&root, Parallelism::Fixed(1)).expect("lint workspace");
    });
    let warm_auto_us = median_us(&wall, iters, || {
        xtask::lint_workspace(&root, Parallelism::Auto).expect("lint workspace");
    });
    let auto_run = xtask::lint_workspace(&root, Parallelism::Auto).expect("lint workspace");
    assert_eq!(cold, auto_run, "threading changed lint findings");

    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    rec.volatile_add("perf.lint_cold_us", cold_us);
    rec.volatile_add("perf.lint_warm_threads1_us", warm_t1_us);
    rec.volatile_add("perf.lint_warm_auto_us", warm_auto_us);
    rec.volatile_max("perf.worker_threads", Parallelism::Auto.threads() as u64);
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr7".to_string())),
            ("findings", FieldValue::U64(cold.len() as u64)),
            ("lint_cold_us", FieldValue::U64(cold_us)),
            ("lint_warm_threads1_us", FieldValue::U64(warm_t1_us)),
            ("lint_warm_auto_us", FieldValue::U64(warm_auto_us)),
            (
                "speedup_auto",
                FieldValue::F64(warm_t1_us as f64 / warm_auto_us as f64),
            ),
        ],
    );
    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr7");
    manifest.set_config(
        "workload.lint",
        "full workspace ghost-lint: lex + item tree + call graph + 15 rules",
    );
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: lint cold {cold_us}us, warm {warm_t1_us}us @1 thread / \
         {warm_auto_us}us @auto ({:.1}x), {} findings → {out}",
        warm_t1_us as f64 / warm_auto_us as f64,
        cold.len()
    );
}

/// The telemetry plane's perf record (`BENCH_pr8.json`): record-path
/// cost of the sharded registry, `/metrics` render time on a populated
/// hub, and the serve request rate re-measured on the lock-free hot
/// path.
fn obs_mode(out: &str) {
    use ghosts_obs::Registry;
    use ghosts_serve::{client, MetricsHub, Server, ServerConfig};
    let wall = WallClock::new();
    let iters = 9usize;

    eprintln!("perf_record: timing counter/histogram records (single thread)…");
    let registry = Registry::new();
    let counter = registry.counter("perf.counter");
    let hist = registry.hist("perf.hist");
    const OPS: u64 = 8_000_000;
    let t0 = wall.now();
    for i in 0..OPS {
        counter.add(i & 1);
    }
    let counter_ns = (wall.now() - t0).max(1) * 1000 / OPS;
    let t0 = wall.now();
    for i in 0..OPS {
        hist.record(i);
    }
    let hist_ns = (wall.now() - t0).max(1) * 1000 / OPS;

    eprintln!("perf_record: timing contended counter records (4 threads)…");
    let t0 = wall.now();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..OPS / 4 {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
    let contended_ns = (wall.now() - t0).max(1) * 1000 / OPS;
    // The headline contract: recording must stay out of the request
    // latency budget. 100 ns/op is the bar ISSUE 8 sets; a mutex-backed
    // hub fails it under contention, the sharded cells pass with margin.
    assert!(
        counter_ns <= 100,
        "counter record {counter_ns} ns/op breaches the 100 ns budget"
    );
    assert!(
        hist_ns <= 100,
        "histogram record {hist_ns} ns/op breaches the 100 ns budget"
    );
    assert!(
        contended_ns <= 100,
        "contended counter record {contended_ns} ns/op breaches the 100 ns budget"
    );

    eprintln!("perf_record: cache-hot serve throughput on the lock-free hub…");
    let start = |workers: usize| {
        Server::bind(
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
            serve_backend(5),
            MetricsHub::wall(),
        )
        .expect("bind loopback")
    };
    let hot_body = r#"{"window":0}"#;
    let server = start(1);
    let addr = server.local_addr();
    client::post_json(addr, "/v1/estimate", hot_body).expect("warm the cache");
    let rps_w1 = serve_rps(&wall, addr, 1, 200, hot_body);
    // Render timing on the hub this run just populated — counters,
    // latency sketch, epochs and tail are all live, so this is the
    // scrape cost an operator actually pays.
    let hub = server.hub();
    let render_us = median_us(&wall, iters, || {
        std::hint::black_box(hub.render_text());
    });
    let tail_us = median_us(&wall, iters, || {
        std::hint::black_box(hub.render_tail(64));
    });
    server.shutdown();
    let server = start(4);
    let addr = server.local_addr();
    client::post_json(addr, "/v1/estimate", hot_body).expect("warm the cache");
    let rps_w4 = serve_rps(&wall, addr, 4, 200, hot_body);
    server.shutdown();

    // The acceptance bar: req/s must not regress against the serving
    // layer's pre-telemetry record. Read the committed baseline when
    // it is on disk (perf_record runs from the repo root in CI).
    let pr5_rps = std::fs::read_to_string("BENCH_pr5.json")
        .ok()
        .and_then(|s| ghosts_obs::json::parse(&s).ok())
        .and_then(|v| {
            v.get("volatile")
                .and_then(|vol| vol.get("perf.serve_rps_workers1"))
                .and_then(ghosts_obs::json::JsonValue::as_u64)
        });
    if let Some(baseline) = pr5_rps {
        eprintln!(
            "perf_record: {rps_w1} req/s @1 worker vs BENCH_pr5.json baseline {baseline} \
             ({:+.1}%)",
            100.0 * (rps_w1 as f64 - baseline as f64) / baseline as f64
        );
    }

    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    rec.volatile_add("perf.obs_counter_record_ns", counter_ns);
    rec.volatile_add("perf.obs_hist_record_ns", hist_ns);
    rec.volatile_add("perf.obs_counter_contended_ns", contended_ns);
    rec.volatile_add("perf.obs_metrics_render_us", render_us);
    rec.volatile_add("perf.obs_tail_render_us", tail_us);
    rec.volatile_add("perf.serve_rps_workers1", rps_w1);
    rec.volatile_add("perf.serve_rps_workers4", rps_w4);
    let mut fields = vec![
        ("bench", FieldValue::Str("pr8".to_string())),
        ("counter_record_ns", FieldValue::U64(counter_ns)),
        ("hist_record_ns", FieldValue::U64(hist_ns)),
        ("counter_contended_ns", FieldValue::U64(contended_ns)),
        ("metrics_render_us", FieldValue::U64(render_us)),
        ("tail_render_us", FieldValue::U64(tail_us)),
        ("serve_rps_workers1", FieldValue::U64(rps_w1)),
        ("serve_rps_workers4", FieldValue::U64(rps_w4)),
    ];
    if let Some(baseline) = pr5_rps {
        fields.push(("pr5_rps_workers1_baseline", FieldValue::U64(baseline)));
    }
    rec.root("perf").event("bench_point", &fields);
    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr8");
    manifest.set_config(
        "workload.obs",
        "8M counter/hist records (1 and 4 threads) through the sharded registry; \
         /metrics + trace-tail render on a live hub; cache-hot serve rps as in pr5",
    );
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: record {counter_ns}ns/op counter / {hist_ns}ns/op hist \
         ({contended_ns}ns/op contended), /metrics render {render_us}us, \
         {rps_w1} req/s @1 worker, {rps_w4} req/s @4 workers → {out}"
    );
}

/// The durable state plane's perf record (`BENCH_pr9.json`): WAL append
/// latency (fsync on and off), checkpoint write cost, recovery scan
/// time, and end-to-end acked observation ingest over loopback.
fn durable_mode(out: &str) {
    use ghosts_durable::{DurableLog, WalConfigOverride};
    use ghosts_serve::{client, MetricsHub, Server, ServerConfig};
    let wall = WallClock::new();
    let iters = 9usize;
    let scratch = std::env::temp_dir().join(format!("ghosts-perf-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    const APPENDS: u64 = 512;
    let payload = vec![0xA5u8; 256];

    eprintln!("perf_record: timing WAL appends (fsync per record)…");
    let dir = scratch.join("fsync");
    let (mut log, _) = DurableLog::open(&dir).expect("open scratch log");
    let t0 = wall.now();
    for _ in 0..APPENDS {
        log.append(&payload).expect("append");
    }
    let fsync_total_us = (wall.now() - t0).max(1);
    let append_fsync_us = fsync_total_us / APPENDS;
    let appends_per_sec = APPENDS * 1_000_000 / fsync_total_us;
    drop(log);

    eprintln!("perf_record: timing WAL appends (fsync off, for contrast)…");
    let (mut unsynced, _) = DurableLog::open_with(
        scratch.join("nofsync"),
        WalConfigOverride {
            fsync: Some(false),
            ..WalConfigOverride::default()
        },
    )
    .expect("open scratch log");
    let t0 = wall.now();
    for _ in 0..APPENDS {
        unsynced.append(&payload).expect("append");
    }
    let nofsync_total_us = (wall.now() - t0).max(1);
    let append_nofsync_us = nofsync_total_us / APPENDS;
    drop(unsynced);

    eprintln!("perf_record: timing recovery scans of the {APPENDS}-record log…");
    let mut recovered_records = 0u64;
    let recovery_us = median_us(&wall, iters, || {
        let (_, recovery) = DurableLog::open(&dir).expect("reopen scratch log");
        assert_eq!(recovery.report.torn_tail_bytes, 0, "clean log stays clean");
        recovered_records = recovery.report.wal_records_scanned;
    });
    assert_eq!(recovered_records, APPENDS, "every append is recoverable");

    eprintln!("perf_record: timing checkpoint writes (64 KiB state)…");
    let (mut log, _) = DurableLog::open(&dir).expect("reopen scratch log");
    let state = vec![0x5Au8; 64 * 1024];
    let checkpoint_us = median_us(&wall, iters, || {
        log.checkpoint(&state).expect("checkpoint");
    });
    drop(log);

    eprintln!("perf_record: acked observation ingest over loopback…");
    let server = Server::bind(
        ServerConfig {
            ingest_dir: Some(scratch.join("serve")),
            ..ServerConfig::default()
        },
        serve_backend(5),
        MetricsHub::wall(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    const POSTS: u64 = 256;
    let t0 = wall.now();
    for i in 0..POSTS {
        let body = format!(
            r#"{{"key":"perf-{i}","source":"s{}","addrs":["8.0.{}.1"]}}"#,
            i % 3,
            i % 250
        );
        let r = client::post_json(addr, "/v1/observations", &body).expect("serve answers");
        assert_eq!(r.status, 201, "{}", r.body_text());
    }
    let acks_per_sec = POSTS * 1_000_000 / (wall.now() - t0).max(1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    rec.volatile_add("perf.wal_append_fsync_us", append_fsync_us);
    rec.volatile_add("perf.wal_append_nofsync_us", append_nofsync_us);
    rec.volatile_add("perf.wal_appends_per_sec", appends_per_sec);
    rec.volatile_add("perf.wal_recovery_us", recovery_us);
    rec.volatile_add("perf.checkpoint_us", checkpoint_us);
    rec.volatile_add("perf.ingest_acks_per_sec", acks_per_sec);
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr9".to_string())),
            ("wal_append_fsync_us", FieldValue::U64(append_fsync_us)),
            ("wal_append_nofsync_us", FieldValue::U64(append_nofsync_us)),
            ("wal_appends_per_sec", FieldValue::U64(appends_per_sec)),
            ("wal_recovery_us", FieldValue::U64(recovery_us)),
            ("recovered_records", FieldValue::U64(recovered_records)),
            ("checkpoint_us", FieldValue::U64(checkpoint_us)),
            ("ingest_acks_per_sec", FieldValue::U64(acks_per_sec)),
        ],
    );
    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr9");
    manifest.set_config(
        "workload.durable",
        "512 x 256 B WAL appends (fsync on/off); recovery scan of that log; \
         64 KiB checkpoints; 256 acked POST /v1/observations over loopback",
    );
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: WAL append {append_fsync_us}us fsync / {append_nofsync_us}us unsynced \
         ({appends_per_sec} appends/s), recovery {recovery_us}us, checkpoint {checkpoint_us}us, \
         {acks_per_sec} acked obs/s → {out}"
    );
}

/// The classic merged-map contingency build every plane claim is judged
/// against: one `BTreeMap<addr, mask>` accumulating per-address capture
/// histories, then a counting pass.
fn contingency_btree(sources: &[std::collections::BTreeSet<u32>]) -> Vec<u64> {
    let mut masks: std::collections::BTreeMap<u32, u16> = std::collections::BTreeMap::new();
    for (i, s) in sources.iter().enumerate() {
        for &a in s {
            *masks.entry(a).or_insert(0) |= 1 << i;
        }
    }
    let mut counts = vec![0u64; 1 << sources.len()];
    for mask in masks.into_values() {
        counts[mask as usize] += 1;
    }
    counts
}

/// The address plane's perf record (`BENCH_pr10.json`): word-wise 2^t
/// cell construction vs the per-address oracle and the BTree baseline,
/// and per-probe membership cost, at 1e6 and 1e7 observed addresses.
fn addrplane_mode(out: &str) {
    use ghosts_addrplane::{contingency_counts, AddrPlane, PrefixPlane};
    use ghosts_net::AddrSet;
    use std::collections::BTreeSet;
    let wall = WallClock::new();
    let t = 4usize;
    // Observed space concentrated in four /8s — used addresses cluster in
    // a small fraction of the routed space (§4), which is exactly the
    // sparsity the segment directory exploits.
    const EIGHTS: [u32; 4] = [8, 24, 60, 101];

    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let mut headline_speedup = f64::INFINITY;
    for (n, label) in [(1_000_000usize, "1e6"), (10_000_000usize, "1e7")] {
        eprintln!("perf_record: building {t} sources over ~{label} addresses…");
        let mut rng = component_rng(10, &format!("perf-addrplane-{label}"));
        let mut planes: Vec<AddrPlane> = (0..t).map(|_| AddrPlane::new()).collect();
        let mut btrees: Vec<BTreeSet<u32>> = (0..t).map(|_| BTreeSet::new()).collect();
        for _ in 0..n {
            let addr = (EIGHTS[rng.gen_range(0..4)] << 24) | rng.gen_range(0..(1u32 << 24));
            let mut hit = false;
            for i in 0..t {
                if rng.gen_bool(0.55) {
                    planes[i].insert(addr);
                    btrees[i].insert(addr);
                    hit = true;
                }
            }
            if !hit {
                planes[0].insert(addr);
                btrees[0].insert(addr);
            }
        }
        let observed: u64 = {
            let mut union = AddrPlane::new();
            for p in &planes {
                union.union_with(p);
            }
            union.len()
        };

        eprintln!("perf_record: timing 2^{t} cell construction ({label})…");
        let plane_refs: Vec<&AddrPlane> = planes.iter().collect();
        // Fewer timed iterations at 1e7: the BTree baseline alone runs for
        // tens of seconds per pass.
        let iters = if n > 1_000_000 { 3 } else { 5 };
        let kernel_us = median_us(&wall, iters, || {
            std::hint::black_box(contingency_counts(&plane_refs));
        });
        let sets: Vec<AddrSet> = planes
            .iter()
            .map(|p| AddrSet::from_plane(p.clone()))
            .collect();
        let set_refs: Vec<&AddrSet> = sets.iter().collect();
        let per_addr_us = median_us(&wall, iters, || {
            std::hint::black_box(ContingencyTable::from_addr_sets_per_addr(&set_refs));
        });
        let t0 = wall.now();
        let btree_counts = contingency_btree(&btrees);
        let btree_us = (wall.now() - t0).max(1);
        assert_eq!(
            contingency_counts(&plane_refs),
            btree_counts,
            "kernel and BTree baseline disagree at {label}"
        );
        let speedup_btree = btree_us as f64 / kernel_us as f64;
        let speedup_per_addr = per_addr_us as f64 / kernel_us as f64;
        headline_speedup = headline_speedup.min(speedup_btree);

        eprintln!("perf_record: timing membership probes ({label})…");
        let union_plane = {
            let mut u = AddrPlane::new();
            for p in &planes {
                u.union_with(p);
            }
            u
        };
        let union_btree: BTreeSet<u32> = btrees.iter().flatten().copied().collect();
        const PROBES: u64 = 2_000_000;
        let mut probe_rng = component_rng(11, &format!("perf-addrplane-probe-{label}"));
        let probes: Vec<u32> = (0..PROBES)
            .map(|_| {
                (EIGHTS[probe_rng.gen_range(0..4)] << 24) | probe_rng.gen_range(0..(1u32 << 24))
            })
            .collect();
        let t0 = wall.now();
        let mut hits = 0u64;
        for &a in &probes {
            hits += u64::from(union_plane.contains(a));
        }
        let plane_probe_ns = (wall.now() - t0).max(1) * 1000 / PROBES;
        let t0 = wall.now();
        let mut btree_hits = 0u64;
        for &a in &probes {
            btree_hits += u64::from(union_btree.contains(&a));
        }
        let btree_probe_ns = (wall.now() - t0).max(1) * 1000 / PROBES;
        assert_eq!(hits, btree_hits, "membership answers diverge at {label}");

        rec.volatile_add(&format!("perf.plane_kernel_{label}_us"), kernel_us);
        rec.volatile_add(&format!("perf.plane_per_addr_{label}_us"), per_addr_us);
        rec.volatile_add(&format!("perf.plane_btree_{label}_us"), btree_us);
        rec.volatile_add(&format!("perf.plane_probe_{label}_ns"), plane_probe_ns);
        rec.volatile_add(&format!("perf.btree_probe_{label}_ns"), btree_probe_ns);
        rec.root("perf").event(
            "bench_point",
            &[
                ("bench", FieldValue::Str("pr10".to_string())),
                ("size", FieldValue::Str(label.to_string())),
                ("sources", FieldValue::U64(t as u64)),
                ("observed_union", FieldValue::U64(observed)),
                ("kernel_us", FieldValue::U64(kernel_us)),
                ("per_addr_us", FieldValue::U64(per_addr_us)),
                ("btree_us", FieldValue::U64(btree_us)),
                ("speedup_vs_btree", FieldValue::F64(speedup_btree)),
                ("speedup_vs_per_addr", FieldValue::F64(speedup_per_addr)),
                ("plane_probe_ns", FieldValue::U64(plane_probe_ns)),
                ("btree_probe_ns", FieldValue::U64(btree_probe_ns)),
            ],
        );
        eprintln!(
            "perf_record: {label}: kernel {kernel_us}us vs per-addr {per_addr_us}us \
             ({speedup_per_addr:.1}x) vs btree {btree_us}us ({speedup_btree:.1}x); \
             probe {plane_probe_ns}ns plane / {btree_probe_ns}ns btree"
        );
    }
    // The acceptance bar ISSUE 10 sets: ≥10x faster cell construction
    // than the baseline at a million addresses and up.
    assert!(
        headline_speedup >= 10.0,
        "plane kernel speedup {headline_speedup:.1}x is below the 10x bar"
    );

    eprintln!("perf_record: timing PrefixPlane longest-match…");
    let mut trie = PrefixPlane::new();
    let mut trie_rng = component_rng(12, "perf-addrplane-trie");
    for _ in 0..4096 {
        let len = trie_rng.gen_range(12..=24u8);
        let base = (trie_rng.gen::<u32>() >> (32 - u32::from(len))) << (32 - u32::from(len));
        trie.insert(base, len);
    }
    let mut probe_rng = component_rng(13, "perf-addrplane-trie-probe");
    let probes: Vec<u32> = (0..2_000_000u64).map(|_| probe_rng.gen()).collect();
    let t0 = wall.now();
    let mut matched = 0u64;
    for &a in &probes {
        matched += u64::from(trie.longest_match(a).is_some());
    }
    let lm_ns = (wall.now() - t0).max(1) * 1000 / probes.len() as u64;
    rec.volatile_add("perf.prefix_longest_match_ns", lm_ns);
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr10".to_string())),
            ("size", FieldValue::Str("trie".to_string())),
            ("prefixes", FieldValue::U64(4096)),
            ("longest_match_ns", FieldValue::U64(lm_ns)),
            ("matched", FieldValue::U64(matched)),
        ],
    );

    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr10");
    manifest.set_config(
        "workload.addrplane",
        "4 sources over four /8s at 1e6 and 1e7 addresses: word-wise 2^t cell \
         kernel vs per-address oracle vs BTreeMap<addr,mask> baseline; 2M \
         membership probes per structure; 2M longest-match probes over 4096 \
         random prefixes",
    );
    manifest.ingest_metrics(&log);
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!("perf_record: addrplane record (headline {headline_speedup:.1}x) → {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("lint") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr7.json".to_string());
        lint_mode(&out);
        return;
    }
    if args.first().map(String::as_str) == Some("reliability") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr6.json".to_string());
        reliability_mode(&out);
        return;
    }
    if args.first().map(String::as_str) == Some("obs") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr8.json".to_string());
        obs_mode(&out);
        return;
    }
    if args.first().map(String::as_str) == Some("durable") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr9.json".to_string());
        durable_mode(&out);
        return;
    }
    if args.first().map(String::as_str) == Some("addrplane") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr10.json".to_string());
        addrplane_mode(&out);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr5.json".to_string());
        serve_mode(&out);
        return;
    }
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let wall = WallClock::new();
    let iters = 9usize;

    let table6 = synthetic_table(6, 60_000, 1);
    let strata: Vec<ContingencyTable> = (0..8)
        .map(|s| synthetic_table(4, 20_000, 100 + s))
        .collect();
    let cfg_quiet = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };

    eprintln!("perf_record: timing estimate_table (recorder disabled)…");
    let est_disabled_us = median_us(&wall, iters, || {
        estimate_table(&table6, None, &cfg_quiet).expect("synthetic table estimable");
    });

    eprintln!("perf_record: timing estimate_table (recorder enabled)…");
    // One long-lived recorder: the enabled lane measures recording into a
    // live sink, and its counters become the deterministic payload below.
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let cfg_traced = CrConfig {
        truncated: false,
        obs: rec.root("perf").child("select6"),
        ..CrConfig::paper()
    };
    let est_enabled_us = median_us(&wall, iters, || {
        estimate_table(&table6, None, &cfg_traced).expect("synthetic table estimable");
    });

    eprintln!("perf_record: timing estimate_stratified (8 strata, auto threads)…");
    let strat_cfg = CrConfig {
        truncated: false,
        min_stratum_observed: 100,
        parallelism: Parallelism::Auto,
        obs: rec.root("perf").child("stratified"),
        ..CrConfig::paper()
    };
    let strat_us = median_us(&wall, 3, || {
        estimate_stratified(&strata, None, &strat_cfg);
    });

    eprintln!("perf_record: timing fit_llm (independence, 6 sources)…");
    let indep = LogLinearModel::independence(6);
    let fit_us = median_us(&wall, iters, || {
        ghosts_core::fit_llm(&table6, &indep, CellModel::Poisson).expect("fit");
    });

    rec.volatile_add("perf.estimate_table_disabled_us", est_disabled_us);
    rec.volatile_add("perf.estimate_table_enabled_us", est_enabled_us);
    rec.volatile_add("perf.estimate_stratified_us", strat_us);
    rec.volatile_add("perf.fit_llm_us", fit_us);
    rec.volatile_max("perf.worker_threads", Parallelism::Auto.threads() as u64);
    let overhead_pct = if est_disabled_us > 0 {
        100.0 * (est_enabled_us as f64 - est_disabled_us as f64) / est_disabled_us as f64
    } else {
        0.0
    };
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr3".to_string())),
            (
                "estimate_table_disabled_us",
                FieldValue::U64(est_disabled_us),
            ),
            ("estimate_table_enabled_us", FieldValue::U64(est_enabled_us)),
            ("tracing_overhead_pct", FieldValue::F64(overhead_pct)),
            ("estimate_stratified_us", FieldValue::U64(strat_us)),
            ("fit_llm_us", FieldValue::U64(fit_us)),
        ],
    );

    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr3");
    manifest.set_config("workload.select", "6 sources x 60k individuals, BIC");
    manifest.set_config("workload.stratified", "8 strata x 4 sources x 20k");
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    // Only the summary point: the enabled lane re-records model_chosen et
    // al. every iteration, and those repeats add nothing to a perf record.
    manifest.ingest_events(&log, &["bench_point"]);
    ghosts_durable::atomic_write(std::path::Path::new(&out), manifest.to_json().as_bytes())
        .expect("can write perf record");
    eprintln!(
        "perf_record: estimate_table {est_disabled_us}us (disabled) / {est_enabled_us}us \
         (enabled, {overhead_pct:+.1}%), stratified {strat_us}us, fit {fit_us}us → {out}"
    );
}
