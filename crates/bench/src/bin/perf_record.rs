//! `perf_record` — measures the estimator's hot paths through the
//! observability layer and writes a `RunManifest` perf record
//! (`BENCH_pr3.json` is the committed first point of the trajectory).
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin perf_record -- BENCH_pr3.json
//! ```
//!
//! Two timing lanes per workload:
//! * `*_disabled_us` — recorder disabled (the no-op branch production code
//!   runs with); this is the trajectory number.
//! * `*_enabled_us` — full tracing on, to keep the cost of observing
//!   itself observable.
//!
//! Wall timings are volatile by construction and land only in the
//! manifest's `volatile` section; the deterministic counters/histograms
//! ingested alongside them (fit counts, GLM iterations, models evaluated)
//! are byte-stable for the pinned seed.

use ghosts_core::{
    estimate_stratified, estimate_table, CellModel, ContingencyTable, CrConfig, LogLinearModel,
    Parallelism,
};
use ghosts_obs::{Clock, FieldValue, LogicalClock, Recorder, RunManifest, WallClock};
use ghosts_stats::rng::component_rng;
use rand::Rng;
use std::sync::Arc;

/// Fixed-seed synthetic table: `t` sources, `n` individuals, two latent
/// capture classes (same generator as the Criterion model-selection bench).
fn synthetic_table(t: usize, n: usize, seed: u64) -> ContingencyTable {
    let mut rng = component_rng(seed, "perf-record");
    let mut table = ContingencyTable::new(t);
    for _ in 0..n {
        let sociable = rng.gen_bool(0.5);
        let mut mask = 0u16;
        for i in 0..t {
            let p = if sociable { 0.5 } else { 0.15 };
            if rng.gen_bool(p) {
                mask |= 1 << i;
            }
        }
        table.record(mask);
    }
    table
}

/// Median wall microseconds of `iters` runs of `f`, after two untimed
/// warm-up runs (cold caches otherwise bias whichever lane runs first).
fn median_us<F: FnMut()>(wall: &WallClock, iters: usize, mut f: F) -> u64 {
    f();
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = wall.now();
        f();
        samples.push(wall.now() - t0);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let wall = WallClock::new();
    let iters = 9usize;

    let table6 = synthetic_table(6, 60_000, 1);
    let strata: Vec<ContingencyTable> = (0..8)
        .map(|s| synthetic_table(4, 20_000, 100 + s))
        .collect();
    let cfg_quiet = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };

    eprintln!("perf_record: timing estimate_table (recorder disabled)…");
    let est_disabled_us = median_us(&wall, iters, || {
        estimate_table(&table6, None, &cfg_quiet).expect("synthetic table estimable");
    });

    eprintln!("perf_record: timing estimate_table (recorder enabled)…");
    // One long-lived recorder: the enabled lane measures recording into a
    // live sink, and its counters become the deterministic payload below.
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let cfg_traced = CrConfig {
        truncated: false,
        obs: rec.root("perf").child("select6"),
        ..CrConfig::paper()
    };
    let est_enabled_us = median_us(&wall, iters, || {
        estimate_table(&table6, None, &cfg_traced).expect("synthetic table estimable");
    });

    eprintln!("perf_record: timing estimate_stratified (8 strata, auto threads)…");
    let strat_cfg = CrConfig {
        truncated: false,
        min_stratum_observed: 100,
        parallelism: Parallelism::Auto,
        obs: rec.root("perf").child("stratified"),
        ..CrConfig::paper()
    };
    let strat_us = median_us(&wall, 3, || {
        estimate_stratified(&strata, None, &strat_cfg);
    });

    eprintln!("perf_record: timing fit_llm (independence, 6 sources)…");
    let indep = LogLinearModel::independence(6);
    let fit_us = median_us(&wall, iters, || {
        ghosts_core::fit_llm(&table6, &indep, CellModel::Poisson).expect("fit");
    });

    rec.volatile_add("perf.estimate_table_disabled_us", est_disabled_us);
    rec.volatile_add("perf.estimate_table_enabled_us", est_enabled_us);
    rec.volatile_add("perf.estimate_stratified_us", strat_us);
    rec.volatile_add("perf.fit_llm_us", fit_us);
    rec.volatile_max("perf.worker_threads", Parallelism::Auto.threads() as u64);
    let overhead_pct = if est_disabled_us > 0 {
        100.0 * (est_enabled_us as f64 - est_disabled_us as f64) / est_disabled_us as f64
    } else {
        0.0
    };
    rec.root("perf").event(
        "bench_point",
        &[
            ("bench", FieldValue::Str("pr3".to_string())),
            (
                "estimate_table_disabled_us",
                FieldValue::U64(est_disabled_us),
            ),
            ("estimate_table_enabled_us", FieldValue::U64(est_enabled_us)),
            ("tracing_overhead_pct", FieldValue::F64(overhead_pct)),
            ("estimate_stratified_us", FieldValue::U64(strat_us)),
            ("fit_llm_us", FieldValue::U64(fit_us)),
        ],
    );

    let log = rec.flush();
    let mut manifest = RunManifest::new();
    manifest.set_config("bench", "pr3");
    manifest.set_config("workload.select", "6 sources x 60k individuals, BIC");
    manifest.set_config("workload.stratified", "8 strata x 4 sources x 20k");
    manifest.set_config("iters", iters.to_string());
    manifest.ingest_metrics(&log);
    // Only the summary point: the enabled lane re-records model_chosen et
    // al. every iteration, and those repeats add nothing to a perf record.
    manifest.ingest_events(&log, &["bench_point"]);
    std::fs::write(&out, manifest.to_json()).expect("can write perf record");
    eprintln!(
        "perf_record: estimate_table {est_disabled_us}us (disabled) / {est_enabled_us}us \
         (enabled, {overhead_pct:+.1}%), stratified {strat_us}us, fit {fit_us}us → {out}"
    );
}
