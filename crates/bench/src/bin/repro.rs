//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin repro -- all
//! cargo run -p ghosts-bench --release --bin repro -- table5 fig4 fig5
//! cargo run -p ghosts-bench --release --bin repro -- all --denom 256
//! cargo run -p ghosts-bench --release --bin repro -- table3 --trace trace.jsonl
//! ```
//!
//! Options:
//! * `--denom N` — simulate 1/N of the real Internet (default 1024; 256
//!   matches DESIGN.md's default scale but takes ~16x longer).
//! * `--seed N` — simulation seed (default 2014).
//! * `--threads auto|N` — worker threads for model selection and
//!   stratified estimation (default `auto` = all cores; results are
//!   bit-identical at every setting, `1` runs fully sequentially).
//! * `--trace PATH` — write the deterministic JSONL event log (DESIGN.md
//!   §10) to PATH. Byte-identical for a given scenario and experiment
//!   list at every `--threads` setting.
//! * `--metrics-out PATH` — write a `RunManifest` JSON summary (config
//!   echo, chosen models, IC candidates, counters, wall timings) to PATH.
//! * `--fault-plan PATH` — install a deterministic fault-injection plan
//!   (DESIGN.md §11) before running; implies tracing so every fired fault
//!   and every degradation is recorded.
//! * `--profile` — enable the stage profiler: wall time attributed across
//!   the pipeline stages (`parse` → `estimate/select` → `estimate/fit` →
//!   `estimate/ci`), printed as a table and ingested into the
//!   `--metrics-out` manifest (call counts deterministic, durations
//!   volatile). The trace gains `stage_profile` events carrying the
//!   deterministic call counts only.
//! * `--quiet` — suppress progress chatter and per-experiment text on
//!   stdout; errors still go to stderr.
//!
//! Output goes to stdout and to `results/<id>.txt` / `results/<id>.json`.
//!
//! Exit codes: `0` — clean reproduction; `1` — one or more experiments
//! failed outright; `2` — usage error (including an unparsable fault
//! plan); `3` — every experiment completed, but only by degrading (ladder
//! fallbacks, failed strata, or injected faults) — the results are
//! partial and must not be read as a clean reproduction.

use ghosts_bench::context::write_results;
use ghosts_bench::experiments::{self, ALL_IDS_FULL};
use ghosts_bench::ReproContext;
use ghosts_core::{estimate_stratified, estimate_table, ContingencyTable, Parallelism};
use ghosts_obs::{FieldValue, LogicalClock, Recorder, RunManifest, StageProfiler, WallClock};
use serde_json::json;
use std::sync::Arc;

/// Hidden experiment id: runs a deliberately degenerate design through the
/// estimator to exercise the failure path end to end (structured error
/// event + nonzero exit). Not listed in `ALL_IDS_FULL`.
const SELFTEST_FAIL: &str = "selftest-fail";

/// Hidden experiment id: a tiny synthetic stratified estimation (four
/// strata, three sources). Clean without a fault plan; under one it is the
/// cheapest end-to-end path to a partially-failed stratified run (worker
/// panics, per-stratum ladder fallbacks). Not listed in `ALL_IDS_FULL`.
const SELFTEST_DEGRADE: &str = "selftest-degrade";

/// Hidden experiment id: the reliability engine's report — parametric
/// bootstrap of window 9, CI coverage curves over distortion regimes, and
/// the batched cross-validation table. Its events land in the manifest's
/// `reliability` section. Not listed in `ALL_IDS_FULL` (not a paper
/// artifact).
const RELIABILITY: &str = "reliability";

/// Manifest sections: the summary events worth echoing per span.
const MANIFEST_EVENTS: &[&str] = &[
    "model_chosen",
    "ic_candidate",
    "estimate",
    "stratified_total",
    "ci",
    "filter",
    "spoof_filter",
    "window_observed",
];

struct Options {
    ids: Vec<String>,
    denom: u64,
    seed: u64,
    parallelism: Parallelism,
    trace: Option<String>,
    metrics_out: Option<String>,
    fault_plan: Option<String>,
    profile: bool,
    quiet: bool,
}

/// Exit code for a run that completed only by degrading: partial results,
/// ladder fallbacks or injected faults. Distinct from hard failure (1)
/// and usage errors (2).
const EXIT_DEGRADED: i32 = 3;

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        denom: 1024,
        seed: 2014,
        parallelism: Parallelism::Auto,
        trace: None,
        metrics_out: None,
        fault_plan: None,
        profile: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--denom" => {
                opts.denom = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--denom needs an integer"));
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--threads" => {
                opts.parallelism = it
                    .next()
                    .ok_or_else(|| "missing value".to_string())
                    .and_then(|v| Parallelism::parse(v))
                    .unwrap_or_else(|e| usage(&format!("--threads: {e}")));
            }
            "--trace" => {
                opts.trace = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace needs a path"))
                        .clone(),
                );
            }
            "--metrics-out" => {
                opts.metrics_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--metrics-out needs a path"))
                        .clone(),
                );
            }
            "--fault-plan" => {
                opts.fault_plan = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--fault-plan needs a path"))
                        .clone(),
                );
            }
            "--profile" => opts.profile = true,
            "--quiet" => opts.quiet = true,
            "all" => opts.ids.extend(ALL_IDS_FULL.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(""),
            other => {
                if ALL_IDS_FULL.contains(&other)
                    || other == SELFTEST_FAIL
                    || other == SELFTEST_DEGRADE
                    || other == RELIABILITY
                {
                    opts.ids.push(other.to_string());
                } else {
                    usage(&format!("unknown experiment {other:?}"));
                }
            }
        }
    }
    if opts.ids.is_empty() {
        usage("no experiments requested");
    }
    opts.ids.dedup();
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    install_fault_plan(opts.fault_plan.as_deref());

    // Tracing uses the deterministic logical clock so the event log is
    // byte-identical across runs; wall time is read separately (below) and
    // only ever lands in the volatile lane / manifest. A fault plan forces
    // tracing so fired faults and degradations are always accounted for.
    let tracing = opts.trace.is_some() || opts.metrics_out.is_some() || opts.fault_plan.is_some();
    let rec = if tracing {
        Recorder::enabled(Arc::new(LogicalClock::new()))
    } else {
        Recorder::disabled()
    };
    let wall = WallClock::new();
    use ghosts_obs::Clock;

    let progress = |msg: &str| {
        if !opts.quiet {
            eprintln!("{msg}");
        }
    };

    progress(&format!(
        "repro: building scenario at scale 1/{} (seed {}, {} worker threads)…",
        opts.denom,
        opts.seed,
        opts.parallelism.threads()
    ));
    let t_build = wall.now();
    let mut ctx = ReproContext::new(opts.denom, opts.seed);
    ctx.parallelism = opts.parallelism;
    ctx.recorder = rec.clone();
    if opts.profile {
        // Wall-clock durations: only surfaced through the stage table and
        // the manifest's volatile lane, never the deterministic trace.
        ctx.profiler = StageProfiler::enabled(Arc::new(WallClock::new()));
    }
    let ctx = ctx;
    rec.volatile_add("repro.scenario_build_us", wall.now() - t_build);
    progress(&format!(
        "repro: scenario ready in {:.1}s — {} allocations, {} routed addrs, {} routed /24s",
        (wall.now() - t_build) as f64 / 1e6,
        ctx.scenario.gt.registry.len(),
        ctx.scenario.gt.routed.address_count(),
        ctx.scenario.gt.routed.subnet24_count(),
    ));

    let mut failures = 0u32;
    for id in &opts.ids {
        let t0 = wall.now();
        progress(&format!("repro: running {id}…"));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if id == SELFTEST_FAIL {
                run_selftest_fail(&ctx)
            } else if id == SELFTEST_DEGRADE {
                run_selftest_degrade(&ctx)
            } else {
                Ok(experiments::run(id, &ctx))
            }
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(panic) => Err(panic_message(&panic)),
        };
        match result {
            Ok((text, json)) => {
                if !opts.quiet {
                    println!("\n{text}");
                }
                if let Err(e) = write_results(id, &text, &json) {
                    eprintln!("repro: could not write results/{id}: {e}");
                }
                progress(&format!(
                    "repro: {id} done in {:.1}s",
                    (wall.now() - t0) as f64 / 1e6
                ));
            }
            Err(message) => {
                failures += 1;
                rec.root("repro").error(
                    "experiment_failed",
                    &[
                        ("id", FieldValue::Str(id.clone())),
                        ("error", FieldValue::Str(message.clone())),
                    ],
                );
                eprintln!("repro: {id} FAILED: {message}");
            }
        }
        rec.volatile_add(&format!("repro.{id}_us"), wall.now() - t0);
    }
    rec.volatile_add("repro.total_us", wall.now());
    rec.volatile_max("repro.worker_threads", opts.parallelism.threads() as u64);

    // The stage table: printed for humans, echoed into the trace as
    // deterministic `stage_profile` events (call counts only — durations
    // are volatile and stay out of the trace bytes).
    if opts.profile {
        let table = ctx.profiler.table();
        if !opts.quiet {
            println!("\nStage profile\n{}", table.render_text());
        }
        let span = rec.root("profile");
        for row in &table.rows {
            span.event(
                "stage_profile",
                &[
                    ("stage", FieldValue::Str(row.path.clone())),
                    ("calls", FieldValue::U64(row.calls)),
                ],
            );
        }
    }

    // Record every fired fault before the flush, in the fire log's
    // deterministic (site, scope, fault, hit) order, so the trace of a
    // `--fault-plan` run documents exactly which faults actually struck.
    let fires = ghosts_faultinject::drain_fires();
    let fault_span = rec.root("faultinject");
    for f in &fires {
        fault_span.fault_injected(
            "fired",
            &[
                ("site", FieldValue::Str(f.site.clone())),
                ("scope", FieldValue::Str(f.scope.clone())),
                ("fault", FieldValue::Str(f.fault.name().to_string())),
                ("hit", FieldValue::U64(f.hit)),
            ],
        );
    }

    // Flush once; the same log feeds both sinks.
    let mut degraded_run = !fires.is_empty();
    if tracing {
        let log = rec.flush();
        degraded_run = degraded_run
            || log.degradation_count() > 0
            || log
                .spans
                .iter()
                .any(|(_, events)| events.iter().any(|e| e.name == "stratum_failed"));
        if let Some(path) = &opts.trace {
            if let Err(e) =
                ghosts_durable::atomic_write(std::path::Path::new(path), log.to_jsonl().as_bytes())
            {
                eprintln!("repro: could not write trace {path}: {e}");
                failures += 1;
            }
        }
        if let Some(path) = &opts.metrics_out {
            let mut manifest = RunManifest::new();
            manifest.set_config("denom", opts.denom.to_string());
            manifest.set_config("seed", opts.seed.to_string());
            manifest.set_config("threads", format!("{:?}", opts.parallelism));
            manifest.set_config("experiments", opts.ids.join(" "));
            manifest.ingest_metrics(&log);
            manifest.ingest_events(&log, MANIFEST_EVENTS);
            if opts.profile {
                manifest.ingest_stage_table(&ctx.profiler.table());
            }
            if let Err(e) = ghosts_durable::atomic_write(
                std::path::Path::new(path),
                manifest.to_json().as_bytes(),
            ) {
                eprintln!("repro: could not write manifest {path}: {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("repro: {failures} experiment(s) failed");
        std::process::exit(1);
    }
    if degraded_run {
        eprintln!(
            "repro: run completed DEGRADED ({} fault(s) fired) — results are partial",
            fires.len()
        );
        std::process::exit(EXIT_DEGRADED);
    }
}

/// Reads, parses and installs the fault plan, if any. Plan problems are
/// usage errors: nothing has run yet, so exiting 2 cannot hide a partial
/// result.
fn install_fault_plan(path: Option<&str>) {
    let Some(path) = path else { return };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("--fault-plan: cannot read {path}: {e}")));
    let plan = ghosts_faultinject::FaultPlan::parse(&text)
        .unwrap_or_else(|e| usage(&format!("--fault-plan {path}: {e}")));
    if ghosts_faultinject::install(plan).is_err() {
        usage("--fault-plan: this binary was built without the fault-inject feature");
    }
}

/// The deliberately singular design: a single-source study. Capture–
/// recapture needs at least two overlapping sources — with one there is no
/// recapture information at all and the ghost cell is unidentifiable. The
/// estimator must reject it ([`ghosts_core::EstimateError::NotEnoughSources`],
/// recording an `estimate_failed` error event on the `selftest` span), and
/// the harness must surface that as a nonzero exit — not a silent panic.
/// (Richer degeneracies — disjoint sources, all-zero interactions — are
/// absorbed by the Newton fitter's ridge fallback and yield implausibly
/// huge but well-formed estimates, so they cannot drive this path.)
fn run_selftest_fail(ctx: &ReproContext) -> Result<(String, serde_json::Value), String> {
    let table = ContingencyTable::from_histories(1, std::iter::repeat_n(0b1u16, 50));
    let mut cfg = ctx.cr_config();
    cfg.obs = ctx.recorder.root("selftest");
    match estimate_table(&table, None, &cfg) {
        Ok(est) => Err(format!(
            "degenerate design unexpectedly estimable (total {})",
            est.total
        )),
        Err(e) => Err(format!("estimation failed as designed: {e}")),
    }
}

/// One synthetic stratum for [`SELFTEST_DEGRADE`]: three sources with
/// every overlap pattern populated, scaled so the strata differ.
fn selftest_stratum(scale: usize) -> ContingencyTable {
    ContingencyTable::from_histories(
        3,
        std::iter::repeat_n(0b001u16, 300 * scale)
            .chain(std::iter::repeat_n(0b010, 200 * scale))
            .chain(std::iter::repeat_n(0b100, 100 * scale))
            .chain(std::iter::repeat_n(0b011, 80 * scale))
            .chain(std::iter::repeat_n(0b101, 60 * scale))
            .chain(std::iter::repeat_n(0b110, 40 * scale))
            .chain(std::iter::repeat_n(0b111, 20 * scale)),
    )
}

/// Four clean synthetic strata through the stratified estimator. With no
/// fault plan installed every stratum is estimable and the run is clean;
/// a plan can fail individual strata (the run then reports the survivors
/// as partial results and exits via [`EXIT_DEGRADED`]).
fn run_selftest_degrade(ctx: &ReproContext) -> Result<(String, serde_json::Value), String> {
    let tables: Vec<ContingencyTable> = [1usize, 2, 1, 3]
        .into_iter()
        .map(selftest_stratum)
        .collect();
    let mut cfg = ctx.cr_config();
    cfg.truncated = false;
    cfg.obs = ctx.recorder.root("selftest-degrade");
    let s = estimate_stratified(&tables, None, &cfg);
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for (i, est) in s.strata.iter().enumerate() {
        match est {
            Some(e) => {
                lines.push(format!(
                    "stratum {i}: total {:.1} model {}",
                    e.total, e.model
                ));
                rows.push(json!({ "stratum": i, "total": e.total, "model": e.model }));
            }
            None => {
                lines.push(format!("stratum {i}: FAILED"));
                rows.push(json!({ "stratum": i, "total": null }));
            }
        }
    }
    let text = format!(
        "Selftest (degrade) — {} strata, estimated total {:.1}\n{}\ndegraded strata: {:?}; failed strata: {:?}\n",
        tables.len(),
        s.estimated_total,
        lines.join("\n"),
        s.degraded,
        s.failed,
    );
    let json = json!({
        "estimated_total": s.estimated_total,
        "strata": rows,
        "degraded": s.degraded,
        "failed": s.failed,
    });
    Ok((text, json))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT…|all] [--denom N] [--seed N] [--threads auto|N]\n\
         \x20            [--trace PATH] [--metrics-out PATH] [--fault-plan PATH]\n\
         \x20            [--profile] [--quiet]\n\
         experiments: {}\n\
         extras: reliability (bootstrap + coverage + batched CV report)",
        ALL_IDS_FULL.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
