//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin repro -- all
//! cargo run -p ghosts-bench --release --bin repro -- table5 fig4 fig5
//! cargo run -p ghosts-bench --release --bin repro -- all --denom 256
//! cargo run -p ghosts-bench --release --bin repro -- table3 --trace trace.jsonl
//! ```
//!
//! Options:
//! * `--denom N` — simulate 1/N of the real Internet (default 1024; 256
//!   matches DESIGN.md's default scale but takes ~16x longer).
//! * `--seed N` — simulation seed (default 2014).
//! * `--threads auto|N` — worker threads for model selection and
//!   stratified estimation (default `auto` = all cores; results are
//!   bit-identical at every setting, `1` runs fully sequentially).
//! * `--trace PATH` — write the deterministic JSONL event log (DESIGN.md
//!   §10) to PATH. Byte-identical for a given scenario and experiment
//!   list at every `--threads` setting.
//! * `--metrics-out PATH` — write a `RunManifest` JSON summary (config
//!   echo, chosen models, IC candidates, counters, wall timings) to PATH.
//! * `--quiet` — suppress progress chatter and per-experiment text on
//!   stdout; errors still go to stderr.
//!
//! Output goes to stdout and to `results/<id>.txt` / `results/<id>.json`.
//! If any experiment fails, a structured `experiment_failed` error event is
//! recorded (visible in `--trace`/`--metrics-out`) and the exit code is 1.

use ghosts_bench::context::write_results;
use ghosts_bench::experiments::{self, ALL_IDS_FULL};
use ghosts_bench::ReproContext;
use ghosts_core::{estimate_table, ContingencyTable, Parallelism};
use ghosts_obs::{FieldValue, LogicalClock, Recorder, RunManifest, WallClock};
use std::sync::Arc;

/// Hidden experiment id: runs a deliberately degenerate design through the
/// estimator to exercise the failure path end to end (structured error
/// event + nonzero exit). Not listed in `ALL_IDS_FULL`.
const SELFTEST_FAIL: &str = "selftest-fail";

/// Manifest sections: the summary events worth echoing per span.
const MANIFEST_EVENTS: &[&str] = &[
    "model_chosen",
    "ic_candidate",
    "estimate",
    "stratified_total",
    "ci",
    "filter",
    "spoof_filter",
    "window_observed",
];

struct Options {
    ids: Vec<String>,
    denom: u64,
    seed: u64,
    parallelism: Parallelism,
    trace: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        denom: 1024,
        seed: 2014,
        parallelism: Parallelism::Auto,
        trace: None,
        metrics_out: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--denom" => {
                opts.denom = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--denom needs an integer"));
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--threads" => {
                opts.parallelism = it
                    .next()
                    .ok_or_else(|| "missing value".to_string())
                    .and_then(|v| Parallelism::parse(v))
                    .unwrap_or_else(|e| usage(&format!("--threads: {e}")));
            }
            "--trace" => {
                opts.trace = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--trace needs a path"))
                        .clone(),
                );
            }
            "--metrics-out" => {
                opts.metrics_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--metrics-out needs a path"))
                        .clone(),
                );
            }
            "--quiet" => opts.quiet = true,
            "all" => opts.ids.extend(ALL_IDS_FULL.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(""),
            other => {
                if ALL_IDS_FULL.contains(&other) || other == SELFTEST_FAIL {
                    opts.ids.push(other.to_string());
                } else {
                    usage(&format!("unknown experiment {other:?}"));
                }
            }
        }
    }
    if opts.ids.is_empty() {
        usage("no experiments requested");
    }
    opts.ids.dedup();
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    // Tracing uses the deterministic logical clock so the event log is
    // byte-identical across runs; wall time is read separately (below) and
    // only ever lands in the volatile lane / manifest.
    let tracing = opts.trace.is_some() || opts.metrics_out.is_some();
    let rec = if tracing {
        Recorder::enabled(Arc::new(LogicalClock::new()))
    } else {
        Recorder::disabled()
    };
    let wall = WallClock::new();
    use ghosts_obs::Clock;

    let progress = |msg: &str| {
        if !opts.quiet {
            eprintln!("{msg}");
        }
    };

    progress(&format!(
        "repro: building scenario at scale 1/{} (seed {}, {} worker threads)…",
        opts.denom,
        opts.seed,
        opts.parallelism.threads()
    ));
    let t_build = wall.now();
    let mut ctx = ReproContext::new(opts.denom, opts.seed);
    ctx.parallelism = opts.parallelism;
    ctx.recorder = rec.clone();
    let ctx = ctx;
    rec.volatile_add("repro.scenario_build_us", wall.now() - t_build);
    progress(&format!(
        "repro: scenario ready in {:.1}s — {} allocations, {} routed addrs, {} routed /24s",
        (wall.now() - t_build) as f64 / 1e6,
        ctx.scenario.gt.registry.len(),
        ctx.scenario.gt.routed.address_count(),
        ctx.scenario.gt.routed.subnet24_count(),
    ));

    let mut failures = 0u32;
    for id in &opts.ids {
        let t0 = wall.now();
        progress(&format!("repro: running {id}…"));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if id == SELFTEST_FAIL {
                run_selftest_fail(&ctx)
            } else {
                Ok(experiments::run(id, &ctx))
            }
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(panic) => Err(panic_message(&panic)),
        };
        match result {
            Ok((text, json)) => {
                if !opts.quiet {
                    println!("\n{text}");
                }
                if let Err(e) = write_results(id, &text, &json) {
                    eprintln!("repro: could not write results/{id}: {e}");
                }
                progress(&format!(
                    "repro: {id} done in {:.1}s",
                    (wall.now() - t0) as f64 / 1e6
                ));
            }
            Err(message) => {
                failures += 1;
                rec.root("repro").error(
                    "experiment_failed",
                    &[
                        ("id", FieldValue::Str(id.clone())),
                        ("error", FieldValue::Str(message.clone())),
                    ],
                );
                eprintln!("repro: {id} FAILED: {message}");
            }
        }
        rec.volatile_add(&format!("repro.{id}_us"), wall.now() - t0);
    }
    rec.volatile_add("repro.total_us", wall.now());
    rec.volatile_max("repro.worker_threads", opts.parallelism.threads() as u64);

    // Flush once; the same log feeds both sinks.
    if tracing {
        let log = rec.flush();
        if let Some(path) = &opts.trace {
            if let Err(e) = std::fs::write(path, log.to_jsonl()) {
                eprintln!("repro: could not write trace {path}: {e}");
                failures += 1;
            }
        }
        if let Some(path) = &opts.metrics_out {
            let mut manifest = RunManifest::new();
            manifest.set_config("denom", opts.denom.to_string());
            manifest.set_config("seed", opts.seed.to_string());
            manifest.set_config("threads", format!("{:?}", opts.parallelism));
            manifest.set_config("experiments", opts.ids.join(" "));
            manifest.ingest_metrics(&log);
            manifest.ingest_events(&log, MANIFEST_EVENTS);
            if let Err(e) = std::fs::write(path, manifest.to_json()) {
                eprintln!("repro: could not write manifest {path}: {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("repro: {failures} experiment(s) failed");
        std::process::exit(1);
    }
}

/// The deliberately singular design: a single-source study. Capture–
/// recapture needs at least two overlapping sources — with one there is no
/// recapture information at all and the ghost cell is unidentifiable. The
/// estimator must reject it ([`ghosts_core::EstimateError::NotEnoughSources`],
/// recording an `estimate_failed` error event on the `selftest` span), and
/// the harness must surface that as a nonzero exit — not a silent panic.
/// (Richer degeneracies — disjoint sources, all-zero interactions — are
/// absorbed by the Newton fitter's ridge fallback and yield implausibly
/// huge but well-formed estimates, so they cannot drive this path.)
fn run_selftest_fail(ctx: &ReproContext) -> Result<(String, serde_json::Value), String> {
    let table = ContingencyTable::from_histories(1, std::iter::repeat_n(0b1u16, 50));
    let mut cfg = ctx.cr_config();
    cfg.obs = ctx.recorder.root("selftest");
    match estimate_table(&table, None, &cfg) {
        Ok(est) => Err(format!(
            "degenerate design unexpectedly estimable (total {})",
            est.total
        )),
        Err(e) => Err(format!("estimation failed as designed: {e}")),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT…|all] [--denom N] [--seed N] [--threads auto|N]\n\
         \x20            [--trace PATH] [--metrics-out PATH] [--quiet]\n\
         experiments: {}",
        ALL_IDS_FULL.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
