//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin repro -- all
//! cargo run -p ghosts-bench --release --bin repro -- table5 fig4 fig5
//! cargo run -p ghosts-bench --release --bin repro -- all --denom 256
//! ```
//!
//! Options:
//! * `--denom N` — simulate 1/N of the real Internet (default 1024; 256
//!   matches DESIGN.md's default scale but takes ~16x longer).
//! * `--seed N` — simulation seed (default 2014).
//! * `--threads auto|N` — worker threads for model selection and
//!   stratified estimation (default `auto` = all cores; results are
//!   bit-identical at every setting, `1` runs fully sequentially).
//!
//! Output goes to stdout and to `results/<id>.txt` / `results/<id>.json`.

// The repro binary is the reporting harness: wall-clock timing here is
// operator feedback and never enters any result.
#![allow(clippy::disallowed_methods)]

use ghosts_bench::context::write_results;
use ghosts_bench::experiments::{self, ALL_IDS_FULL};
use ghosts_bench::ReproContext;
use ghosts_core::Parallelism;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut denom = 1024u64;
    let mut seed = 2014u64;
    let mut parallelism = Parallelism::Auto;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--denom" => {
                denom = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--denom needs an integer"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--threads" => {
                parallelism = it
                    .next()
                    .ok_or_else(|| "missing value".to_string())
                    .and_then(|v| Parallelism::parse(v))
                    .unwrap_or_else(|e| usage(&format!("--threads: {e}")));
            }
            "all" => ids.extend(ALL_IDS_FULL.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(""),
            other => {
                if ALL_IDS_FULL.contains(&other) {
                    ids.push(other.to_string());
                } else {
                    usage(&format!("unknown experiment {other:?}"));
                }
            }
        }
    }
    if ids.is_empty() {
        usage("no experiments requested");
    }
    ids.dedup();

    eprintln!(
        "repro: building scenario at scale 1/{denom} (seed {seed}, {} worker threads)…",
        parallelism.threads()
    );
    let start = std::time::Instant::now();
    let mut ctx = ReproContext::new(denom, seed);
    ctx.parallelism = parallelism;
    let ctx = ctx;
    eprintln!(
        "repro: scenario ready in {:.1}s — {} allocations, {} routed addrs, {} routed /24s",
        start.elapsed().as_secs_f64(),
        ctx.scenario.gt.registry.len(),
        ctx.scenario.gt.routed.address_count(),
        ctx.scenario.gt.routed.subnet24_count(),
    );

    for id in &ids {
        let t0 = std::time::Instant::now();
        eprintln!("repro: running {id}…");
        let (text, json) = experiments::run(id, &ctx);
        println!("\n{text}");
        if let Err(e) = write_results(id, &text, &json) {
            eprintln!("repro: could not write results/{id}: {e}");
        }
        eprintln!("repro: {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT…|all] [--denom N] [--seed N] [--threads auto|N]\n\
         experiments: {}",
        ALL_IDS_FULL.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
