//! `serve` — runs the estimation server over the reproduction scenario,
//! plus a tiny raw-HTTP client subcommand for scripts and CI.
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin serve -- run --port 0 --denom 16384
//! cargo run -p ghosts-bench --release --bin serve -- req GET http://127.0.0.1:8080/healthz
//! cargo run -p ghosts-bench --release --bin serve -- req POST \
//!     http://127.0.0.1:8080/v1/estimate '{"window":0}' --expect-status 200
//! ```
//!
//! `run` options:
//! * `--port N` — TCP port on 127.0.0.1 (default 0 = ephemeral; the bound
//!   address is announced on stdout as
//!   `ghosts-serve listening on http://<addr>`).
//! * `--denom N` / `--seed N` — scenario scale and seed (defaults 16384 /
//!   2014: small enough to start in seconds, big enough to estimate).
//! * `--workers N` — worker threads (default 2).
//! * `--cache-capacity N` — in-memory LRU entries (default 256).
//! * `--cache-dir PATH` — enable the on-disk JSON spill.
//! * `--max-pending N` — accept-queue bound before shedding (default 64).
//! * `--ingest-dir PATH` — enable the durable ingest plane (WAL +
//!   checkpoints under PATH; `POST /v1/observations` et al.).
//! * `--max-inflight N` / `--checkpoint-every N` — ingest backpressure
//!   bound and auto-checkpoint cadence (defaults 32 / 32).
//! * `--fault-plan "PLAN"` — install a fault plan (e.g.
//!   `site=durable.wal.append kind=crash-at-point scope=3 hit=0`) for the
//!   chaos harness; errors out unless built with `fault-inject`.
//! * `--quiet` — suppress the backend-info chatter on stderr.
//!
//! The process serves until killed; a clean `SIGTERM` terminates it with
//! the conventional exit code 143, which the CI smoke step asserts. With
//! an ingest plane, `POST /v1/admin/drain` checkpoints the durable state
//! and the process exits 0 once the drain latch is observed — the
//! graceful path; `kill -9` is the covered-by-recovery path.
//!
//! `req METHOD URL [BODY] [--expect-status N] [--retries N] [--retry-seed N]
//! [--idempotency-key K]` prints the response body to stdout and
//! `status`/headers to stderr, exiting 1 on socket failure or a status
//! mismatch — enough curl for the smoke tests. With `--retries` it runs
//! the deterministic jittered backoff (honouring `Retry-After`), and
//! `--idempotency-key` stamps the header so retries dedup server-side.

use ghosts_bench::ReproBackend;
use ghosts_serve::client::RetryPolicy;
use ghosts_serve::{client, Backend, MetricsHub, Server, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

fn usage(message: &str) -> ! {
    eprintln!("serve: {message}");
    eprintln!(
        "usage: serve run [--port N] [--denom N] [--seed N] [--workers N] \
         [--cache-capacity N] [--cache-dir PATH] [--max-pending N] \
         [--ingest-dir PATH] [--max-inflight N] [--checkpoint-every N] \
         [--fault-plan PLAN] [--quiet]\n\
         \x20      serve req METHOD URL [BODY] [--expect-status N] [--retries N] \
         [--retry-seed N] [--idempotency-key K]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("req") => req(&args[1..]),
        _ => usage("expected a subcommand: run or req"),
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut port = 0u16;
    let mut denom = 16_384u64;
    let mut seed = 2014u64;
    let mut config = ServerConfig::default();
    let mut quiet = false;
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs a non-negative integer")))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                port = u16::try_from(num(&mut it, "--port"))
                    .unwrap_or_else(|_| usage("--port: not a port"))
            }
            "--denom" => denom = num(&mut it, "--denom").max(1),
            "--seed" => seed = num(&mut it, "--seed"),
            "--workers" => config.workers = num(&mut it, "--workers").max(1) as usize,
            "--cache-capacity" => config.cache_capacity = num(&mut it, "--cache-capacity") as usize,
            "--max-pending" => config.max_pending = num(&mut it, "--max-pending").max(1) as usize,
            "--cache-dir" => {
                config.cache_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--cache-dir needs a path"))
                        .into(),
                )
            }
            "--ingest-dir" => {
                config.ingest_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--ingest-dir needs a path"))
                        .into(),
                )
            }
            "--max-inflight" => config.max_inflight = num(&mut it, "--max-inflight") as usize,
            "--checkpoint-every" => config.checkpoint_every = num(&mut it, "--checkpoint-every"),
            "--fault-plan" => {
                let text = it
                    .next()
                    .unwrap_or_else(|| usage("--fault-plan needs a plan document"));
                let plan = ghosts_faultinject::FaultPlan::parse(text)
                    .unwrap_or_else(|e| usage(&format!("--fault-plan: {e}")));
                if let Err(e) = ghosts_faultinject::install(plan) {
                    usage(&format!("--fault-plan: {e}"));
                }
            }
            "--quiet" => quiet = true,
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    config.addr = format!("127.0.0.1:{port}");

    if !quiet {
        eprintln!("serve: building the 1/{denom} scenario (seed {seed})…");
    }
    let backend = Arc::new(ReproBackend::new(denom, seed));
    if !quiet {
        for (k, v) in backend.info() {
            eprintln!("serve:   {k} = {v}");
        }
    }
    let server = match Server::bind(config, backend, MetricsHub::wall()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The announcement line is the startup contract: scripts poll stdout
    // for it to learn the ephemeral port.
    println!("ghosts-serve listening on http://{}", server.local_addr());
    // Serve until killed — SIGTERM takes the default path (process
    // termination, exit 143); the spill cache is written atomically per
    // entry and acked observations are already fsynced, so even `kill -9`
    // loses nothing acknowledged. `POST /v1/admin/drain` is the graceful
    // exit: once the latch is observed the state is checkpointed and the
    // process leaves with code 0.
    loop {
        std::thread::park_timeout(std::time::Duration::from_millis(50));
        if server.drain_requested() {
            if !quiet {
                eprintln!("serve: drain requested; durable state checkpointed, exiting");
            }
            server.shutdown();
            return ExitCode::SUCCESS;
        }
    }
}

fn req(args: &[String]) -> ExitCode {
    let mut positional: Vec<&String> = Vec::new();
    let mut expect: Option<u16> = None;
    let mut policy = RetryPolicy {
        retries: 0,
        ..RetryPolicy::default()
    };
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect-status" => {
                expect = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--expect-status needs a status code")),
                );
            }
            "--retries" => {
                policy.retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--retries needs a count"));
            }
            "--retry-seed" => {
                policy.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--retry-seed needs an integer"));
            }
            "--idempotency-key" => {
                let key = it
                    .next()
                    .unwrap_or_else(|| usage("--idempotency-key needs a value"));
                headers.push(("idempotency-key".to_string(), key.clone()));
            }
            _ => positional.push(a),
        }
    }
    let (method, url, body) = match positional.as_slice() {
        [m, u] => (m.to_uppercase(), u.as_str(), None),
        [m, u, b] => (m.to_uppercase(), u.as_str(), Some(b.as_bytes())),
        _ => usage("req needs METHOD and URL (and optionally a BODY)"),
    };
    let Some(rest) = url.strip_prefix("http://") else {
        usage("URL must start with http://");
    };
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let Ok(addr) = host.parse::<SocketAddr>() else {
        usage("URL host must be an ip:port literal (e.g. 127.0.0.1:8080)");
    };

    match client::request_with_retry(addr, &method, path, body, &headers, &policy) {
        Ok(response) => {
            eprintln!("status: {}", response.status);
            for (name, value) in &response.headers {
                eprintln!("{name}: {value}");
            }
            // Newline-terminated bodies (JSONL, /metrics) pass through
            // byte-exact; compact JSON bodies still get a final newline.
            let body = response.body_text();
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
            match expect {
                Some(want) if want != response.status => {
                    eprintln!("serve: expected status {want}, got {}", response.status);
                    ExitCode::FAILURE
                }
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("serve: {method} {url} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
