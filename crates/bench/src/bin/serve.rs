//! `serve` — runs the estimation server over the reproduction scenario,
//! plus a tiny raw-HTTP client subcommand for scripts and CI.
//!
//! ```text
//! cargo run -p ghosts-bench --release --bin serve -- run --port 0 --denom 16384
//! cargo run -p ghosts-bench --release --bin serve -- req GET http://127.0.0.1:8080/healthz
//! cargo run -p ghosts-bench --release --bin serve -- req POST \
//!     http://127.0.0.1:8080/v1/estimate '{"window":0}' --expect-status 200
//! ```
//!
//! `run` options:
//! * `--port N` — TCP port on 127.0.0.1 (default 0 = ephemeral; the bound
//!   address is announced on stdout as
//!   `ghosts-serve listening on http://<addr>`).
//! * `--denom N` / `--seed N` — scenario scale and seed (defaults 16384 /
//!   2014: small enough to start in seconds, big enough to estimate).
//! * `--workers N` — worker threads (default 2).
//! * `--cache-capacity N` — in-memory LRU entries (default 256).
//! * `--cache-dir PATH` — enable the on-disk JSON spill.
//! * `--max-pending N` — accept-queue bound before shedding (default 64).
//! * `--quiet` — suppress the backend-info chatter on stderr.
//!
//! The process serves until killed; a clean `SIGTERM` terminates it with
//! the conventional exit code 143, which the CI smoke step asserts.
//!
//! `req METHOD URL [BODY] [--expect-status N]` prints the response body
//! to stdout and `status`/headers to stderr, exiting 1 on socket failure
//! or a status mismatch — enough curl for the smoke tests.

use ghosts_bench::ReproBackend;
use ghosts_serve::{client, Backend, MetricsHub, Server, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

fn usage(message: &str) -> ! {
    eprintln!("serve: {message}");
    eprintln!(
        "usage: serve run [--port N] [--denom N] [--seed N] [--workers N] \
         [--cache-capacity N] [--cache-dir PATH] [--max-pending N] [--quiet]\n\
         \x20      serve req METHOD URL [BODY] [--expect-status N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("req") => req(&args[1..]),
        _ => usage("expected a subcommand: run or req"),
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut port = 0u16;
    let mut denom = 16_384u64;
    let mut seed = 2014u64;
    let mut config = ServerConfig::default();
    let mut quiet = false;
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs a non-negative integer")))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                port = u16::try_from(num(&mut it, "--port"))
                    .unwrap_or_else(|_| usage("--port: not a port"))
            }
            "--denom" => denom = num(&mut it, "--denom").max(1),
            "--seed" => seed = num(&mut it, "--seed"),
            "--workers" => config.workers = num(&mut it, "--workers").max(1) as usize,
            "--cache-capacity" => config.cache_capacity = num(&mut it, "--cache-capacity") as usize,
            "--max-pending" => config.max_pending = num(&mut it, "--max-pending").max(1) as usize,
            "--cache-dir" => {
                config.cache_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--cache-dir needs a path"))
                        .into(),
                )
            }
            "--quiet" => quiet = true,
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    config.addr = format!("127.0.0.1:{port}");

    if !quiet {
        eprintln!("serve: building the 1/{denom} scenario (seed {seed})…");
    }
    let backend = Arc::new(ReproBackend::new(denom, seed));
    if !quiet {
        for (k, v) in backend.info() {
            eprintln!("serve:   {k} = {v}");
        }
    }
    let server = match Server::bind(config, backend, MetricsHub::wall()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The announcement line is the startup contract: scripts poll stdout
    // for it to learn the ephemeral port.
    println!("ghosts-serve listening on http://{}", server.local_addr());
    // Serve until killed. SIGTERM takes the default path (process
    // termination, exit 143) — the worker pool holds no cross-request
    // state worth flushing: the spill cache is written atomically per
    // entry and the metrics lane is process-local by design.
    loop {
        std::thread::park();
    }
}

fn req(args: &[String]) -> ExitCode {
    let mut positional: Vec<&String> = Vec::new();
    let mut expect: Option<u16> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--expect-status" {
            expect = Some(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--expect-status needs a status code")),
            );
        } else {
            positional.push(a);
        }
    }
    let (method, url, body) = match positional.as_slice() {
        [m, u] => (m.to_uppercase(), u.as_str(), None),
        [m, u, b] => (m.to_uppercase(), u.as_str(), Some(b.as_bytes())),
        _ => usage("req needs METHOD and URL (and optionally a BODY)"),
    };
    let Some(rest) = url.strip_prefix("http://") else {
        usage("URL must start with http://");
    };
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let Ok(addr) = host.parse::<SocketAddr>() else {
        usage("URL host must be an ip:port literal (e.g. 127.0.0.1:8080)");
    };

    match client::request(addr, &method, path, body) {
        Ok(response) => {
            eprintln!("status: {}", response.status);
            for (name, value) in &response.headers {
                eprintln!("{name}: {value}");
            }
            // Newline-terminated bodies (JSONL, /metrics) pass through
            // byte-exact; compact JSON bodies still get a final newline.
            let body = response.body_text();
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
            match expect {
                Some(want) if want != response.status => {
                    eprintln!("serve: expected status {want}, got {}", response.status);
                    ExitCode::FAILURE
                }
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("serve: {method} {url} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
