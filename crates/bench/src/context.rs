//! Shared state for the experiment harness: one scenario, cached window
//! datasets (raw and spoof-filtered) and cached CR estimates.
//!
//! The context is `Send + Sync`: caches are `Arc` values behind sharded
//! mutexes (one shard per window-index residue), so experiments and the
//! parallel estimation layer can share one context across threads without
//! a global lock. Every cached value is deterministic in the scenario, so
//! a racing double-compute stores the same bytes either way.

use ghosts_core::{
    estimate_table, ContingencyTable, CrConfig, CrEstimate, EstimateError, Parallelism,
};
use ghosts_net::SubnetSet;
use ghosts_obs::{Recorder, Scope, StageProfiler};
use ghosts_pipeline::dataset::{SourceDataset, WindowData};
use ghosts_pipeline::spoof_filter::{filter_spoofed_profiled, SpoofFilterConfig};
use ghosts_pipeline::time::{paper_windows, TimeWindow};
use ghosts_sim::{Scenario, SimConfig};
use ghosts_stats::rng::component_rng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shards per cache: windows map round-robin onto shards, so the eleven
/// paper windows spread across locks instead of serialising on one.
const CACHE_SHARDS: usize = 8;

/// A sharded `index → Arc<V>` cache. `get_or_insert_with` holds only the
/// shard lock for the key, and never while computing the value. `BTreeMap`
/// keeps any future iteration over a shard in key order.
struct ShardedCache<V> {
    shards: Vec<Mutex<BTreeMap<usize, Arc<V>>>>,
}

impl<V> ShardedCache<V> {
    fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: usize) -> &Mutex<BTreeMap<usize, Arc<V>>> {
        &self.shards[key % CACHE_SHARDS]
    }

    fn get_or_insert_with<F: FnOnce() -> V>(&self, key: usize, compute: F) -> Arc<V> {
        self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(compute()))
            .unwrap_or_else(|e| match e {})
    }

    /// Fallible variant: errors are returned to the caller and **not**
    /// cached, so a transient failure does not poison the slot.
    fn try_get_or_insert_with<E, F: FnOnce() -> Result<V, E>>(
        &self,
        key: usize,
        compute: F,
    ) -> Result<Arc<V>, E> {
        if let Some(v) = self.shard(key).lock().expect("cache shard").get(&key) {
            return Ok(Arc::clone(v));
        }
        // Compute outside the lock: concurrent misses may compute twice,
        // but both results are identical and the first insert wins.
        let value = Arc::new(compute()?);
        Ok(Arc::clone(
            self.shard(key)
                .lock()
                .expect("cache shard")
                .entry(key)
                .or_insert(value),
        ))
    }
}

/// The real Internet's allocated space in mid-2014 — the numerator of the
/// scale factor.
pub const REAL_ALLOCATED_2014: f64 = 3_584_000_000.0;

/// Shared experiment state.
pub struct ReproContext {
    /// The generated measurement study.
    pub scenario: Scenario,
    /// The paper's eleven windows.
    pub windows: Vec<TimeWindow>,
    /// Scale denominator: the simulation models `1/denom` of the real
    /// Internet. Multiply mini-Internet counts by this for full-scale
    /// equivalents.
    pub denom: f64,
    /// Worker-thread setting handed to every estimation run started from
    /// this context (the `repro` binary's `--threads` flag lands here).
    pub parallelism: Parallelism,
    /// Observability sink every estimation and filtering run traces into.
    /// Disabled by default (a no-op branch); the `repro` binary enables it
    /// when `--trace`/`--metrics-out` is given. Spans are indexed by window
    /// (`addr/window[i]`, `subnet/window[i]`, `pipeline/window[i]`), so the
    /// merged event log is deterministic regardless of which experiment
    /// first populated a cache slot — as long as experiments themselves
    /// run sequentially (racing double-computes would double-record).
    pub recorder: Recorder,
    /// Stage profiler attributing wall (or logical) time across the
    /// pipeline stages (`parse` → `fit`/`select`/`ci`). Disabled by
    /// default; the `repro` binary enables it under `--profile`. Call
    /// counts are deterministic; durations live in the volatile lane.
    pub profiler: StageProfiler,
    raw: ShardedCache<WindowData>,
    filtered: ShardedCache<WindowData>,
    addr_estimates: ShardedCache<CrEstimate>,
    subnet_estimates: ShardedCache<CrEstimate>,
}

impl ReproContext {
    /// Builds the context at scale `1/denom` with the given seed.
    pub fn new(denom: u64, seed: u64) -> Self {
        let mut cfg = SimConfig::default_scale(seed);
        cfg.allocated_budget = (REAL_ALLOCATED_2014 / denom as f64) as u64;
        // Spoof volumes scale with the dataset sizes so the filter keeps a
        // comparable signal-to-noise ratio at every scale.
        let spoof_scale = 256.0 / denom as f64;
        cfg.spoof.swin_per_quarter =
            ((cfg.spoof.swin_per_quarter as f64) * spoof_scale).max(500.0) as u64;
        cfg.spoof.calt_per_quarter =
            ((cfg.spoof.calt_per_quarter as f64) * spoof_scale).max(750.0) as u64;
        cfg.spoof.calt_spike_per_quarter =
            ((cfg.spoof.calt_spike_per_quarter as f64) * spoof_scale).max(10_000.0) as u64;
        Self {
            scenario: Scenario::new(cfg),
            windows: paper_windows(),
            denom: denom as f64,
            parallelism: Parallelism::Auto,
            recorder: Recorder::disabled(),
            profiler: StageProfiler::disabled(),
            raw: ShardedCache::new(),
            filtered: ShardedCache::new(),
            addr_estimates: ShardedCache::new(),
            subnet_estimates: ShardedCache::new(),
        }
    }

    /// The paper's CR configuration, with the sampling-zeros exclusion
    /// threshold adjusted for scale: the paper's 1000-IP cut-off applies
    /// to the full Internet; instability of tiny strata depends on
    /// absolute counts, so a floor of 200 observed individuals is kept at
    /// every scale.
    pub fn cr_config(&self) -> CrConfig {
        let mut cfg = CrConfig {
            min_stratum_observed: 200,
            parallelism: self.parallelism,
            // Experiments that estimate ad-hoc tables trace onto a shared
            // `estimate` span (experiments run sequentially, so append
            // order is deterministic); the cached per-window entry points
            // override this with their indexed window span.
            obs: self.recorder.root("estimate"),
            profile: self.profiler.scoped("estimate"),
            ..CrConfig::paper()
        };
        cfg.selection.parallelism = self.parallelism;
        cfg
    }

    /// A per-window tracing scope under `stage` (`addr`, `subnet`,
    /// `pipeline`). No-op when the recorder is disabled.
    fn window_scope(&self, stage: &str, i: usize) -> Scope {
        self.recorder.root(stage).child_idx("window", i as u64)
    }

    /// Raw window data: spoofed traffic still inside SWIN/CALT.
    pub fn raw_window(&self, i: usize) -> Arc<WindowData> {
        self.raw
            .get_or_insert_with(i, || self.scenario.window_data(self.windows[i]))
    }

    /// Analysis-ready window data: SWIN/CALT passed through the §4.5
    /// spoof filter (universe-aware at mini-Internet scale).
    pub fn filtered_window(&self, i: usize) -> Arc<WindowData> {
        self.filtered.get_or_insert_with(i, || {
            let raw = self.raw_window(i);
            let spoof_free = raw.spoof_free_union();
            let fcfg = SpoofFilterConfig::with_universe(self.scenario.routed_per_eight());
            let obs = self.window_scope("pipeline", i);
            let profile = self.profiler.scoped("parse");
            let mut sources: Vec<SourceDataset> = raw
                .sources
                .iter()
                .map(|d| {
                    if d.spoof_free {
                        d.clone()
                    } else {
                        let mut rng = component_rng(
                            self.scenario.gt.cfg.seed,
                            &format!("repro-filter-{}-{}", d.name, i),
                        );
                        let report = filter_spoofed_profiled(
                            &d.addrs,
                            &spoof_free,
                            &fcfg,
                            &mut rng,
                            &obs.child(&d.name),
                            &profile,
                        );
                        SourceDataset::new(d.name.clone(), report.filtered, false)
                    }
                })
                .collect();
            // Fault site `pipeline.window`, scoped by window index: a
            // drop-source fault models a measurement source missing from
            // this window's upload. CR degrades gracefully as long as two
            // sources remain.
            if let Some(ghosts_faultinject::Fault::DropSource) =
                ghosts_faultinject::task_scope(i, || ghosts_faultinject::fire("pipeline.window"))
            {
                sources.pop();
            }
            WindowData {
                window: raw.window,
                sources,
            }
        })
    }

    /// The CR address estimate for window `i` (filtered data, truncated
    /// cells bounded by the routed space). Cached.
    ///
    /// # Panics
    ///
    /// Panics if the window's table cannot be fitted — experiments treat
    /// that as fatal. Callers that need to survive a bad window use
    /// [`Self::try_addr_estimate`].
    pub fn addr_estimate(&self, i: usize) -> Arc<CrEstimate> {
        self.try_addr_estimate(i)
            .unwrap_or_else(|e| panic!("window {i} address estimation failed: {e}"))
    }

    /// Fallible variant of [`Self::addr_estimate`]: failures are reported
    /// (and recorded as structured error events on the window's span)
    /// instead of panicking, and are not cached.
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from the model search / fit.
    pub fn try_addr_estimate(&self, i: usize) -> Result<Arc<CrEstimate>, EstimateError> {
        self.addr_estimates.try_get_or_insert_with(i, || {
            let data = self.filtered_window(i);
            let sets = data.addr_sets();
            let table = ContingencyTable::from_addr_sets(&sets);
            let mut cfg = self.cr_config();
            cfg.obs = self.window_scope("addr", i);
            estimate_table(&table, Some(self.scenario.gt.routed.address_count()), &cfg)
        })
    }

    /// The CR /24-subnet estimate for window `i`. Cached.
    ///
    /// # Panics
    ///
    /// Panics if the window's table cannot be fitted; see
    /// [`Self::try_subnet_estimate`].
    pub fn subnet_estimate(&self, i: usize) -> Arc<CrEstimate> {
        self.try_subnet_estimate(i)
            .unwrap_or_else(|e| panic!("window {i} subnet estimation failed: {e}"))
    }

    /// Fallible variant of [`Self::subnet_estimate`].
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from the model search / fit.
    pub fn try_subnet_estimate(&self, i: usize) -> Result<Arc<CrEstimate>, EstimateError> {
        self.subnet_estimates.try_get_or_insert_with(i, || {
            let data = self.filtered_window(i);
            let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
            let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
            let table = ContingencyTable::from_subnet_sets(&refs);
            let mut cfg = self.cr_config();
            cfg.obs = self.window_scope("subnet", i);
            estimate_table(&table, Some(self.scenario.gt.routed.subnet24_count()), &cfg)
        })
    }

    /// Full-scale equivalent of a mini-Internet count.
    pub fn full_scale(&self, v: f64) -> f64 {
        v * self.denom
    }
}

/// Writes an experiment artifact to `results/<id>.txt` and its JSON
/// sidecar to `results/<id>.json`, then returns the text for printing.
pub fn write_results(id: &str, text: &str, json: &serde_json::Value) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    ghosts_durable::atomic_write(
        std::path::Path::new(&format!("results/{id}.txt")),
        text.as_bytes(),
    )?;
    ghosts_durable::atomic_write(
        std::path::Path::new(&format!("results/{id}.json")),
        serde_json::to_string_pretty(json)
            .expect("serialisable")
            .as_bytes(),
    )?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // cache-stability asserts compare exact bits on purpose
mod tests {
    use super::*;

    /// A very small context for testing the harness plumbing.
    fn tiny_ctx() -> ReproContext {
        ReproContext::new(16_384, 7)
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReproContext>();
    }

    #[test]
    fn cache_shards_share_nothing() {
        let cache: ShardedCache<usize> = ShardedCache::new();
        // Holding one shard's value must not block other shards: compute
        // for key 1 while key 0's shard lock is held by this thread.
        let _guard = cache.shard(0).lock().unwrap();
        assert_eq!(*cache.get_or_insert_with(1, || 10), 10);
        assert_eq!(*cache.get_or_insert_with(1, || 99), 10); // cached
    }

    #[test]
    fn caches_are_stable() {
        let ctx = tiny_ctx();
        let a1 = ctx.addr_estimate(10);
        let a2 = ctx.addr_estimate(10);
        assert_eq!(a1.total, a2.total);
        let w1 = ctx.filtered_window(10);
        let w2 = ctx.filtered_window(10);
        assert_eq!(w1.sources.len(), w2.sources.len());
        for (x, y) in w1.sources.iter().zip(&w2.sources) {
            assert_eq!(x.addrs.len(), y.addrs.len());
        }
    }

    #[test]
    fn filtered_window_shrinks_netflow_only() {
        let ctx = tiny_ctx();
        let raw = ctx.raw_window(10);
        let filtered = ctx.filtered_window(10);
        for (r, f) in raw.sources.iter().zip(&filtered.sources) {
            assert_eq!(r.name, f.name);
            if r.spoof_free {
                assert_eq!(r.addrs.len(), f.addrs.len(), "{} changed", r.name);
            } else {
                assert!(f.addrs.len() <= r.addrs.len(), "{} grew", r.name);
            }
        }
    }

    #[test]
    fn estimates_are_plausible_and_scaled() {
        let ctx = tiny_ctx();
        let est = ctx.addr_estimate(10);
        assert!(est.total >= est.observed as f64);
        assert!(est.total <= ctx.scenario.gt.routed.address_count() as f64);
        assert_eq!(ctx.full_scale(1.0), 16_384.0);
        let sub = ctx.subnet_estimate(10);
        assert!(sub.total <= ctx.scenario.gt.routed.subnet24_count() as f64);
    }

    #[test]
    fn plane_kernel_matches_per_address_on_repro_windows() {
        // The word-wise contingency kernel must be bit-identical to the
        // per-address oracle on real repro-scenario data, at every
        // `--threads` setting a run could use (the kernel itself is
        // sequential, but the estimation layer's parallelism must not
        // perturb the cached window data it reads).
        for threads in [1usize, 4] {
            let mut ctx = tiny_ctx();
            ctx.parallelism = Parallelism::Fixed(threads);
            for i in [0usize, 10] {
                let data = ctx.filtered_window(i);
                let sets = data.addr_sets();
                let fast = ContingencyTable::from_addr_sets(&sets);
                let slow = ContingencyTable::from_addr_sets_per_addr(&sets);
                assert_eq!(fast.num_sources(), slow.num_sources());
                for mask in 0..fast.num_cells() as u16 {
                    assert_eq!(
                        fast.count(mask),
                        slow.count(mask),
                        "cell {mask} differs in window {i} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn spoof_volumes_scale_with_denominator() {
        let big = ReproContext::new(256, 7);
        let small = tiny_ctx();
        assert!(
            big.scenario.gt.cfg.spoof.swin_per_quarter
                >= small.scenario.gt.cfg.spoof.swin_per_quarter
        );
    }

    #[test]
    fn strata_limits_cover_routed_space() {
        let ctx = tiny_ctx();
        for strat in [
            crate::strata::Strat::Rir,
            crate::strata::Strat::Industry,
            crate::strata::Strat::StaticDynamic,
        ] {
            let info = crate::strata::build(&ctx, strat);
            let addr_total: u64 = info.addr_limits.iter().sum();
            let sub_total: u64 = info.subnet_limits.iter().sum();
            assert_eq!(addr_total, ctx.scenario.gt.routed.address_count());
            assert_eq!(sub_total, ctx.scenario.gt.routed.subnet24_count());
        }
    }
}
