//! Figure 1: two-source capture–recapture illustrated.
//!
//! The paper's Figure 1 is a conceptual diagram of the Lincoln–Petersen
//! setting: Source 1, Source 2, their overlap, and the inferred unseen
//! cell. This experiment realises the diagram with real data: the last
//! window's IPING (pinging the space, the paper's concrete Source 1) and
//! WEB (a server log, Source 2).

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_core::lincoln_petersen;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let data = ctx.filtered_window(ctx.windows.len() - 1);
    let s1 = &data.source("IPING").expect("IPING online").addrs;
    let s2 = &data.source("WEB").expect("WEB online").addrs;
    let m = s1.len();
    let c = s2.len();
    let r = s1.intersection_count(s2);
    let lp = lincoln_petersen(m, c, r).expect("sources overlap");
    let unseen = lp.n_hat - (m + c - r) as f64;
    let truth = ctx
        .scenario
        .truth_addrs(*ctx.windows.last().expect("windows"))
        .len();

    let mut t = TextTable::new(["quantity", "value"]);
    t.row(["Source 1 (IPING), M".to_string(), m.to_string()]);
    t.row(["Source 2 (WEB), C".to_string(), c.to_string()]);
    t.row(["Overlap, R".to_string(), r.to_string()]);
    t.row([
        "L-P population N = MC/R".to_string(),
        format!("{:.0}", lp.n_hat),
    ]);
    t.row(["Inferred unseen".to_string(), format!("{unseen:.0}")]);
    t.row(["Ground truth".to_string(), truth.to_string()]);

    let text = format!(
        "Figure 1 — two-source capture-recapture illustrated\n\
         (IPING as Source 1, WEB as Source 2; last window)\n\n{}\n\
         The two sources are positively correlated through host\n\
         heterogeneity, so the two-source estimate undershoots the truth —\n\
         the motivation for the multi-source log-linear models (3.2.2).\n",
        t.render()
    );
    let json = json!({
        "m": m, "c": c, "r": r,
        "lp_estimate": lp.n_hat,
        "unseen": unseen,
        "truth": truth,
    });
    (text, json)
}
