//! Figure 10: long-term growth — allocated and routed addresses (context
//! series) against pingable, observed and estimated used addresses.

use crate::context::ReproContext;
use ghosts_analysis::histdata::{ALLOCATED_G, PING_HISTORY_G, ROUTED_G};
use ghosts_analysis::report::TextTable;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let mut t = TextTable::new([
        "Year",
        "Allocated [G]",
        "Routed [G]",
        "Ping [G]",
        "Observed [G]",
        "Estimated [G]",
    ]);
    let mut json_rows = Vec::new();

    // History 2003–2010: embedded context series (USC/LANDER ping).
    for &(year, ping) in &PING_HISTORY_G {
        if year >= 2011 {
            continue;
        }
        let alloc = ALLOCATED_G
            .iter()
            .find(|(y, _)| *y == year)
            .map(|(_, v)| *v);
        let routed = ROUTED_G.iter().find(|(y, _)| *y == year).map(|(_, v)| *v);
        t.row([
            year.to_string(),
            alloc.map_or("-".into(), |v| format!("{v:.2}")),
            routed.map_or("-".into(), |v| format!("{v:.2}")),
            format!("{ping:.3}"),
            "-".to_string(),
            "-".to_string(),
        ]);
        json_rows.push(json!({
            "year": year, "allocated_g": alloc, "routed_g": routed,
            "ping_g": ping, "observed_g": null, "estimated_g": null,
        }));
    }

    // Study era: the simulator's windows, scaled to full-scale billions.
    for i in 0..ctx.windows.len() {
        let data = ctx.filtered_window(i);
        let est = ctx.addr_estimate(i);
        let ping = data.source("IPING").map(|d| d.addrs.len()).unwrap_or(0);
        let year = f64::from(ctx.windows[i].end().year())
            + f64::from(ctx.windows[i].end().quarter_of_year()) / 4.0;
        let to_g = |v: f64| ctx.full_scale(v) / 1e9;
        let (routed_now, _) = ctx.scenario.gt.routed_counts_at(ctx.windows[i].end());
        t.row([
            format!("{year:.2}"),
            "-".to_string(),
            format!("{:.2}", to_g(routed_now as f64)),
            format!("{:.3}", to_g(ping as f64)),
            format!("{:.3}", to_g(est.observed as f64)),
            format!("{:.3}", to_g(est.total)),
        ]);
        json_rows.push(json!({
            "year": year,
            "allocated_g": null,
            "routed_g": to_g(routed_now as f64),
            "ping_g": to_g(ping as f64),
            "observed_g": to_g(est.observed as f64),
            "estimated_g": to_g(est.total),
        }));
    }

    let text = format!(
        "Figure 10 — long-term growth: allocated/routed (embedded context\n\
         series, 2003-2014) vs pingable/observed/estimated used addresses\n\
         (simulated study windows, scaled x{:.0} to full-scale billions)\n\n{}\n\
         Shape targets: allocation boom 2004-2011 then slowdown; the\n\
         estimated-used line grows much faster than the pingable line,\n\
         at a rate similar to the pre-slowdown allocation rate.\n",
        ctx.denom,
        t.render(),
    );
    (text, json!({ "rows": json_rows }))
}
