//! Figure 11 and §6.9: ITU Internet-user growth, and the consistency
//! check between user-driven address-growth bounds and the CR estimate.

use crate::context::ReproContext;
use ghosts_analysis::growth::Series;
use ghosts_analysis::report::TextTable;
use ghosts_analysis::users::{paper_bounds, ITU_USERS_M};
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let mut t = TextTable::new(["Year", "Internet users [M]"]);
    for &(year, users) in &ITU_USERS_M {
        t.row([year.to_string(), format!("{users:.0}")]);
    }

    // Measured CR address growth, scaled to full-scale for comparison.
    let mut estimates = Vec::new();
    for i in 0..ctx.windows.len() {
        estimates.push(ctx.addr_estimate(i).total);
    }
    let series = Series::new("Estimated", &ctx.windows, &estimates);
    let growth_full = ctx.full_scale(series.yearly_growth_abs());
    let bounds = paper_bounds();
    let consistent = (bounds.lower..=bounds.upper).contains(&growth_full);

    let text = format!(
        "Figure 11 — Internet users (ITU) and the 6.9 consistency check\n\n{}\n\
         User growth 2007-2012       : {:.0} M/year\n\
         Implied address growth range: {:.0} - {:.0} M/year\n\
         (household size 2-5, employment 65%, 2-200 workers per address)\n\n\
         Measured CR address growth  : {:.1} M/year (full-scale equivalent)\n\
         Consistent with user growth : {}\n\
         (paper: 170 M/year, inside its 50-205 M/year band)\n",
        t.render(),
        bounds.user_growth / 1e6,
        bounds.lower / 1e6,
        bounds.upper / 1e6,
        growth_full / 1e6,
        if consistent { "YES" } else { "NO" },
    );
    let json = json!({
        "itu_users_m": ITU_USERS_M.iter().map(|(y, v)| json!([y, v])).collect::<Vec<_>>(),
        "user_growth_per_year": bounds.user_growth,
        "address_growth_bounds": [bounds.lower, bounds.upper],
        "measured_growth_full_scale": growth_full,
        "consistent": consistent,
    });
    (text, json)
}
