//! Figure 12: number of addresses in observed and estimated unused
//! prefixes, by prefix size (§7.2).
//!
//! "Observed" is the free-block census of everything seen by the
//! non-NetFlow sources; "estimated" plays the CR ghosts forward through
//! the merge-ratio model and recomputes the free space. Also reports the
//! §7.2 cross-check between the merge model's ghost /24-equivalents and
//! the independent LLM /24 estimate.

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_analysis::unused::{
    census_addrs, distribute_ghosts, estimate_ratios, ghost_subnet_equivalents, predicted_census,
    CensusDepth,
};
use ghosts_net::AddrSet;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let last = ctx.windows.len() - 1;
    let data = ctx.filtered_window(last);
    let universe = ctx.scenario.gt.routed.prefixes();

    // §7.1's four merge experiments: ∆ ∈ {IPING, GAME, WEB, WIKI}, S = the
    // union of the remaining datasets (SWIN/CALT always excluded).
    let union_without = |exclude: &str| {
        let mut u = AddrSet::new();
        for d in &data.sources {
            if d.name != exclude && d.name != "SWIN" && d.name != "CALT" {
                u.union_with(&d.addrs);
            }
        }
        u
    };
    let mut experiments = Vec::new();
    for held in ["IPING", "GAME", "WEB", "WIKI"] {
        let s = union_without(held);
        let before = census_addrs(&universe, &s);
        let mut merged = s;
        merged.union_with(&data.source(held).expect("source online").addrs);
        let after = census_addrs(&universe, &merged);
        experiments.push((before, after));
        eprintln!("fig12: merge {held} done");
    }
    let ratios = estimate_ratios(&experiments, CensusDepth::Addresses);

    // Observed census and ghost placement.
    let all = union_without("\0none\0");
    let x0 = census_addrs(&universe, &all);
    let ghosts = ctx.addr_estimate(last).unseen;
    let n = distribute_ghosts(&x0, &ratios, ghosts, CensusDepth::Addresses);
    let predicted = predicted_census(&x0, &n);

    let mut t = TextTable::new([
        "Prefix size",
        "Observed free blocks",
        "Obs addrs",
        "Est free blocks",
        "Est addrs",
    ]);
    let mut json_rows = Vec::new();
    for len in 8..=32usize {
        let obs_addrs = x0[len] as f64 * (1u64 << (32 - len)) as f64;
        let est_addrs = predicted[len] * (1u64 << (32 - len)) as f64;
        if x0[len] == 0 && predicted[len] < 0.5 {
            continue;
        }
        t.row([
            format!("/{len}"),
            x0[len].to_string(),
            format!("{obs_addrs:.0}"),
            format!("{:.0}", predicted[len]),
            format!("{est_addrs:.0}"),
        ]);
        json_rows.push(json!({
            "len": len,
            "observed_blocks": x0[len],
            "observed_addresses": obs_addrs,
            "estimated_blocks": predicted[len],
            "estimated_addresses": est_addrs,
        }));
    }

    // §7.2's model cross-check.
    let merge_ghost24 = ghost_subnet_equivalents(&n);
    let llm_ghost24 = ctx.subnet_estimate(last).unseen;

    // §7.2.1: FIB pressure if every vacant /8-/24 were routed.
    let fib = ghosts_analysis::project_fib(ctx.scenario.gt.routed.prefix_count() as u64, &x0);

    let text = format!(
        "Figure 12 — addresses in observed and estimated unused prefixes\n\
         by prefix size (routed universe, window ending {}; ghosts\n\
         placed: {:.0})\n\n{}\n\
         Model cross-check (7.2): ghost /8-/24 equivalents from the merge\n\
         model = {:.0} /24s; independent LLM ghost /24 estimate = {:.0}.\n\
         The paper finds 0.3 M vs 0.26-0.36 M at full scale — agreement\n\
         within a small factor validates both models.\n\n\
         FIB check (7.2.1): {} routes today + {} if every vacant /8-/24\n\
         were announced = {} — full-scale equivalent {:.2} M, against the\n\
         2 M (2007) and 10 M (feasible) capacities the paper cites.\n",
        ctx.windows[last].end(),
        ghosts,
        t.render(),
        merge_ghost24,
        llm_ghost24,
        fib.current_routes,
        fib.new_routes,
        fib.total_routes,
        ctx.full_scale(fib.total_routes as f64) / 1e6,
    );
    let json = json!({
        "rows": json_rows,
        "ghosts_placed": ghosts,
        "merge_model_ghost_24s": merge_ghost24,
        "llm_ghost_24s": llm_ghost24,
        "fib": {
            "current_routes": fib.current_routes,
            "new_routes": fib.new_routes,
            "total_routes": fib.total_routes,
            "full_scale_total": ctx.full_scale(fib.total_routes as f64),
        },
        "f_ratios": ratios.f.to_vec(),
    });
    (text, json)
}
