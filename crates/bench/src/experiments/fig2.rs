//! Figure 2: observed and estimated /24 subnets with and without spoof
//! filtering, compared to dropping SWIN and CALT entirely.
//!
//! The paper's punchline: estimates from filtered SWIN/CALT track the
//! no-SWIN/CALT estimates, while unfiltered data blow the estimate up
//! (beyond the possible maximum at the March 2014 CALT spike).

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_core::{estimate_table, ContingencyTable};
use ghosts_net::SubnetSet;
use ghosts_pipeline::dataset::WindowData;
use serde_json::json;

fn subnet_estimate(ctx: &ReproContext, data: &WindowData) -> (u64, f64) {
    let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let table = ContingencyTable::from_subnet_sets(&refs);
    let mut union = SubnetSet::new();
    for s in &subnet_sets {
        union.union_with(s);
    }
    let est = estimate_table(
        &table,
        Some(ctx.scenario.gt.routed.subnet24_count()),
        &ctx.cr_config(),
    )
    .expect("window estimable");
    (union.len(), est.total)
}

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let mut t = TextTable::new([
        "Window",
        "Unfilt obs",
        "Unfilt est",
        "Filt obs",
        "Filt est",
        "NoSC obs",
        "NoSC est",
    ]);
    let mut json_rows = Vec::new();
    for i in 0..ctx.windows.len() {
        let raw = ctx.raw_window(i);
        let filtered = ctx.filtered_window(i);
        let mut no_sc = (*filtered).clone();
        no_sc
            .sources
            .retain(|s| s.name != "SWIN" && s.name != "CALT");

        let (obs_raw, est_raw) = subnet_estimate(ctx, &raw);
        let (obs_f, est_f) = subnet_estimate(ctx, &filtered);
        let (obs_n, est_n) = subnet_estimate(ctx, &no_sc);
        t.row([
            ctx.windows[i].label(),
            obs_raw.to_string(),
            format!("{est_raw:.0}"),
            obs_f.to_string(),
            format!("{est_f:.0}"),
            obs_n.to_string(),
            format!("{est_n:.0}"),
        ]);
        json_rows.push(json!({
            "window": ctx.windows[i].label(),
            "unfiltered": { "observed": obs_raw, "estimated": est_raw },
            "filtered": { "observed": obs_f, "estimated": est_f },
            "no_swin_calt": { "observed": obs_n, "estimated": est_n },
        }));
    }

    // Shape checks reported inline: filtered ≈ no-SWINCALT; unfiltered
    // inflated, most extremely at the Mar 2014 spike (window 10 of 11).
    let last = json_rows.last().expect("eleven windows");
    let spike = &json_rows[9];
    let text = format!(
        "Figure 2 — /24 subnets, spoof filtering on/off vs no SWIN/CALT\n\
         (subnet counts at scale 1/{:.0}; routed /24 maximum = {})\n\n{}\n\
         Shape checks: at the Mar 2014 CALT spoof spike the unfiltered\n\
         estimate is {:.2}x the filtered one; at the last window the\n\
         filtered and no-SWIN/CALT estimates differ by {:.1}%.\n",
        ctx.denom,
        ctx.scenario.gt.routed.subnet24_count(),
        t.render(),
        spike["unfiltered"]["estimated"].as_f64().unwrap_or(0.0)
            / spike["filtered"]["estimated"].as_f64().unwrap_or(1.0),
        100.0
            * (last["filtered"]["estimated"].as_f64().unwrap_or(0.0)
                - last["no_swin_calt"]["estimated"].as_f64().unwrap_or(0.0))
            .abs()
            / last["no_swin_calt"]["estimated"].as_f64().unwrap_or(1.0),
    );
    (text, json!({ "windows": json_rows }))
}
