//! Figure 3: per-source cross-validation for window 9 — addresses
//! observed by ping, by any source, and the LLM estimate ranges, all
//! normalised on each source's true size.

use crate::context::ReproContext;
use ghosts_analysis::crossval::{cross_validate_window, Granularity};
use ghosts_analysis::report::TextTable;
use ghosts_core::CrConfig;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let window_idx = 8; // the paper's "time window 9"
    let data = ctx.filtered_window(window_idx);
    let cfg = CrConfig {
        min_stratum_observed: 0,
        ..ctx.cr_config()
    };
    let report = cross_validate_window(&data, Granularity::Addresses, &cfg, true);
    assert!(
        report.is_complete(),
        "fig3 window must estimate every source (skipped {}, failed {})",
        report.skipped.len(),
        report.failed.len()
    );
    let results = report.results;

    let mut t = TextTable::new([
        "Source",
        "Truth",
        "Obs ping",
        "Obs all",
        "Est lo",
        "Est point",
        "Est hi",
    ]);
    let mut json_rows = Vec::new();
    let mut covered = 0usize;
    for r in &results {
        let range = r.range.expect("ranges requested");
        let tr = r.truth as f64;
        let ping_n = r.observed_by_ping.map(|p| p as f64 / tr);
        if (range.lower / tr..=range.upper / tr).contains(&1.0) {
            covered += 1;
        }
        t.row([
            r.source.clone(),
            "1.000".to_string(),
            ping_n.map_or("-".into(), |p| format!("{p:.3}")),
            format!("{:.3}", r.observed_by_others as f64 / tr),
            format!("{:.3}", range.lower / tr),
            format!("{:.3}", r.estimate / tr),
            format!("{:.3}", range.upper / tr),
        ]);
        json_rows.push(json!({
            "source": r.source,
            "truth": r.truth,
            "observed_ping": r.observed_by_ping,
            "observed_all": r.observed_by_others,
            "estimate": r.estimate,
            "range": [range.lower, range.upper],
        }));
    }

    let text = format!(
        "Figure 3 — per-source CV for the window ending {} (addresses,\n\
         normalised on each source's true size; ranges at alpha = 1e-7)\n\n{}\n\
         Ranges covering 1.0: {covered}/{} sources. The paper reports the\n\
         same picture: most sources good, a couple slightly off, and all\n\
         estimates a substantial improvement over the observed counts.\n",
        ctx.windows[window_idx].end(),
        t.render(),
        results.len(),
    );
    (
        text,
        json!({ "window": ctx.windows[window_idx].label(), "sources": json_rows }),
    )
}
