//! Figures 4 and 5: absolute and relative growth of estimated, observed
//! and routed /24 subnets (Fig 4) and IPv4 addresses (Fig 5).

use crate::context::ReproContext;
use ghosts_analysis::growth::Series;
use ghosts_analysis::report::TextTable;
use serde_json::json;

fn run_inner(ctx: &ReproContext, subnets: bool) -> (String, serde_json::Value) {
    let mut routed = Vec::new();
    let mut observed = Vec::new();
    let mut estimated = Vec::new();
    let mut truth = Vec::new();
    for i in 0..ctx.windows.len() {
        let (routed_a, routed_s) = ctx.scenario.gt.routed_counts_at(ctx.windows[i].end());
        routed.push(if subnets {
            routed_s as f64
        } else {
            routed_a as f64
        });
        let est = if subnets {
            ctx.subnet_estimate(i)
        } else {
            ctx.addr_estimate(i)
        };
        observed.push(est.observed as f64);
        estimated.push(est.total);
        truth.push(if subnets {
            ctx.scenario.truth_subnets(ctx.windows[i]).len() as f64
        } else {
            ctx.scenario.truth_addrs(ctx.windows[i]).len() as f64
        });
    }
    let obs_series = Series::new("Observed", &ctx.windows, &observed);
    let est_series = Series::new("Estimated", &ctx.windows, &estimated);
    let smoothed = est_series.smoothed(1);

    let routed_series = Series::new("Routed", &ctx.windows, &routed);
    let mut t = TextTable::new([
        "Window",
        "Routed",
        "Observed",
        "Estimated",
        "Est smoothed",
        "Truth",
        "Obs norm",
        "Est norm",
    ]);
    let obs_norm = obs_series.normalised();
    let est_norm = est_series.normalised();
    let mut json_rows = Vec::new();
    for i in 0..ctx.windows.len() {
        t.row([
            ctx.windows[i].label(),
            format!("{:.0}", routed[i]),
            format!("{:.0}", observed[i]),
            format!("{:.0}", estimated[i]),
            format!("{:.0}", smoothed[i]),
            format!("{:.0}", truth[i]),
            format!("{:.3}", obs_norm[i]),
            format!("{:.3}", est_norm[i]),
        ]);
        json_rows.push(json!({
            "window": ctx.windows[i].label(),
            "routed": routed[i],
            "observed": observed[i],
            "estimated": estimated[i],
            "estimated_smoothed": smoothed[i],
            "truth": truth[i],
        }));
    }

    let growth = est_series.yearly_growth_abs();
    let what = if subnets {
        "/24 subnets"
    } else {
        "IPv4 addresses"
    };
    let fig = if subnets { "Figure 4" } else { "Figure 5" };
    let paper_growth = if subnets { 450_000.0 } else { 170_000_000.0 };
    let text = format!(
        "{fig} — growth of estimated, observed and routed {what}\n\
         (scale 1/{:.0}; multiply by {:.0} for full-scale equivalents)\n\n{}\n\
         Estimated yearly growth: {:.0} per year\n\
         Full-scale equivalent  : {:.1} M per year (paper: {:.2} M)\n\
         Estimated/observed at the last window: {:.2}x (paper: {})\n\
         Routed growth over the study: {:.1}% (paper: ~7% for /24s)\n",
        ctx.denom,
        ctx.denom,
        t.render(),
        growth,
        ctx.full_scale(growth) / 1e6,
        paper_growth / 1e6,
        estimated.last().unwrap() / observed.last().unwrap(),
        if subnets { "1.05-1.10x" } else { "1.5-1.6x" },
        100.0 * (routed_series.normalised().last().unwrap() - 1.0),
    );
    let json = json!({
        "windows": json_rows,
        "yearly_growth": growth,
        "yearly_growth_full_scale": ctx.full_scale(growth),
        "paper_yearly_growth": paper_growth,
    });
    (text, json)
}

/// Figure 4 (/24 subnets).
pub fn run_fig4(ctx: &ReproContext) -> (String, serde_json::Value) {
    run_inner(ctx, true)
}

/// Figure 5 (IPv4 addresses).
pub fn run_fig5(ctx: &ReproContext) -> (String, serde_json::Value) {
    run_inner(ctx, false)
}
