//! Figure 6: absolute and relative growth of estimated IPv4 addresses per
//! RIR.

use crate::context::ReproContext;
use crate::strata::{build, estimate, Strat};
use ghosts_analysis::growth::Series;
use ghosts_analysis::report::TextTable;
use ghosts_net::Rir;
use serde_json::json;

/// The windows used for the per-stratum series (every other window keeps
/// the single-core runtime in check; trends are stable under this).
pub fn series_windows(ctx: &ReproContext) -> Vec<usize> {
    (0..ctx.windows.len()).step_by(2).collect()
}

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let info = build(ctx, Strat::Rir);
    let picks = series_windows(ctx);
    // per_rir[r][k] = estimate of RIR r at picked window k.
    let mut per_rir: Vec<Vec<f64>> = vec![Vec::new(); Rir::ALL.len()];
    for &i in &picks {
        let data = ctx.filtered_window(i);
        let strat = estimate(ctx, &data, &info, false);
        for (r, est) in strat.strata.iter().enumerate() {
            per_rir[r].push(est.as_ref().map(|e| e.total).unwrap_or(0.0));
        }
        eprintln!("fig6: window {} done", ctx.windows[i].label());
    }
    let windows: Vec<_> = picks.iter().map(|&i| ctx.windows[i]).collect();

    let mut t = TextTable::new({
        let mut h = vec!["RIR".to_string()];
        h.extend(windows.iter().map(|w| w.label()));
        h.push("abs/yr".into());
        h.push("norm last".into());
        h
    });
    let mut json_rows = Vec::new();
    for (r, vals) in per_rir.iter().enumerate() {
        let series = Series::new(Rir::ALL[r].name(), &windows, vals);
        let norm = series.normalised();
        let mut row = vec![Rir::ALL[r].name().to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.0}")));
        row.push(format!("{:.0}", series.yearly_growth_abs()));
        row.push(format!("{:.2}", norm.last().copied().unwrap_or(f64::NAN)));
        t.row(row);
        json_rows.push(json!({
            "rir": Rir::ALL[r].name(),
            "estimates": vals,
            "yearly_growth": series.yearly_growth_abs(),
            "normalised_last": norm.last(),
        }));
    }

    let text = format!(
        "Figure 6 — estimated used IPv4 addresses per RIR over time\n\
         (windows {:?}; counts at scale 1/{:.0})\n\n{}\n\
         Shape targets: APNIC largest, then RIPE/ARIN; AfriNIC and LACNIC\n\
         fastest in relative growth (right-hand column).\n",
        windows.iter().map(|w| w.label()).collect::<Vec<_>>(),
        ctx.denom,
        t.render(),
    );
    (text, json!({ "rirs": json_rows }))
}
