//! Figures 7, 8 and 9: average yearly growth of observed and estimated
//! IPv4 addresses by allocation prefix size, allocation age and country.

use crate::context::ReproContext;
use crate::experiments::fig6::series_windows;
use crate::strata::{build, estimate, Strat, StratInfo};
use ghosts_analysis::growth::{stratum_growth, Series, StratumGrowth};
use ghosts_analysis::report::TextTable;
use serde_json::json;

/// Per-stratum observed and estimated series over the picked windows.
fn growth_by(ctx: &ReproContext, info: &StratInfo<'_>) -> Vec<StratumGrowth> {
    let picks = series_windows(ctx);
    let n = info.labels.len();
    let mut observed: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut estimated: Vec<Vec<f64>> = vec![Vec::new(); n];
    for &i in &picks {
        let data = ctx.filtered_window(i);
        let strat = estimate(ctx, &data, info, false);
        for s in 0..n {
            match &strat.strata[s] {
                Some(e) => {
                    observed[s].push(e.observed as f64);
                    estimated[s].push(e.total);
                }
                None => {
                    // Excluded stratum: count observed only.
                    observed[s].push(0.0);
                    estimated[s].push(0.0);
                }
            }
        }
    }
    let windows: Vec<_> = picks.iter().map(|&i| ctx.windows[i]).collect();
    (0..n)
        .filter(|&s| estimated[s].iter().sum::<f64>() > 0.0)
        .map(|s| {
            stratum_growth(
                info.labels[s].clone(),
                &Series::new("obs", &windows, &observed[s]),
                &Series::new("est", &windows, &estimated[s]),
            )
        })
        .collect()
}

fn render(
    fig: &str,
    what: &str,
    shape_note: &str,
    ctx: &ReproContext,
    mut rows: Vec<StratumGrowth>,
    sort_by_estimated: bool,
) -> (String, serde_json::Value) {
    if sort_by_estimated {
        rows.sort_by(|a, b| {
            b.estimated_abs
                .partial_cmp(&a.estimated_abs)
                .expect("finite growth values")
        });
    }
    let mut t = TextTable::new([
        "Stratum",
        "Obs abs/yr",
        "Est abs/yr",
        "Obs rel %/yr",
        "Est rel %/yr",
    ]);
    let mut json_rows = Vec::new();
    for g in &rows {
        t.row([
            g.label.clone(),
            format!("{:.0}", g.observed_abs),
            format!("{:.0}", g.estimated_abs),
            format!("{:.1}", g.observed_rel),
            format!("{:.1}", g.estimated_rel),
        ]);
        json_rows.push(json!({
            "label": g.label,
            "observed_abs": g.observed_abs,
            "estimated_abs": g.estimated_abs,
            "observed_rel": g.observed_rel,
            "estimated_rel": g.estimated_rel,
        }));
    }
    let text = format!(
        "{fig} — yearly growth of observed and estimated IPv4 addresses\n\
         by {what} (scale 1/{:.0}; strata with no estimable mass omitted)\n\n{}\n{shape_note}\n",
        ctx.denom,
        t.render(),
    );
    (text, json!({ "strata": json_rows }))
}

/// Figure 7 (by allocation prefix size).
pub fn run_fig7(ctx: &ReproContext) -> (String, serde_json::Value) {
    let info = build(ctx, Strat::PrefixSize);
    let rows = growth_by(ctx, &info);
    render(
        "Figure 7",
        "allocation prefix size",
        "Shape targets: absolute growth concentrated in mid-size prefixes;\n\
         recent small allocations (/22, /24) strongest in relative growth\n\
         (the mini-Internet's sizes sit ~8 bits above the paper's /8-/16).",
        ctx,
        rows,
        false,
    )
}

/// Figure 8 (by allocation age).
pub fn run_fig8(ctx: &ReproContext) -> (String, serde_json::Value) {
    let info = build(ctx, Strat::AllocAge);
    let rows = growth_by(ctx, &info);
    render(
        "Figure 8",
        "allocation year",
        "Shape targets: allocations made since 2005 grow most in absolute\n\
         terms, with a positive correlation between recency and growth;\n\
         the newest (2011+) strata lead in relative growth.",
        ctx,
        rows,
        false,
    )
}

/// Figure 9 (by country, sorted by estimated growth).
pub fn run_fig9(ctx: &ReproContext) -> (String, serde_json::Value) {
    let info = build(ctx, Strat::Country);
    let rows = growth_by(ctx, &info);
    render(
        "Figure 9",
        "country (sorted by estimated absolute growth)",
        "Shape targets: US and CN lead absolute growth (largest\n\
         allocations), followed by BR and KR; RO and several Asian and\n\
         South American countries lead relative growth.",
        ctx,
        rows,
        true,
    )
}
