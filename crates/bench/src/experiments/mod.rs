//! One module per paper artifact. Each exposes
//! `run(ctx) -> (text, json)`; the `repro` binary dispatches on the id.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4_5;
pub mod fig6;
pub mod fig7_8_9;
pub mod reliability;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use crate::ReproContext;

/// All experiment ids in run order (figures interleaved with the tables
/// they support, so caches warm in the cheapest order).
pub const ALL_IDS_FULL: [&str; 17] = [
    "fig1", "table2", "fig2", "table3", "fig3", "table4", "fig4", "fig5", "table5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "fig12", "table6",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates ids first).
pub fn run(id: &str, ctx: &ReproContext) -> (String, serde_json::Value) {
    match id {
        "fig1" => fig1::run(ctx),
        "table2" => table2::run(ctx),
        "fig2" => fig2::run(ctx),
        "table3" => table3::run(ctx),
        "fig3" => fig3::run(ctx),
        "table4" => table4::run(ctx),
        "fig4" => fig4_5::run_fig4(ctx),
        "fig5" => fig4_5::run_fig5(ctx),
        "table5" => table5::run(ctx),
        "fig6" => fig6::run(ctx),
        "fig7" => fig7_8_9::run_fig7(ctx),
        "fig8" => fig7_8_9::run_fig8(ctx),
        "fig9" => fig7_8_9::run_fig9(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "fig12" => fig12::run(ctx),
        "table6" => table6::run(ctx),
        // Not a paper artifact (hence absent from ALL_IDS_FULL): the
        // reliability engine's bootstrap / coverage / batched-CV report.
        "reliability" => reliability::run(ctx),
        other => panic!("unknown experiment id {other:?}"),
    }
}
