//! Reliability report: parametric bootstrap of a window estimate, CI
//! coverage curves over distorted truth regimes, and the batched
//! cross-validation error table. Not a paper artifact — this is the
//! calibration evidence the paper's §5 validation stops short of.

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_core::ContingencyTable;
use ghosts_reliability::{
    bootstrap_table, coverage_curves, cross_validate_batch, BootstrapConfig, CiMethod,
    CoverageConfig, Granularity, Regime, TruthModel,
};
use serde_json::json;

/// Budget knobs scaled by the scenario denominator: the default 1/1024
/// scale gets the full replicate counts; the CI smoke at 1/16384 runs the
/// same code an order of magnitude cheaper.
fn budget(ctx: &ReproContext) -> (u64, u64) {
    if ctx.denom >= 4096.0 {
        (40, 24) // (bootstrap replicates, coverage repetitions)
    } else {
        (150, 48)
    }
}

/// The distortion regimes: clean, light/heavy spoofing, NAT sharing and a
/// one-source outage — the same axes as the fault-injection ladder.
fn regimes() -> Vec<Regime> {
    vec![
        Regime::clean("clean"),
        Regime {
            name: "spoof-light".into(),
            spoof_rate: 0.005,
            nat_density: 0.0,
            dropped_sources: 0,
        },
        Regime {
            name: "spoof-heavy".into(),
            spoof_rate: 0.02,
            nat_density: 0.0,
            dropped_sources: 0,
        },
        Regime {
            name: "nat-10pct".into(),
            spoof_rate: 0.0,
            nat_density: 0.10,
            dropped_sources: 0,
        },
        Regime {
            name: "drop-1-source".into(),
            spoof_rate: 0.0,
            nat_density: 0.0,
            dropped_sources: 1,
        },
    ]
}

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let (replicates, repetitions) = budget(ctx);
    let mut cfg = ctx.cr_config();
    cfg.min_stratum_observed = 0;
    cfg.obs = ctx.recorder.root("reliability");

    // 1. Parametric bootstrap of the paper's window 9 address estimate.
    let window_idx = 8;
    let data = ctx.filtered_window(window_idx);
    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let limit = Some(ctx.scenario.gt.routed.address_count());
    let boot = bootstrap_table(
        &table,
        limit,
        &cfg,
        &BootstrapConfig {
            replicates,
            seed: ctx.scenario.gt.cfg.seed,
            alpha: 0.05,
            parallelism: ctx.parallelism,
        },
    )
    .expect("window 9 must bootstrap");
    eprintln!("reliability: bootstrap done ({replicates} replicates)");

    // 2. Coverage curves over the distortion regimes.
    let truth = TruthModel {
        population: 5_000,
        capture_probs: vec![0.45, 0.35, 0.30, 0.20],
    };
    let points = coverage_curves(
        &truth,
        &regimes(),
        &cfg,
        &CoverageConfig {
            nominal: 0.95,
            repetitions,
            seed: ctx.scenario.gt.cfg.seed,
            method: CiMethod::Profile,
            parallelism: ctx.parallelism,
        },
    );
    eprintln!("reliability: coverage curves done ({repetitions} reps/regime)");

    // 3. Batched CV over two windows at both granularities.
    let cv_windows = [ctx.filtered_window(6), ctx.filtered_window(8)];
    let batch = cross_validate_batch(
        &cv_windows,
        &[Granularity::Addresses, Granularity::Subnets],
        &cfg,
        false,
    );
    let (cv_ok, cv_skipped, cv_failed) = batch.totals();
    eprintln!("reliability: batched CV done ({cv_ok} cells ok)");

    // Render.
    let se = boot.se.unwrap_or(f64::NAN);
    let (plo, phi) = boot.percentile.unwrap_or((f64::NAN, f64::NAN));
    let mut text = format!(
        "Reliability — bootstrap, coverage and batched CV (mini-Internet counts)\n\n\
         Parametric bootstrap, window 9 addresses (B = {}, alpha = 0.05):\n\
         \x20 point {:.0}, SE {:.0}, percentile 95% [{:.0}, {:.0}]\n\
         \x20 completed {}/{}, selection agreement {:.0}% (model {})\n\n",
        replicates,
        boot.point,
        se,
        plo,
        phi,
        boot.completed,
        boot.requested,
        100.0 * boot.selection_agreement(),
        boot.model,
    );

    let mut t = TextTable::new([
        "Regime",
        "Nominal",
        "Empirical",
        "Done",
        "Mean truth",
        "Mean est",
    ]);
    for p in &points {
        t.row([
            p.regime.clone(),
            format!("{:.2}", p.nominal),
            format!("{:.3}", p.empirical),
            format!("{}/{}", p.completed, p.repetitions),
            format!("{:.0}", p.mean_truth),
            format!("{:.0}", p.mean_estimate),
        ]);
    }
    text.push_str(&format!(
        "CI coverage per regime (profile intervals, {} synthetic reps each):\n{}\n",
        repetitions,
        t.render()
    ));

    let mut cv = TextTable::new(["Window", "Granularity", "RMSE", "MAE", "Cases"]);
    for (window, granularity, e) in batch.error_table() {
        cv.row([
            window.label(),
            granularity.label().to_string(),
            format!("{:.0}", e.rmse),
            format!("{:.0}", e.mae),
            format!("{}", e.cases),
        ]);
    }
    text.push_str(&format!(
        "\nBatched leave-one-source-out CV ({cv_ok} estimated, {cv_skipped} skipped, \
         {cv_failed} failed):\n{}\n",
        cv.render()
    ));

    let selection: Vec<_> = boot
        .selection_counts
        .iter()
        .map(|(model, n)| json!({ "model": model.clone(), "count": *n }))
        .collect();
    let json = json!({
        "bootstrap": {
            "point": boot.point,
            "observed": boot.observed,
            "model": boot.model.clone(),
            "alpha": boot.alpha,
            "requested": boot.requested,
            "completed": boot.completed,
            "se": boot.se,
            "percentile": boot.percentile.map(|(lo, hi)| vec![lo, hi]),
            "basic": boot.basic.map(|(lo, hi)| vec![lo, hi]),
            "selection_agreement": boot.selection_agreement(),
            "selection_counts": selection,
        },
        "coverage": points.iter().map(|p| json!({
            "regime": p.regime,
            "nominal": p.nominal,
            "empirical": p.empirical,
            "repetitions": p.repetitions,
            "completed": p.completed,
            "failed": p.failed,
            "mean_truth": p.mean_truth,
            "mean_estimate": p.mean_estimate,
        })).collect::<Vec<_>>(),
        "crossval": {
            "ok": cv_ok,
            "skipped": cv_skipped,
            "failed": cv_failed,
            "cells": batch.error_table().iter().map(|(w, g, e)| json!({
                "window": w.label(),
                "granularity": g.label(),
                "rmse": e.rmse,
                "mae": e.mae,
                "cases": e.cases,
            })).collect::<Vec<_>>(),
        },
    });
    (text, json)
}
