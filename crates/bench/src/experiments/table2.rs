//! Table 2: data sources and observed unique IPv4 addresses and /24
//! subnets per year (SWIN and CALT after spoofed-IP filtering).

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_net::AddrSet;
use ghosts_pipeline::spoof_filter::{filter_spoofed, SpoofFilterConfig};
use ghosts_pipeline::time::Quarter;
use ghosts_sim::spoof::spoofed_set;
use ghosts_stats::rng::component_rng;
use serde_json::json;
use std::collections::BTreeMap;

/// Source display order of the paper's Table 2.
const ORDER: [&str; 9] = [
    "WIKI", "SPAM", "MLAB", "WEB", "GAME", "SWIN", "CALT", "IPING", "TPING",
];

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    // Per-source per-year unions over quarters, with spoofs injected and
    // then filtered for the NetFlow sources (as the paper's table states).
    let mut per_year: BTreeMap<(String, u16), AddrSet> = BTreeMap::new();
    let mut clean_per_year: BTreeMap<u16, AddrSet> = BTreeMap::new();
    for q in Quarter::all() {
        let obs = ctx.scenario.quarter_observations(q);
        for (name, set) in obs {
            let mut set = set;
            if name == "SWIN" || name == "CALT" {
                set.union_with(&spoofed_set(&ctx.scenario.gt, name, q, 0.05));
            } else {
                clean_per_year.entry(q.year()).or_default().union_with(&set);
            }
            per_year
                .entry((name.to_string(), q.year()))
                .or_default()
                .union_with(&set);
        }
    }
    // Spoof-filter the NetFlow years.
    let fcfg = SpoofFilterConfig::with_universe(ctx.scenario.routed_per_eight());
    for ((name, year), set) in per_year.iter_mut() {
        if name == "SWIN" || name == "CALT" {
            let clean = clean_per_year.get(year).cloned().unwrap_or_default();
            let mut rng = component_rng(ctx.scenario.gt.cfg.seed, &format!("table2-{name}-{year}"));
            let report = filter_spoofed(set, &clean, &fcfg, &mut rng);
            *set = report.filtered;
        }
    }

    let years = [2011u16, 2012, 2013, 2014];
    let mut t = TextTable::new([
        "Dataset",
        "2011 IPs",
        "2011 /24",
        "2012 IPs",
        "2012 /24",
        "2013 IPs",
        "2013 /24",
        "2014H1 IPs",
        "2014H1 /24",
    ]);
    let mut json_rows = Vec::new();
    for name in ORDER {
        let mut cells = vec![name.to_string()];
        let mut jrow = json!({ "source": name });
        for year in years {
            match per_year.get(&(name.to_string(), year)) {
                Some(set) => {
                    let subs = set.to_subnet24().len();
                    cells.push(set.len().to_string());
                    cells.push(subs.to_string());
                    jrow[format!("ips_{year}")] = json!(set.len());
                    jrow[format!("subnets_{year}")] = json!(subs);
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        t.row(cells);
        json_rows.push(jrow);
    }

    let text = format!(
        "Table 2 — observed unique IPv4 addresses and /24 subnets per year\n\
         (simulated sources at scale 1/{:.0}; SWIN/CALT after spoof filtering;\n\
         multiply counts by {:.0} for full-scale equivalents)\n\n{}",
        ctx.denom,
        ctx.denom,
        t.render()
    );
    (
        text,
        json!({ "rows": json_rows, "scale_denominator": ctx.denom }),
    )
}
