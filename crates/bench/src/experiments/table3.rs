//! Table 3: cross-validation errors for different model-selection
//! parameter settings (IC choice × count divisor).

use crate::context::ReproContext;
use ghosts_analysis::crossval::{aggregate_errors, cross_validate_batch, Granularity};
use ghosts_analysis::report::TextTable;
use ghosts_core::{CrConfig, DivisorRule, IcKind, SelectionOptions};
use serde_json::json;

/// The paper's seven settings (§5.1).
fn settings() -> Vec<(&'static str, IcKind, DivisorRule)> {
    vec![
        ("AIC-fixed1", IcKind::Aic, DivisorRule::Fixed(1)),
        ("BIC-fixed1", IcKind::Bic, DivisorRule::Fixed(1)),
        ("AIC-fixed10", IcKind::Aic, DivisorRule::Fixed(10)),
        ("AIC-fixed100", IcKind::Aic, DivisorRule::Fixed(100)),
        ("AIC-fixed1000", IcKind::Aic, DivisorRule::Fixed(1000)),
        (
            "AIC-adaptive1000",
            IcKind::Aic,
            DivisorRule::Adaptive { start: 1000 },
        ),
        (
            "BIC-adaptive1000",
            IcKind::Bic,
            DivisorRule::Adaptive { start: 1000 },
        ),
    ]
}

/// Windows used for the sweep. The paper uses every window except the
/// first; on the single-core reference machine we subsample every other
/// one (the averages are stable across this choice).
fn windows_to_use(ctx: &ReproContext) -> Vec<usize> {
    (1..ctx.windows.len()).step_by(2).collect()
}

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let windows = windows_to_use(ctx);
    let mut t = TextTable::new(["Setting", "IPs RMSE", "IPs MAE", "/24 RMSE", "/24 MAE"]);
    let mut json_rows = Vec::new();
    let mut best: Option<(String, f64)> = None;
    for (name, ic, divisor) in settings() {
        let cfg = CrConfig {
            min_stratum_observed: 0,
            selection: SelectionOptions {
                ic,
                divisor,
                ..SelectionOptions::default()
            },
            profile: ctx.profiler.scoped("estimate"),
            ..CrConfig::paper()
        };
        // All (window × held-out source × granularity) cells of this
        // setting run concurrently through the batched engine.
        let window_data: Vec<_> = windows.iter().map(|&i| ctx.filtered_window(i)).collect();
        let batch = cross_validate_batch(
            &window_data,
            &[Granularity::Addresses, Granularity::Subnets],
            &cfg,
            false,
        );
        let (ok, skipped, failed) = batch.totals();
        assert_eq!(
            failed, 0,
            "table3 cells must not fail (ok={ok}, skipped={skipped})"
        );
        let mut addr_results = Vec::new();
        let mut subnet_results = Vec::new();
        for cell in &batch.cells {
            match cell.granularity {
                Granularity::Addresses => addr_results.extend(cell.report.results.clone()),
                Granularity::Subnets => subnet_results.extend(cell.report.results.clone()),
            }
        }
        let a = aggregate_errors(&addr_results);
        let s = aggregate_errors(&subnet_results);
        t.row([
            name.to_string(),
            format!("{:.0}", a.rmse),
            format!("{:.0}", a.mae),
            format!("{:.0}", s.rmse),
            format!("{:.0}", s.mae),
        ]);
        json_rows.push(json!({
            "setting": name,
            "ips": { "rmse": a.rmse, "mae": a.mae, "cases": a.cases },
            "subnets": { "rmse": s.rmse, "mae": s.mae, "cases": s.cases },
        }));
        let combined = a.mae / a.mae.max(1.0) + s.mae; // ranking heuristic
        if best.as_ref().is_none_or(|(_, b)| combined < *b) {
            best = Some((name.to_string(), combined));
        }
        eprintln!("table3: {name} done");
    }

    let text = format!(
        "Table 3 — cross-validation errors per model-selection setting\n\
         (windows {:?} of 11; {} held-out estimates per cell per\n\
         granularity; errors in raw mini-Internet counts)\n\n{}\n\
         The paper selects BIC-adaptive1000: adaptive scaling is\n\
         competitive on both granularities rather than best on one.\n",
        windows
            .iter()
            .map(|i| ctx.windows[*i].label())
            .collect::<Vec<_>>(),
        windows.len() * 9,
        t.render(),
    );
    (text, json!({ "settings": json_rows }))
}
