//! Table 4: pingable, observed and estimated addresses vs ground truth
//! for the six networks A–F, as percentages of each network's size —
//! including the Poisson vs right-truncated-Poisson comparison.

use crate::context::ReproContext;
use ghosts_analysis::report::TextTable;
use ghosts_core::{estimate_table, ContingencyTable, CrConfig};
use ghosts_net::AddrSet;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    // §5.2 compares against peak usage with the peak "roughly in the
    // middle of the windows" — use a mid-study window.
    let window_idx = 5;
    let data = ctx.filtered_window(window_idx);
    let truth = ctx.scenario.truth_addrs(ctx.windows[window_idx]);

    let mut t = TextTable::new([
        "Network",
        "Ping %",
        "Obs. %",
        "Poisson %",
        "TruncPoisson %",
        "Truth %",
    ]);
    let mut json_rows = Vec::new();
    for n in &ctx.scenario.gt.truth_networks {
        let size = n.prefix.num_addresses() as f64;
        // Restrict every source to the network.
        let restricted: Vec<AddrSet> = data
            .sources
            .iter()
            .map(|d| {
                let mut r = AddrSet::new();
                for a in d.addrs.iter() {
                    if n.prefix.contains(a) {
                        r.insert(a);
                    }
                }
                r
            })
            .collect();
        let ping = data
            .sources
            .iter()
            .position(|d| d.name == "IPING")
            .map(|i| restricted[i].len())
            .unwrap_or(0);
        let refs: Vec<&AddrSet> = restricted.iter().collect();
        let table = ContingencyTable::from_addr_sets(&refs);
        let observed = table.observed_total();
        let net_truth = truth.count_in_prefix(n.prefix) as f64;

        let plain_cfg = CrConfig {
            truncated: false,
            min_stratum_observed: 0,
            ..ctx.cr_config()
        };
        let trunc_cfg = CrConfig {
            min_stratum_observed: 0,
            ..ctx.cr_config()
        };
        let plain = estimate_table(&table, None, &plain_cfg)
            .map(|e| e.total)
            .unwrap_or(f64::NAN);
        let trunc = estimate_table(&table, Some(n.prefix.num_addresses()), &trunc_cfg)
            .map(|e| e.total)
            .unwrap_or(f64::NAN);

        let pct = |v: f64| 100.0 * v / size;
        t.row([
            n.name.to_string(),
            format!("{:.1}", pct(ping as f64)),
            format!("{:.1}", pct(observed as f64)),
            format!("{:.1}({:+.1})", pct(plain), pct(plain - net_truth)),
            format!("{:.1}({:+.1})", pct(trunc), pct(trunc - net_truth)),
            format!("{:.1}", pct(net_truth)),
        ]);
        json_rows.push(json!({
            "network": n.name.to_string(),
            "size": size,
            "ping_pct": pct(ping as f64),
            "observed_pct": pct(observed as f64),
            "poisson_pct": pct(plain),
            "truncated_pct": pct(trunc),
            "truth_pct": pct(net_truth),
            "spec_truth_pct": 100.0 * n.peak_fraction,
        }));
    }

    let text = format!(
        "Table 4 — ground-truth networks A-F: pingable, observed and\n\
         estimated addresses vs truth (percent of network size; window\n\
         ending {}). Network F blocks the prober entirely.\n\n{}\n\
         Shape targets: CR estimates far closer to truth than ping or\n\
         observed counts; the right-truncated Poisson beats the plain\n\
         Poisson on these small, nearly saturated strata (5.2).\n",
        ctx.windows[window_idx].end(),
        t.render(),
    );
    (
        text,
        json!({ "networks": json_rows, "window": ctx.windows[window_idx].label() }),
    )
}
