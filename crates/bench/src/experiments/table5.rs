//! Table 5: observed and estimated used IPv4 addresses and /24 subnets at
//! the end of June 2014, per stratification.

use crate::context::ReproContext;
use crate::strata::{build, estimate, Strat};
use ghosts_analysis::report::TextTable;
use ghosts_core::{estimate_table_with_range, ContingencyTable};
use ghosts_net::SubnetSet;
use serde_json::json;

const STRATS: [Strat; 7] = [
    Strat::None,
    Strat::Rir,
    Strat::Country,
    Strat::AllocAge,
    Strat::PrefixSize,
    Strat::Industry,
    Strat::StaticDynamic,
];

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let last = ctx.windows.len() - 1;
    let data = ctx.filtered_window(last);

    // Ping-only and observed baselines.
    let ping_addrs = data.source("IPING").map(|d| d.addrs.len()).unwrap_or(0);
    let ping_subnets = data.source("IPING").map(|d| d.subnets().len()).unwrap_or(0);
    let observed = data.observed_union();
    let observed_addrs = observed.len();
    let observed_subnets = observed.to_subnet24().len();
    let routed_addrs = ctx.scenario.gt.routed.address_count();
    let routed_subnets = ctx.scenario.gt.routed.subnet24_count();

    // Per-stratification totals.
    let mut addr_totals = Vec::new();
    let mut subnet_totals = Vec::new();
    for strat in STRATS {
        let info = build(ctx, strat);
        let a = estimate(ctx, &data, &info, false);
        let s = estimate(ctx, &data, &info, true);
        eprintln!(
            "table5: {} -> addrs {:.0}, /24s {:.0} ({} strata, {} excluded)",
            strat.name(),
            a.estimated_total,
            s.estimated_total,
            info.labels.len(),
            a.excluded.len()
        );
        addr_totals.push(a.estimated_total);
        subnet_totals.push(s.estimated_total);
    }

    // Unseen range from the unstratified estimate with profile interval.
    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let (est, range) = estimate_table_with_range(&table, Some(routed_addrs), &ctx.cr_config())
        .expect("range estimable");
    let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let table24 = ContingencyTable::from_subnet_sets(&refs);
    let (est24, range24) =
        estimate_table_with_range(&table24, Some(routed_subnets), &ctx.cr_config())
            .expect("range estimable");

    let mut t = TextTable::new({
        let mut h = vec!["".to_string()];
        h.extend(STRATS.iter().map(|s| s.name().to_string()));
        h.extend([
            "Ping".into(),
            "Observed".into(),
            "Unseen lo".into(),
            "Unseen hi".into(),
            "Routed".into(),
        ]);
        h
    });
    let mut addr_row = vec!["IP addresses".to_string()];
    addr_row.extend(addr_totals.iter().map(|v| format!("{v:.0}")));
    addr_row.extend([
        ping_addrs.to_string(),
        observed_addrs.to_string(),
        format!("{:.0}", range.lower - observed_addrs as f64),
        format!("{:.0}", range.upper - observed_addrs as f64),
        routed_addrs.to_string(),
    ]);
    t.row(addr_row);
    let mut sub_row = vec!["/24 subnets".to_string()];
    sub_row.extend(subnet_totals.iter().map(|v| format!("{v:.0}")));
    sub_row.extend([
        ping_subnets.to_string(),
        observed_subnets.to_string(),
        format!("{:.0}", range24.lower - observed_subnets as f64),
        format!("{:.0}", range24.upper - observed_subnets as f64),
        routed_subnets.to_string(),
    ]);
    t.row(sub_row);

    let truth_addrs = ctx.scenario.truth_addrs(ctx.windows[last]).len();
    let truth_subnets = ctx.scenario.truth_subnets(ctx.windows[last]).len();
    let text = format!(
        "Table 5 — used space at the end of June 2014 per stratification\n\
         (counts at scale 1/{:.0})\n\n{}\n\
         Ground truth (simulator): {truth_addrs} addresses, {truth_subnets} /24s.\n\
         Ratios: estimated/ping = {:.2} (paper 2.6-2.7);\n\
         observed/routed = {:.2} (paper 0.27), estimated/routed = {:.2}\n\
         (paper ~0.45) for addresses; estimates consistent across\n\
         stratifications (max spread {:.1}%).\n",
        ctx.denom,
        t.render(),
        est.total / ping_addrs as f64,
        observed_addrs as f64 / routed_addrs as f64,
        est.total / routed_addrs as f64,
        100.0
            * (addr_totals.iter().cloned().fold(f64::MIN, f64::max)
                - addr_totals.iter().cloned().fold(f64::MAX, f64::min))
            / est.total,
    );
    let json = json!({
        "stratifications": STRATS.iter().map(|s| s.name()).collect::<Vec<_>>(),
        "addr_totals": addr_totals,
        "subnet_totals": subnet_totals,
        "ping": { "addrs": ping_addrs, "subnets": ping_subnets },
        "observed": { "addrs": observed_addrs, "subnets": observed_subnets },
        "routed": { "addrs": routed_addrs, "subnets": routed_subnets },
        "truth": { "addrs": truth_addrs, "subnets": truth_subnets },
        "unseen_range_addrs": [range.lower - observed_addrs as f64, range.upper - observed_addrs as f64],
        "unseen_range_subnets": [range24.lower - observed_subnets as f64, range24.upper - observed_subnets as f64],
        "estimate_addrs": est.total,
        "estimate_subnets": est24.total,
    });
    (text, json)
}
