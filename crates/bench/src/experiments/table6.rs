//! Table 6: available IPv4 addresses and /24 networks, growth rates and
//! run-out years per RIR (§7.2.2), plus the §8 75%-utilisation scenario.

use crate::context::ReproContext;
use crate::experiments::fig6::series_windows;
use crate::strata::{build, estimate, Strat};
use ghosts_analysis::growth::Series;
use ghosts_analysis::report::TextTable;
use ghosts_analysis::supply::{project, unallocated_share, UNALLOCATED_TOTAL_2014};
use ghosts_net::Rir;
use serde_json::json;

/// Runs the experiment.
pub fn run(ctx: &ReproContext) -> (String, serde_json::Value) {
    let info = build(ctx, Strat::Rir);
    let picks = series_windows(ctx);
    let windows: Vec<_> = picks.iter().map(|&i| ctx.windows[i]).collect();

    // Per-RIR estimated series, addresses and subnets.
    let n = Rir::ALL.len();
    let mut addr_series: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut sub_series: Vec<Vec<f64>> = vec![Vec::new(); n];
    for &i in &picks {
        let data = ctx.filtered_window(i);
        let a = estimate(ctx, &data, &info, false);
        let s = estimate(ctx, &data, &info, true);
        for r in 0..n {
            addr_series[r].push(a.strata[r].as_ref().map(|e| e.total).unwrap_or(0.0));
            sub_series[r].push(s.strata[r].as_ref().map(|e| e.total).unwrap_or(0.0));
        }
        eprintln!("table6: window {} done", ctx.windows[i].label());
    }

    let unalloc_total = UNALLOCATED_TOTAL_2014 / ctx.denom;
    let mut t = TextTable::new([
        "RIR",
        "Avail IPs",
        "IP growth/yr",
        "Runout IPs",
        "Avail /24s",
        "/24 growth/yr",
        "Runout /24s",
    ]);
    let mut json_rows = Vec::new();
    let mut world_addr = vec![0.0; windows.len()];
    let mut world_sub = vec![0.0; windows.len()];
    let mut world_unalloc = 0.0;
    let mut world_routed_a = 0.0;
    let mut world_routed_s = 0.0;

    for (r, rir) in Rir::ALL.iter().enumerate() {
        let unalloc = unalloc_total * unallocated_share(*rir);
        let routed_a = info.addr_limits[r] as f64;
        let routed_s = info.subnet_limits[r] as f64;
        let a_series = Series::new(rir.name(), &windows, &addr_series[r]);
        let s_series = Series::new(rir.name(), &windows, &sub_series[r]);
        let used_a = *addr_series[r].last().expect("series non-empty");
        let used_s = *sub_series[r].last().expect("series non-empty");
        let row_a = project(Some(*rir), unalloc, routed_a, used_a, &a_series, 1.0);
        // The unallocated pool in /24 units.
        let row_s = project(
            Some(*rir),
            unalloc / 256.0,
            routed_s,
            used_s,
            &s_series,
            1.0,
        );
        let fmt_year = |y: Option<f64>| y.map_or("never".to_string(), |v| format!("{v:.0}"));
        t.row([
            rir.name().to_string(),
            format!("{:.0}", row_a.available),
            format!("{:.0}", row_a.growth_per_year),
            fmt_year(row_a.runout_year),
            format!("{:.0}", row_s.available),
            format!("{:.1}", row_s.growth_per_year),
            fmt_year(row_s.runout_year),
        ]);
        json_rows.push(json!({
            "rir": rir.name(),
            "available_ips": row_a.available,
            "ip_growth": row_a.growth_per_year,
            "runout_ips": row_a.runout_year,
            "available_subnets": row_s.available,
            "subnet_growth": row_s.growth_per_year,
            "runout_subnets": row_s.runout_year,
        }));
        for k in 0..windows.len() {
            world_addr[k] += addr_series[r][k];
            world_sub[k] += sub_series[r][k];
        }
        world_unalloc += unalloc;
        world_routed_a += routed_a;
        world_routed_s += routed_s;
    }

    // World row + the §8 pessimistic 75% scenario.
    let wa_series = Series::new("World", &windows, &world_addr);
    let ws_series = Series::new("World", &windows, &world_sub);
    let world_a = project(
        None,
        world_unalloc,
        world_routed_a,
        *world_addr.last().expect("series"),
        &wa_series,
        1.0,
    );
    let world_s = project(
        None,
        world_unalloc / 256.0,
        world_routed_s,
        *world_sub.last().expect("series"),
        &ws_series,
        1.0,
    );
    let world_s75 = project(
        None,
        world_unalloc / 256.0,
        world_routed_s,
        *world_sub.last().expect("series"),
        &ws_series,
        0.75,
    );
    let fmt_year = |y: Option<f64>| y.map_or("never".to_string(), |v| format!("{v:.0}"));
    t.row([
        "World".to_string(),
        format!("{:.0}", world_a.available),
        format!("{:.0}", world_a.growth_per_year),
        fmt_year(world_a.runout_year),
        format!("{:.0}", world_s.available),
        format!("{:.1}", world_s.growth_per_year),
        fmt_year(world_s.runout_year),
    ]);

    let text = format!(
        "Table 6 — available space, growth and run-out year per RIR\n\
         (mini-Internet counts at scale 1/{:.0}; unallocated pools scaled\n\
         from the paper's 5.5 /8s)\n\n{}\n\
         World run-out (optimistic, all unused usable): IPs {} — the\n\
         paper projects 2023-2024. With the 8 75%-utilisation cap on\n\
         routed /24s: {} (paper: ~2018).\n\
         Shape targets: LACNIC/APNIC tightest, ARIN most slack.\n\n\
         Market sketch (8): {:.2} M full-scale routed-unused /24s at\n\
         US$10/address = US${:.1} G (paper: 4.4 M /24s, over US$11 G).\n",
        ctx.denom,
        t.render(),
        fmt_year(world_a.runout_year),
        fmt_year(world_s75.runout_year),
        ctx.full_scale(world_s.available - unalloc_total / 256.0) / 1e6,
        ghosts_analysis::market_value(
            ctx.full_scale(world_s.available - unalloc_total / 256.0),
            10.0,
        )
        .total_value
            / 1e9,
    );
    let json = json!({
        "rirs": json_rows,
        "world": {
            "available_ips": world_a.available,
            "ip_growth": world_a.growth_per_year,
            "runout_ips": world_a.runout_year,
            "available_subnets": world_s.available,
            "subnet_growth": world_s.growth_per_year,
            "runout_subnets": world_s.runout_year,
            "runout_subnets_75pct": world_s75.runout_year,
        },
    });
    (text, json)
}
