//! # ghosts-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper (see DESIGN.md §5 for the index), plus Criterion benchmarks
//! of the hot paths and the ablation benches DESIGN.md §6 calls out.
//!
//! The `repro` binary drives [`experiments`]; each experiment renders a
//! text artifact (printed and written to `results/<id>.txt`) and a JSON
//! sidecar (`results/<id>.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod serve_backend;
pub mod strata;

pub use context::ReproContext;
pub use serve_backend::ReproBackend;
