//! The reproduction-scenario backend for `ghosts-serve`: resolves
//! window/strata requests against a shared [`ReproContext`], so the
//! `serve` binary answers the same queries the paper's tables are built
//! from — eleven quarterly windows at address or /24 granularity, with
//! the §3.4 stratifications available by name.
//!
//! Determinism contract: the serve cache assumes digest-equal requests
//! resolve to byte-identical tables for the process lifetime. The
//! context's sharded caches guarantee exactly that — every window is a
//! pure function of `(denom, seed)`.

use crate::context::ReproContext;
use crate::strata::{self, Strat};
use ghosts_core::ContingencyTable;
use ghosts_net::{bogons, AddrSet, SubnetSet};
use ghosts_serve::backend::{Backend, BackendError, Membership, TableSpec};
use ghosts_serve::request::{EstimateRequest, Target};
use std::sync::{Arc, Mutex};

/// Stratification names the serve API accepts, with their [`Strat`].
/// Kebab-case on the wire; `Strat::name()` stays the Table 5 header.
const STRATA: [(&str, Strat); 6] = [
    ("rir", Strat::Rir),
    ("country", Strat::Country),
    ("age", Strat::AllocAge),
    ("prefix-size", Strat::PrefixSize),
    ("industry", Strat::Industry),
    ("static-dynamic", Strat::StaticDynamic),
];

/// A [`Backend`] over the simulated measurement study.
pub struct ReproBackend {
    ctx: ReproContext,
    denom: u64,
    seed: u64,
    /// Union of the latest window's filtered sources, built on first
    /// membership query: "observed" means *currently* observed, matching
    /// the paper's notion of the most recent ground-truth snapshot.
    observed: Mutex<Option<Arc<AddrSet>>>,
}

impl ReproBackend {
    /// Builds the scenario at scale `1/denom` with the given seed.
    pub fn new(denom: u64, seed: u64) -> Self {
        Self {
            ctx: ReproContext::new(denom, seed),
            denom,
            seed,
            observed: Mutex::new(None),
        }
    }

    /// The shared context (for callers that want to pre-warm windows).
    pub fn context(&self) -> &ReproContext {
        &self.ctx
    }

    fn observed_union(&self) -> Arc<AddrSet> {
        let mut slot = self.observed.lock().expect("observed cache");
        if let Some(set) = slot.as_ref() {
            return Arc::clone(set);
        }
        let last = self.ctx.windows.len() - 1;
        let data = self.ctx.filtered_window(last);
        let mut union = AddrSet::new();
        for source in &data.sources {
            union.union_with(&source.addrs);
        }
        let set = Arc::new(union);
        *slot = Some(Arc::clone(&set));
        set
    }
}

impl Backend for ReproBackend {
    fn resolve(&self, request: &EstimateRequest) -> Result<TableSpec, BackendError> {
        let Some(window) = request.window else {
            return Err(BackendError::Invalid(
                "repro backend needs a window".to_string(),
            ));
        };
        let windows = self.ctx.windows.len();
        let index = usize::try_from(window)
            .ok()
            .filter(|i| *i < windows)
            .ok_or_else(|| {
                BackendError::NotFound(format!(
                    "window {window} does not exist (repro backend has windows 0..={})",
                    windows - 1
                ))
            })?;
        let data = self.ctx.filtered_window(index);
        let Some(name) = &request.strata else {
            // Unstratified: one table, bounded by the routed space (or the
            // caller's tighter limit).
            let (table, routed) = match request.target {
                Target::Addr => (
                    ContingencyTable::from_addr_sets(&data.addr_sets()),
                    self.ctx.scenario.gt.routed.address_count(),
                ),
                Target::Subnet => {
                    let sets: Vec<SubnetSet> = data.sources.iter().map(|s| s.subnets()).collect();
                    let refs: Vec<&SubnetSet> = sets.iter().collect();
                    (
                        ContingencyTable::from_subnet_sets(&refs),
                        self.ctx.scenario.gt.routed.subnet24_count(),
                    )
                }
            };
            return Ok(TableSpec {
                tables: vec![table],
                limits: Some(vec![request.limit.unwrap_or(routed)]),
                labels: Vec::new(),
            });
        };
        if request.limit.is_some() {
            return Err(BackendError::Invalid(
                "\"limit\" cannot override stratified routed bounds".to_string(),
            ));
        }
        let strat = STRATA
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .ok_or_else(|| {
                let known: Vec<&str> = STRATA.iter().map(|(n, _)| *n).collect();
                BackendError::NotFound(format!(
                    "stratification {name:?} does not exist (known: {})",
                    known.join(", ")
                ))
            })?;
        let info = strata::build(&self.ctx, strat);
        let (tables, limits) = match request.target {
            Target::Addr => (
                ContingencyTable::stratified_from_addr_sets(
                    &data.addr_sets(),
                    info.labels.len(),
                    |addr| (info.key)(addr),
                ),
                info.addr_limits.clone(),
            ),
            Target::Subnet => {
                let sets: Vec<SubnetSet> = data.sources.iter().map(|s| s.subnets()).collect();
                let refs: Vec<&SubnetSet> = sets.iter().collect();
                (
                    ContingencyTable::stratified_from_subnet_sets(
                        &refs,
                        info.labels.len(),
                        |base| (info.key)(base),
                    ),
                    info.subnet_limits.clone(),
                )
            }
        };
        Ok(TableSpec {
            tables,
            limits: Some(limits),
            labels: info.labels,
        })
    }

    fn membership(&self, addr: u32) -> Membership {
        Membership {
            addr,
            routed: self.ctx.scenario.gt.routed.longest_match(addr),
            bogon: bogons::is_reserved(addr),
            observed: self.observed_union().contains(addr),
        }
    }

    fn info(&self) -> Vec<(String, String)> {
        let known: Vec<&str> = STRATA.iter().map(|(n, _)| *n).collect();
        vec![
            ("backend".to_string(), "repro".to_string()),
            ("windows".to_string(), self.ctx.windows.len().to_string()),
            ("denom".to_string(), self.denom.to_string()),
            ("seed".to_string(), self.seed.to_string()),
            (
                "routed_addresses".to_string(),
                self.ctx.scenario.gt.routed.address_count().to_string(),
            ),
            (
                "routed_subnets".to_string(),
                self.ctx.scenario.gt.routed.subnet24_count().to_string(),
            ),
            ("strata".to_string(), known.join(",")),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_obs::json::parse;

    fn backend() -> ReproBackend {
        ReproBackend::new(16_384, 7)
    }

    fn req(text: &str) -> EstimateRequest {
        EstimateRequest::parse(&parse(text).expect("json")).expect("valid request")
    }

    #[test]
    fn resolves_each_granularity_with_routed_bounds() {
        let b = backend();
        let spec = b.resolve(&req(r#"{"window":10}"#)).expect("addr window");
        assert_eq!(spec.tables.len(), 1);
        assert_eq!(
            spec.limits,
            Some(vec![b.ctx.scenario.gt.routed.address_count()])
        );
        let spec = b
            .resolve(&req(r#"{"window":10,"target":"subnet"}"#))
            .expect("subnet window");
        assert_eq!(
            spec.limits,
            Some(vec![b.ctx.scenario.gt.routed.subnet24_count()])
        );
    }

    #[test]
    fn stratified_resolution_covers_the_routed_space() {
        let b = backend();
        let spec = b
            .resolve(&req(r#"{"window":10,"strata":"rir"}"#))
            .expect("rir strata");
        assert_eq!(spec.tables.len(), spec.labels.len());
        let total: u64 = spec.limits.as_ref().expect("limits").iter().sum();
        assert_eq!(total, b.ctx.scenario.gt.routed.address_count());
    }

    #[test]
    fn unknown_windows_and_strata_are_not_found() {
        let b = backend();
        assert_eq!(
            b.resolve(&req(r#"{"window":99}"#))
                .expect_err("404")
                .status(),
            404
        );
        assert_eq!(
            b.resolve(&req(r#"{"window":0,"strata":"zodiac"}"#))
                .expect_err("404")
                .status(),
            404
        );
        assert_eq!(
            b.resolve(&req(r#"{"window":0,"strata":"rir","limit":5}"#))
                .expect_err("422")
                .status(),
            422
        );
    }

    #[test]
    fn membership_is_consistent_with_the_ground_truth() {
        let b = backend();
        // 127.0.0.1 is always a bogon and never routed by the simulator.
        let m = b.membership(0x7f00_0001);
        assert!(m.bogon);
        assert!(m.routed.is_none());
        assert!(!m.observed);
        // Every observed address is routed.
        let observed = b.observed_union();
        let addr = observed.iter().next().expect("scenario observes addrs");
        let m = b.membership(addr);
        assert!(m.observed);
        assert!(m.routed.is_some());
    }
}
