//! Stratification helpers shared by Table 5 and Figures 6–9: key
//! functions from address to stratum index, per-stratum routed limits,
//! and stratified estimation over a window.

use crate::context::ReproContext;
use ghosts_core::{estimate_stratified, ContingencyTable, StratifiedEstimate};
use ghosts_net::{Rir, SubnetSet};
use ghosts_pipeline::dataset::WindowData;
use std::collections::BTreeSet;

/// The stratifications of §3.4 / Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strat {
    /// No stratification (one stratum).
    None,
    /// By responsible RIR.
    Rir,
    /// By registrant country.
    Country,
    /// By allocation year.
    AllocAge,
    /// By allocation prefix length.
    PrefixSize,
    /// By whois industry class.
    Industry,
    /// Statically vs dynamically assigned space (per-/24 pool flag).
    StaticDynamic,
}

impl Strat {
    /// Display name as in Table 5's header.
    pub fn name(&self) -> &'static str {
        match self {
            Strat::None => "None",
            Strat::Rir => "RIR",
            Strat::Country => "Country",
            Strat::AllocAge => "Age",
            Strat::PrefixSize => "Prefix size",
            Strat::Industry => "Industry",
            Strat::StaticDynamic => "Stat/Dyn",
        }
    }
}

/// A materialised stratification: labels, an address→stratum key, and
/// per-stratum routed limits.
pub struct StratInfo<'a> {
    /// Stratum display labels.
    pub labels: Vec<String>,
    /// Address → stratum index (None = outside all strata). `Send + Sync`
    /// so a materialised stratification can be shared with worker threads.
    pub key: Box<dyn Fn(u32) -> Option<usize> + Send + Sync + 'a>,
    /// Routed addresses per stratum (truncation limits).
    pub addr_limits: Vec<u64>,
    /// Routed /24s per stratum.
    pub subnet_limits: Vec<u64>,
}

/// Builds a stratification over the context's registry and ground truth.
pub fn build<'a>(ctx: &'a ReproContext, strat: Strat) -> StratInfo<'a> {
    let gt = &ctx.scenario.gt;
    let registry = &gt.registry;
    match strat {
        Strat::None => {
            let key = Box::new(move |_addr: u32| Some(0usize));
            StratInfo {
                labels: vec!["all".into()],
                key,
                addr_limits: vec![gt.routed.address_count()],
                subnet_limits: vec![gt.routed.subnet24_count()],
            }
        }
        Strat::Rir => {
            let labels: Vec<String> = Rir::ALL.iter().map(|r| r.name().into()).collect();
            let key = Box::new(move |addr: u32| {
                registry
                    .lookup(addr)
                    .map(|(_, a)| Rir::ALL.iter().position(|r| *r == a.rir).unwrap())
            });
            let (addr_limits, subnet_limits) = limits_by(
                ctx,
                |addr| {
                    registry
                        .lookup(addr)
                        .map(|(_, a)| Rir::ALL.iter().position(|r| *r == a.rir).unwrap())
                },
                Rir::ALL.len(),
            );
            StratInfo {
                labels,
                key,
                addr_limits,
                subnet_limits,
            }
        }
        Strat::Country => {
            let mut codes: BTreeSet<String> = BTreeSet::new();
            for a in registry.allocations() {
                codes.insert(a.country.as_str().to_string());
            }
            let labels: Vec<String> = codes.into_iter().collect();
            let labels_for_key = labels.clone();
            let find = move |addr: u32| {
                registry.lookup(addr).and_then(|(_, a)| {
                    labels_for_key
                        .binary_search_by(|l| l.as_str().cmp(a.country.as_str()))
                        .ok()
                })
            };
            let n = labels.len();
            let (addr_limits, subnet_limits) = limits_by(ctx, &find, n);
            StratInfo {
                labels,
                key: Box::new(find),
                addr_limits,
                subnet_limits,
            }
        }
        Strat::AllocAge => {
            let years: Vec<u16> = (1983..=2014).collect();
            let labels: Vec<String> = years.iter().map(|y| y.to_string()).collect();
            let find = move |addr: u32| {
                registry
                    .lookup(addr)
                    .map(|(_, a)| (a.alloc_year - 1983) as usize)
            };
            let n = labels.len();
            let (addr_limits, subnet_limits) = limits_by(ctx, find, n);
            StratInfo {
                labels,
                key: Box::new(find),
                addr_limits,
                subnet_limits,
            }
        }
        Strat::PrefixSize => {
            let lens: Vec<u8> = (8..=24).collect();
            let labels: Vec<String> = lens.iter().map(|l| format!("/{l}")).collect();
            let find = move |addr: u32| {
                registry.lookup(addr).and_then(|(_, a)| {
                    let l = a.prefix.len();
                    (8..=24).contains(&l).then(|| (l - 8) as usize)
                })
            };
            let n = labels.len();
            let (addr_limits, subnet_limits) = limits_by(ctx, find, n);
            StratInfo {
                labels,
                key: Box::new(find),
                addr_limits,
                subnet_limits,
            }
        }
        Strat::Industry => {
            use ghosts_net::Industry;
            let labels: Vec<String> = Industry::ALL.iter().map(|i| i.name().into()).collect();
            let find = move |addr: u32| {
                registry
                    .lookup(addr)
                    .map(|(_, a)| Industry::ALL.iter().position(|i| *i == a.industry).unwrap())
            };
            let n = labels.len();
            let (addr_limits, subnet_limits) = limits_by(ctx, find, n);
            StratInfo {
                labels,
                key: Box::new(find),
                addr_limits,
                subnet_limits,
            }
        }
        Strat::StaticDynamic => {
            let labels = vec!["static".to_string(), "dynamic".to_string()];
            let find = move |addr: u32| gt.block_of_addr(addr).map(|b| usize::from(b.dynamic_pool));
            let n = labels.len();
            let (addr_limits, subnet_limits) = limits_by(ctx, find, n);
            StratInfo {
                labels,
                key: Box::new(find),
                addr_limits,
                subnet_limits,
            }
        }
    }
}

/// Per-stratum routed limits via the ground truth's per-/24 blocks (every
/// routed /24 has a block, so summing 256 addresses per block reproduces
/// the routed totals exactly).
fn limits_by<F: Fn(u32) -> Option<usize>>(
    ctx: &ReproContext,
    key: F,
    n: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut addrs = vec![0u64; n];
    let mut subs = vec![0u64; n];
    for block in ctx.scenario.gt.blocks() {
        if let Some(s) = key(block.subnet << 8) {
            addrs[s] += 256;
            subs[s] += 1;
        }
    }
    (addrs, subs)
}

/// Stratified CR estimate of a window at either granularity.
pub fn estimate(
    ctx: &ReproContext,
    data: &WindowData,
    info: &StratInfo<'_>,
    subnets: bool,
) -> StratifiedEstimate {
    let cfg = ctx.cr_config();
    if subnets {
        let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
        let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
        let tables =
            ContingencyTable::stratified_from_subnet_sets(&refs, info.labels.len(), |base| {
                (info.key)(base)
            });
        estimate_stratified(&tables, Some(&info.subnet_limits), &cfg)
    } else {
        let sets = data.addr_sets();
        let tables =
            ContingencyTable::stratified_from_addr_sets(&sets, info.labels.len(), |addr| {
                (info.key)(addr)
            });
        estimate_stratified(&tables, Some(&info.addr_limits), &cfg)
    }
}
