//! Chaos harness for the durable ingest plane: real `serve` processes
//! killed at the worst moments. The contract under test (DESIGN.md §16):
//! an **acked** observation survives any crash — `kill -9`, an injected
//! `abort()` between fsync and response, anything — and the recovered
//! state converges to the byte-identical estimates of a run that never
//! crashed.

use ghosts_serve::client::{self, ClientResponse};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A `serve run` child that is SIGKILLed on drop (so a failing assert
/// never leaks a listener).
struct ServeProc {
    child: Child,
    addr: SocketAddr,
}

impl ServeProc {
    fn spawn(dir: &Path, extra: &[&str]) -> ServeProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.args([
            "run",
            "--port",
            "0",
            "--denom",
            "65536",
            "--quiet",
            "--ingest-dir",
        ])
        .arg(dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = lines
            .next()
            .and_then(Result::ok)
            .and_then(|l| {
                l.strip_prefix("ghosts-serve listening on http://")
                    .and_then(|a| a.parse().ok())
            })
            .expect("announcement line with the bound address");
        ServeProc { child, addr }
    }

    fn post(&self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        client::request_with_headers(self.addr, "POST", path, Some(body.as_bytes()), &[])
    }

    fn get(&self, path: &str) -> ClientResponse {
        client::get(self.addr, path).expect("GET")
    }

    fn wait(mut self) -> std::process::ExitStatus {
        let status = self.child.wait().expect("child wait");
        // Disarm the drop kill (already exited).
        status
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghosts-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch(key: &str) -> String {
    // Key-derived addresses: each batch contributes distinct but
    // deterministic observations across three overlapping sources.
    let n: u32 = key
        .trim_start_matches(|c: char| !c.is_ascii_digit())
        .parse()
        .expect("numeric key suffix");
    let source = format!("s{}", n % 3);
    let addrs: Vec<String> = (0..4)
        .map(|i| format!("\"8.{}.{}.{}\"", n % 200, (n * 7 + i) % 250, i + 1))
        .collect();
    format!(
        "{{\"key\":\"{key}\",\"source\":\"{source}\",\"addrs\":[{}]}}",
        addrs.join(",")
    )
}

fn field(body: &str, name: &str) -> String {
    body.split(&format!("\"{name}\":"))
        .nth(1)
        .map(|t| {
            t.trim_start_matches('"')
                .split(['"', ',', '}'])
                .next()
                .expect("split never returns no items")
                .to_string()
        })
        .unwrap_or_else(|| panic!("no {name:?} field in {body}"))
}

/// Ingests `keys` into a fresh server and returns (digest, estimate body)
/// after a graceful drain — the never-crashed control fixture.
fn control_run(tag: &str, keys: &[String]) -> (String, Vec<u8>) {
    let dir = scratch(tag);
    let server = ServeProc::spawn(&dir, &[]);
    for key in keys {
        let r = server.post("/v1/observations", &batch(key)).expect("post");
        assert!(r.status == 201 || r.status == 200, "{}", r.body_text());
    }
    let stats = server.get("/v1/observations/stats");
    let digest = field(&stats.body_text(), "digest");
    let estimate = server.get("/v1/observations/estimate").body;
    let drained = server.post("/v1/admin/drain", "").expect("drain");
    assert_eq!(drained.status, 200, "{}", drained.body_text());
    let status = server.wait();
    assert!(status.success(), "drained server must exit 0: {status:?}");
    (digest, estimate)
}

#[test]
fn injected_crash_between_fsync_and_ack_converges_to_the_control_run() {
    let keys: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
    let (control_digest, control_estimate) = control_run("control-a", &keys);

    // The 6th observation's WAL append fsyncs, then the process aborts
    // before the ack can be written back — the ambiguous-outcome window.
    let dir = scratch("crash-at-point");
    let server = ServeProc::spawn(
        &dir,
        &[
            "--fault-plan",
            "site=durable.wal.append kind=crash-at-point scope=5 hit=0",
        ],
    );
    let mut acked: Vec<String> = Vec::new();
    for key in &keys {
        match server.post("/v1/observations", &batch(key)) {
            Ok(r) if r.status == 201 => acked.push(key.clone()),
            Ok(r) => panic!("unexpected status {} for {key}", r.status),
            Err(_) => break, // the crash: this and later sends got no ack
        }
    }
    assert_eq!(acked.len(), 5, "exactly the pre-crash observations ack");
    let status = server.wait();
    assert!(
        !status.success(),
        "the injected abort must kill the process"
    );

    // Recovery: every acked key must already be present (dedup answers
    // duplicate); the ambiguous fsynced-but-unacked record may also have
    // survived — that is allowed, a retry converges either way.
    let server = ServeProc::spawn(&dir, &[]);
    let stats = server.get("/v1/observations/stats").body_text();
    let applied: u64 = field(&stats, "applied").parse().expect("applied count");
    assert!(applied >= 5, "recovery lost acked observations: {stats}");
    assert!(
        field(&stats, "wal_records_replayed")
            .parse::<u64>()
            .expect("count")
            >= 5,
        "{stats}"
    );
    for key in &acked {
        let r = server.post("/v1/observations", &batch(key)).expect("redo");
        assert_eq!(r.status, 200, "acked {key} was lost: {}", r.body_text());
        assert!(r.body_text().contains("\"duplicate\""), "{}", r.body_text());
    }
    // The client retry protocol: re-send everything idempotently, then the
    // state must be byte-identical to the never-crashed run.
    for key in &keys {
        let r = server
            .post("/v1/observations", &batch(key))
            .expect("resend");
        assert!(r.status == 200 || r.status == 201, "{}", r.body_text());
    }
    let stats = server.get("/v1/observations/stats");
    assert_eq!(field(&stats.body_text(), "digest"), control_digest);
    let estimate = server.get("/v1/observations/estimate");
    assert_eq!(
        estimate.body, control_estimate,
        "estimates must be byte-identical to the never-crashed run"
    );
    let drained = server.post("/v1/admin/drain", "").expect("drain");
    assert_eq!(drained.status, 200);
    assert!(server.wait().success());
}

#[test]
fn sigkill_mid_ingest_preserves_every_acked_observation() {
    let dir = scratch("sigkill");
    let mut server = ServeProc::spawn(&dir, &["--checkpoint-every", "8"]);

    // Hammer observations until the harness yanks the process (SIGKILL —
    // no drain, no flush, no atexit) out from under the stream.
    let addr = server.addr;
    let poster = std::thread::spawn(move || {
        let mut acked = Vec::new();
        for i in 0..4000 {
            let key = format!("k{i}");
            match client::request_with_headers(
                addr,
                "POST",
                "/v1/observations",
                Some(batch(&key).as_bytes()),
                &[],
            ) {
                Ok(r) if r.status == 201 => acked.push(key),
                _ => break,
            }
        }
        acked
    });
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.child.kill().expect("SIGKILL");
    let _ = server.child.wait();
    let acked = poster.join().expect("poster thread");
    assert!(
        !acked.is_empty(),
        "the harness killed the server before any ack"
    );
    drop(server);

    let server = ServeProc::spawn(&dir, &[]);
    let stats = server.get("/v1/observations/stats").body_text();
    let applied: u64 = field(&stats, "applied").parse().expect("applied count");
    assert!(
        applied >= acked.len() as u64,
        "recovered {applied} < {} acked: {stats}",
        acked.len()
    );
    for key in &acked {
        let r = server.post("/v1/observations", &batch(key)).expect("redo");
        assert_eq!(
            r.status,
            200,
            "acked {key} missing after kill -9: {}",
            r.body_text()
        );
    }
}

#[test]
fn worker_count_does_not_change_recovered_bytes() {
    let keys: Vec<String> = (0..12).map(|i| format!("k{i}")).collect();
    let (one_digest, one_estimate) = {
        let dir = scratch("workers-1");
        let server = ServeProc::spawn(&dir, &["--workers", "1"]);
        for key in &keys {
            assert_eq!(
                server
                    .post("/v1/observations", &batch(key))
                    .expect("post")
                    .status,
                201
            );
        }
        let stats = server.get("/v1/observations/stats").body_text();
        (
            field(&stats, "digest"),
            server.get("/v1/observations/estimate").body,
        )
    };
    let (four_digest, four_estimate) = {
        let dir = scratch("workers-4");
        let server = ServeProc::spawn(&dir, &["--workers", "4"]);
        for key in &keys {
            assert_eq!(
                server
                    .post("/v1/observations", &batch(key))
                    .expect("post")
                    .status,
                201
            );
        }
        let stats = server.get("/v1/observations/stats").body_text();
        (
            field(&stats, "digest"),
            server.get("/v1/observations/estimate").body,
        )
    };
    assert_eq!(one_digest, four_digest, "digest depends on --workers");
    assert_eq!(
        one_estimate, four_estimate,
        "estimate bytes depend on --workers"
    );
}
