//! End-to-end CLI tests for `repro --fault-plan` (DESIGN.md §11): every
//! injectable fault class must leave the harness with partial results, a
//! schema-valid trace accounting for each fired fault, and the dedicated
//! degraded exit code (3) — and the degraded trace must stay byte-identical
//! across `--threads` settings.
//!
//! Each test spawns its own `repro` process with its own working
//! directory, so the plan installed in one run can never leak into
//! another (the in-process equivalent lives in ghosts-core's
//! `fault_ladder` tests behind a mutex).

use ghosts_obs::{validate_jsonl, RunManifest};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code contract of `repro`: completed, but only by degrading.
const EXIT_DEGRADED: i32 = 3;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghosts-fault-cli-{name}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Runs `repro <experiment> --fault-plan <plan>` (plan optional) at the
/// tiny golden scale with a trace, returning the process output.
fn run_repro(
    dir: &Path,
    experiment: &str,
    plan: Option<&Path>,
    threads: &str,
    trace: &Path,
    manifest: Option<&Path>,
) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(dir)
        .args([
            experiment,
            "--denom",
            "16384",
            "--seed",
            "7",
            "--threads",
            threads,
            "--quiet",
            "--trace",
        ])
        .arg(trace);
    if let Some(p) = plan {
        cmd.arg("--fault-plan").arg(p);
    }
    if let Some(m) = manifest {
        cmd.arg("--metrics-out").arg(m);
    }
    cmd.output().expect("repro runs")
}

/// The multi-class plan drives three GLM fault classes plus a dropped
/// pipeline source through `table4`; the run must finish with partial
/// results, exit 3, and account for all four faults in the trace — and
/// the whole degraded trace must not depend on the worker thread count.
#[test]
fn table4_fault_plan_degrades_exits_3_and_is_thread_count_invariant() {
    let dir = workdir("table4");
    let plan = fixture("table4_faults.plan");
    let trace1 = dir.join("trace-t1.jsonl");
    let trace4 = dir.join("trace-t4.jsonl");
    let manifest = dir.join("manifest.json");

    let out = run_repro(&dir, "table4", Some(&plan), "1", &trace1, Some(&manifest));
    assert_eq!(
        out.status.code(),
        Some(EXIT_DEGRADED),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DEGRADED"), "stderr: {stderr}");
    assert!(stderr.contains("4 fault(s) fired"), "stderr: {stderr}");

    // The trace is schema-valid and accounts for every planned fault: the
    // three GLM fault classes on the main thread plus the dropped source.
    let text = std::fs::read_to_string(&trace1).expect("trace written");
    let summary = validate_jsonl(&text).expect("degraded trace is schema-valid");
    assert_eq!(summary.faults, 4, "{summary:?}");
    assert!(summary.degradations >= 3, "{summary:?}");
    for needle in [
        "non-finite-fit",
        "budget-exhaustion",
        "nan-cell",
        "drop-source",
        "ladder_step",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Partial results were still written: all six networks are present
    // (degraded entries carry fallback estimates rather than vanishing).
    let results = std::fs::read_to_string(dir.join("results/table4.json")).expect("results");
    assert_eq!(
        results.matches("\"network\"").count(),
        6,
        "results:\n{results}"
    );

    // The manifest ingests the degradation events as a `degraded` section.
    let mtext = std::fs::read_to_string(&manifest).expect("manifest written");
    let m = RunManifest::from_json(&mtext).expect("manifest parses");
    assert!(m
        .config
        .iter()
        .any(|(k, v)| k == "experiments" && v == "table4"));
    assert!(mtext.contains("degraded"), "manifest:\n{mtext}");
    assert!(mtext.contains("ladder_step"), "manifest:\n{mtext}");
    assert!(mtext.contains("fault_injected"), "manifest:\n{mtext}");

    // Same plan, four worker threads: byte-identical trace.
    let out4 = run_repro(&dir, "table4", Some(&plan), "4", &trace4, None);
    assert_eq!(out4.status.code(), Some(EXIT_DEGRADED));
    let text4 = std::fs::read_to_string(&trace4).expect("trace written");
    assert_eq!(
        text, text4,
        "degraded table4 trace differs between --threads 1 and --threads 4"
    );
}

/// A worker panic in one stratum of a stratified run must not take the
/// run down: the remaining strata are reported as partial results and the
/// failure is a structured `stratum_failed` error event. The same
/// experiment with no plan installed reproduces cleanly.
#[test]
fn worker_panic_yields_partial_stratified_results() {
    let dir = workdir("panic");
    let plan = fixture("stratified_panic.plan");
    let trace_clean = dir.join("trace-clean.jsonl");
    let trace = dir.join("trace.jsonl");

    let clean = run_repro(&dir, "selftest-degrade", None, "1", &trace_clean, None);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean selftest-degrade must exit 0; stderr: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let out = run_repro(&dir, "selftest-degrade", Some(&plan), "1", &trace, None);
    assert_eq!(
        out.status.code(),
        Some(EXIT_DEGRADED),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("DEGRADED"));

    let text = std::fs::read_to_string(&trace).expect("trace written");
    let summary = validate_jsonl(&text).expect("degraded trace is schema-valid");
    assert_eq!(summary.faults, 1, "{summary:?}");
    assert!(summary.errors >= 1, "{summary:?}");
    assert!(text.contains("worker-panic"), "{text}");
    assert!(text.contains("stratum_failed"), "{text}");

    // Three of the four strata survive as partial results.
    let results =
        std::fs::read_to_string(dir.join("results/selftest-degrade.txt")).expect("results");
    assert!(results.contains("stratum 2: FAILED"), "{results}");
    for i in [0usize, 1, 3] {
        assert!(
            results.contains(&format!("stratum {i}: total")),
            "stratum {i} must survive:\n{results}"
        );
    }
    assert!(results.contains("failed strata: [2]"), "{results}");
}

/// An unparsable plan is a usage error (exit 2) before anything runs.
#[test]
fn malformed_fault_plan_exits_with_usage() {
    let dir = workdir("badplan");
    let plan = dir.join("bad.plan");
    std::fs::write(&plan, "site=glm.fit kind=voltage-spike\n").expect("write plan");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .current_dir(&dir)
        .args(["table4", "--quiet", "--fault-plan"])
        .arg(&plan)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fault kind"), "{stderr}");
}
