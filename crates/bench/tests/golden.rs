//! Golden end-to-end regression for one small window: pins the point
//! estimate, the profile-likelihood interval endpoints and the selected
//! model for a fixed tiny scenario (`denom = 16384`, seed 7, window 10).
//!
//! Everything under the harness is deterministic — the simulation RNG is
//! seeded, model selection is thread-count invariant, and the estimator
//! contains no unordered reductions — so these values must not drift. A
//! change here means an intentional algorithmic change; update the pins
//! together with DESIGN.md when that happens.

// Golden values are exact: any drift, even 1 ulp, is a regression.
#![allow(clippy::float_cmp)]

use ghosts_bench::ReproContext;
use ghosts_core::{
    estimate_table_with_range, select_model, CellModel, ContingencyTable, Parallelism,
};

const DENOM: u64 = 16_384;
const SEED: u64 = 7;
const WINDOW: usize = 10;

fn rounded(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

#[test]
fn window10_estimate_ci_and_model_are_pinned() {
    let ctx = ReproContext::new(DENOM, SEED);
    let data = ctx.filtered_window(WINDOW);
    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let limit = ctx.scenario.gt.routed.address_count();
    let cfg = ctx.cr_config();

    let (est, range) =
        estimate_table_with_range(&table, Some(limit), &cfg).expect("window 10 estimable");

    eprintln!(
        "golden scout: observed={} total={:.6} model={} divisor={} lower={:.6} upper={:.6}",
        est.observed, est.total, est.model, est.divisor, range.lower, range.upper
    );

    // Pinned values (captured from the seed scenario).
    assert_eq!(est.observed, 125_381);
    assert_eq!(rounded(est.total), 177_504.173);
    assert_eq!(est.divisor, 1);
    assert_eq!(rounded(range.lower), 174_513.864);
    assert_eq!(rounded(range.upper), 180_641.522);
    assert_eq!(
        est.model,
        "[1][2][12][3][4][14][24][34][5][25][35][45][6][26][36][46][56][7][17][27][37]\
         [47][57][67][8][68][9][39][49][59][69][79][89]"
    );

    // Structural sanity around the pins.
    assert!(range.lower <= est.total && est.total <= range.upper);
    assert!(est.total <= limit as f64 + 1e-6);

    // The selected model itself is also thread-count invariant.
    let cell = CellModel::Truncated { limit };
    let mut seq_opts = cfg.selection.clone();
    seq_opts.parallelism = Parallelism::SEQUENTIAL;
    let sel_seq = select_model(&table, cell, &seq_opts).unwrap();
    let mut par_opts = cfg.selection;
    par_opts.parallelism = Parallelism::Fixed(4);
    let sel_par = select_model(&table, cell, &par_opts).unwrap();
    assert_eq!(sel_seq.model.describe(), est.model);
    assert_eq!(sel_seq.model.describe(), sel_par.model.describe());
    assert_eq!(sel_seq.ic.to_bits(), sel_par.ic.to_bits());
}
