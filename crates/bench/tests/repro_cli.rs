//! End-to-end CLI tests for the `repro` binary's observability surface:
//! the hidden `selftest-fail` experiment must exit nonzero while leaving a
//! schema-valid trace containing the structured failure, and the manifest
//! must round-trip.

use ghosts_obs::{validate_jsonl, RunManifest};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn selftest_fail_exits_nonzero_with_structured_error_trace() {
    let dir = std::env::temp_dir().join("ghosts-repro-cli-fail");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let manifest = dir.join("manifest.json");

    let out = repro()
        .args([
            "selftest-fail",
            "--denom",
            "16384",
            "--seed",
            "7",
            "--threads",
            "1",
            "--quiet",
            "--trace",
        ])
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&manifest)
        .output()
        .expect("repro runs");

    assert!(
        !out.status.success(),
        "selftest-fail must exit nonzero; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("FAILED"),
        "stderr should report the failure: {stderr}"
    );

    // The trace is still written, schema-valid, and carries the structured
    // error event chain: the GLM-level failure and the harness-level one.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let summary = validate_jsonl(&text).expect("trace is schema-valid");
    assert!(summary.errors >= 1, "no error events in:\n{text}");
    assert!(
        text.contains("\"experiment_failed\""),
        "missing experiment_failed in:\n{text}"
    );
    assert!(
        text.contains("\"span\":\"repro\""),
        "harness error not on the repro span:\n{text}"
    );
    assert!(
        text.contains("\"estimate_failed\""),
        "estimator-level error event missing:\n{text}"
    );

    // The manifest round-trips and echoes the run configuration.
    let mtext = std::fs::read_to_string(&manifest).expect("manifest written");
    let m = RunManifest::from_json(&mtext).expect("manifest parses");
    assert!(m.config.iter().any(|(k, v)| k == "denom" && v == "16384"));
    assert!(m
        .config
        .iter()
        .any(|(k, v)| k == "experiments" && v == "selftest-fail"));
}

#[test]
fn unknown_experiment_exits_with_usage() {
    let out = repro().arg("no-such-experiment").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
}
