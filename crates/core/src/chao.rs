//! Chao's lower-bound estimator.
//!
//! A moment-based lower bound for the population size under heterogeneous
//! capture probabilities (Chao 1987, surveyed in the paper's reference
//! [9]). For `t` capture occasions,
//! `N̂ ≥ M + ((t−1)/t) · f₁² / (2 f₂)`, where `f₁` and `f₂` are the numbers
//! of individuals captured by exactly one and exactly two sources (the
//! `(t−1)/t` factor makes the bound exact for homogeneous capture). Serves
//! as a cheap sanity baseline alongside the log-linear estimates — a CR
//! estimate far *below* Chao's bound signals a badly mis-specified model.

use crate::history::ContingencyTable;

/// A Chao lower-bound estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaoEstimate {
    /// Observed individuals `M`.
    pub observed: u64,
    /// Individuals captured exactly once.
    pub f1: u64,
    /// Individuals captured exactly twice.
    pub f2: u64,
    /// The lower bound on the population size. Uses the bias-corrected
    /// form `M + ((t−1)/t)·f₁(f₁−1)/(2(f₂+1))`, which stays finite when
    /// `f₂ = 0`.
    pub n_hat: f64,
}

/// Computes the (bias-corrected) Chao lower bound from a table.
pub fn chao_lower_bound(table: &ContingencyTable) -> ChaoEstimate {
    let f = table.capture_frequencies();
    let f1 = f.get(1).copied().unwrap_or(0);
    let f2 = f.get(2).copied().unwrap_or(0);
    let observed = table.observed_total();
    let t = table.num_sources() as f64;
    let occasions = if t > 1.0 { (t - 1.0) / t } else { 1.0 };
    let n_hat =
        observed as f64 + occasions * (f1 as f64) * (f1 as f64 - 1.0) / (2.0 * (f2 as f64 + 1.0));
    ChaoEstimate {
        observed,
        f1,
        f2,
        n_hat,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn frequencies_and_bound() {
        // f1 = 100 singletons, f2 = 50 doubletons, 10 tripletons.
        let mut hist = Vec::new();
        hist.extend(std::iter::repeat_n(0b001u16, 60));
        hist.extend(std::iter::repeat_n(0b010u16, 40));
        hist.extend(std::iter::repeat_n(0b011u16, 30));
        hist.extend(std::iter::repeat_n(0b101u16, 20));
        hist.extend(std::iter::repeat_n(0b111u16, 10));
        let table = ContingencyTable::from_histories(3, hist);
        let e = chao_lower_bound(&table);
        assert_eq!(e.observed, 160);
        assert_eq!(e.f1, 100);
        assert_eq!(e.f2, 50);
        let want = 160.0 + (2.0 / 3.0) * 100.0 * 99.0 / (2.0 * 51.0);
        assert!((e.n_hat - want).abs() < 1e-12);
    }

    #[test]
    fn no_doubletons_still_finite() {
        let table = ContingencyTable::from_histories(2, [0b01u16, 0b01, 0b10]);
        let e = chao_lower_bound(&table);
        assert_eq!(e.f2, 0);
        assert!(e.n_hat.is_finite());
        assert!(e.n_hat >= e.observed as f64);
    }

    #[test]
    fn everything_recaptured_adds_nothing() {
        let table = ContingencyTable::from_histories(2, [0b11u16, 0b11]);
        let e = chao_lower_bound(&table);
        assert_eq!(e.f1, 0);
        assert_eq!(e.n_hat, 2.0);
    }

    #[test]
    fn bound_below_truth_for_homogeneous_population() {
        // Homogeneous 3-source capture, exact expected cells: Chao's bound
        // must not exceed the true N.
        let n: f64 = 10_000.0;
        let p: f64 = 0.3;
        let mut table = ContingencyTable::new(3);
        for mask in 1u16..8 {
            let k = mask.count_ones() as f64;
            let prob = p.powf(k) * (1.0f64 - p).powf(3.0 - k);
            for _ in 0..((n * prob).round() as u64) {
                table.record(mask);
            }
        }
        let e = chao_lower_bound(&table);
        assert!(e.n_hat <= n * 1.001, "bound {} exceeds truth", e.n_hat);
        assert!(e.n_hat > e.observed as f64);
    }
}
