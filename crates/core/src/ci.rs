//! Profile-likelihood estimate ranges (§3.3.3).
//!
//! Following Rcapture, the range for `N̂` treats the ghost count `n₀` as a
//! pseudo-observation: for each candidate `n₀` the model is refitted on all
//! `2^t` cells (the ghost row has only the intercept active) and the
//! maximised log-likelihood `ℓ(n₀)` recorded. The
//! `100(1−α)%` interval is `{n₀ : 2(ℓ_max − ℓ(n₀)) ≤ χ²₁(1−α)}`.
//!
//! As the paper stresses, this is *not* a true confidence interval for this
//! data — the samples are not random draws — so it is reported as a
//! sensitivity heuristic, with the very small `α = 10⁻⁷` used to obtain
//! deliberately wide ranges.

use crate::fit::{fit_llm_opts, CellModel, FitOptions};
use crate::history::ContingencyTable;
use crate::model::LogLinearModel;
use ghosts_obs::{FieldValue, Scope};
use ghosts_stats::glm::{self, GlmError};
use ghosts_stats::optimize::{bisect, expand_until_sign_change, golden_min};
use ghosts_stats::ChiSquared;
use std::cell::Cell;

/// The paper's α for the profile-likelihood ranges.
pub const PAPER_ALPHA: f64 = 1e-7;

/// An estimate range for the total population `N̂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateRange {
    /// Lower end of the range for `N̂`.
    pub lower: f64,
    /// The point estimate `N̂`.
    pub point: f64,
    /// Upper end of the range for `N̂`.
    pub upper: f64,
    /// The α that was used.
    pub alpha: f64,
}

/// Errors from range computation.
#[derive(Debug)]
pub enum CiError {
    /// The underlying fit failed.
    Fit(GlmError),
    /// The profile likelihood never crossed the threshold (upper end not
    /// bracketable within the search budget).
    Unbounded,
}

impl std::fmt::Display for CiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CiError::Fit(e) => write!(f, "fit failed: {e}"),
            CiError::Unbounded => write!(f, "profile likelihood does not bound the interval"),
        }
    }
}

impl std::error::Error for CiError {}

impl From<GlmError> for CiError {
    fn from(e: GlmError) -> Self {
        CiError::Fit(e)
    }
}

/// Profile log-likelihood at ghost count `n0` (≥ 0).
fn profile_loglik(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    fit_opts: &FitOptions,
    n0: f64,
) -> Result<f64, GlmError> {
    let design = model.design_matrix_with_ghost();
    let mut y = Vec::with_capacity(design.rows());
    y.push(n0.max(0.0));
    y.extend(table.observed_cells());
    let family = match cell_model {
        CellModel::Poisson => glm::CountFamily::Poisson,
        CellModel::Truncated { limit } => {
            glm::CountFamily::TruncatedPoisson(vec![limit.max(1); y.len()])
        }
    };
    let fit = glm::fit(&design, &y, &family, fit_opts.glm_options())?;
    Ok(fit.log_likelihood)
}

/// Computes the profile-likelihood range for `N̂` under `model`.
///
/// # Errors
///
/// [`CiError::Fit`] if the model cannot be fitted; [`CiError::Unbounded`]
/// if the profile never drops below the threshold on the upper side.
pub fn profile_interval(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    alpha: f64,
) -> Result<EstimateRange, CiError> {
    profile_interval_traced(table, model, cell_model, alpha, &Scope::disabled())
}

/// [`profile_interval`] with tracing: records the profile-evaluation
/// budget, each bisection's step count, and the resulting range into
/// `obs`.
///
/// # Errors
///
/// Same as [`profile_interval`] (error events are recorded before
/// returning).
pub fn profile_interval_traced(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    alpha: f64,
    obs: &Scope,
) -> Result<EstimateRange, CiError> {
    profile_interval_opts(table, model, cell_model, alpha, &FitOptions::default(), obs)
}

/// [`profile_interval_traced`] with explicit [`FitOptions`] for every
/// profile refit.
///
/// # Errors
///
/// Same as [`profile_interval`] (error events are recorded before
/// returning).
pub fn profile_interval_opts(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    alpha: f64,
    fit_opts: &FitOptions,
    obs: &Scope,
) -> Result<EstimateRange, CiError> {
    let observed = table.observed_total() as f64;
    // Fault site `ci.profile`: a non-finite-fit fault fails the point fit;
    // any other injected fault stands in for a profile likelihood whose
    // upper end cannot be bracketed.
    match ghosts_faultinject::fire("ci.profile") {
        Some(ghosts_faultinject::Fault::NonFiniteFit) => {
            obs.error(
                "ci_fit_failed",
                &[("model", FieldValue::Str(model.describe()))],
            );
            return Err(CiError::Fit(GlmError::NonFiniteFit));
        }
        Some(_) => {
            obs.error(
                "ci_unbounded",
                &[("model", FieldValue::Str(model.describe()))],
            );
            return Err(CiError::Unbounded);
        }
        None => {}
    }
    let point_fit = fit_llm_opts(table, model, cell_model, fit_opts, obs)?;
    let z0_hat = point_fit.z0;
    // The profile search is sequential, so a plain Cell counts evaluations.
    let evals = Cell::new(0u64);

    // Locate the profile maximum near the point estimate (it coincides for
    // Poisson cells up to numerics; golden-search a bracket around it).
    let lo_bracket = 0.0;
    let hi_bracket = (z0_hat * 3.0).max(10.0);
    let neg_ell = |n0: f64| -> f64 {
        evals.set(evals.get() + 1);
        -profile_loglik(table, model, cell_model, fit_opts, n0).unwrap_or(f64::NEG_INFINITY)
    };
    let n0_star = golden_min(neg_ell, lo_bracket, hi_bracket, 1e-8)
        .expect("bracket is well-formed by construction"); // lint: allow(no-unwrap) lo < hi checked above
    let ell_max = profile_loglik(table, model, cell_model, fit_opts, n0_star)?;
    let threshold = ell_max - ChiSquared::new(1.0).quantile(1.0 - alpha) / 2.0;

    // Shifted profile: positive inside the interval, negative outside.
    let g = |n0: f64| -> f64 {
        evals.set(evals.get() + 1);
        profile_loglik(table, model, cell_model, fit_opts, n0).unwrap_or(f64::NEG_INFINITY)
            - threshold
    };

    // Lower end: between 0 and the maximiser.
    let (lower_z0, lower_steps) = if g(0.0) >= 0.0 {
        (0.0, 0)
    } else {
        bisect(g, 0.0, n0_star, 1e-6)
            .map(|r| (r.x, r.iterations))
            .unwrap_or((0.0, 0))
    };
    obs.observe("ci.bisect_steps", lower_steps as u64);
    obs.event(
        "ci_lower",
        &[
            ("z0", FieldValue::F64(lower_z0)),
            ("bisect_steps", FieldValue::U64(lower_steps as u64)),
        ],
    );

    // Upper end: expand beyond the maximiser until the profile drops.
    let step = (n0_star * 0.5).max(10.0);
    let hi = expand_until_sign_change(g, n0_star, step, 80).ok_or_else(|| {
        obs.error("ci_unbounded", &[("z0_hat", FieldValue::F64(z0_hat))]);
        CiError::Unbounded
    })?;
    let upper = bisect(g, n0_star, hi, 1e-6).map_err(|_| {
        obs.error("ci_unbounded", &[("z0_hat", FieldValue::F64(z0_hat))]);
        CiError::Unbounded
    })?;
    obs.observe("ci.bisect_steps", upper.iterations as u64);
    obs.event(
        "ci_upper",
        &[
            ("z0", FieldValue::F64(upper.x)),
            ("bisect_steps", FieldValue::U64(upper.iterations as u64)),
        ],
    );
    obs.add("ci.profile_evaluations", evals.get());
    obs.event(
        "ci",
        &[
            ("lower", FieldValue::F64(observed + lower_z0)),
            ("point", FieldValue::F64(observed + z0_hat)),
            ("upper", FieldValue::F64(observed + upper.x)),
            ("alpha", FieldValue::F64(alpha)),
            ("profile_evaluations", FieldValue::U64(evals.get())),
        ],
    );

    Ok(EstimateRange {
        lower: observed + lower_z0,
        point: observed + z0_hat,
        upper: observed + upper.x,
        alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_table(only1: usize, only2: usize, both: usize) -> ContingencyTable {
        ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, only1)
                .chain(std::iter::repeat_n(0b10, only2))
                .chain(std::iter::repeat_n(0b11, both)),
        )
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let table = lp_table(600, 200, 300);
        let model = LogLinearModel::independence(2);
        let r = profile_interval(&table, &model, CellModel::Poisson, 0.05).unwrap();
        assert!(r.lower <= r.point && r.point <= r.upper, "{r:?}");
        // Point = M + 600·200/300 = 1100 + 400.
        assert!((r.point - 1500.0).abs() < 1.0, "{r:?}");
        // Interval is non-degenerate but not absurd.
        assert!(r.upper - r.lower > 10.0);
        assert!(r.upper - r.lower < 1000.0);
        // The lower end can never go below the observed count.
        assert!(r.lower >= 1100.0);
    }

    #[test]
    fn smaller_alpha_widens_interval() {
        let table = lp_table(600, 200, 300);
        let model = LogLinearModel::independence(2);
        let narrow = profile_interval(&table, &model, CellModel::Poisson, 0.05).unwrap();
        let wide = profile_interval(&table, &model, CellModel::Poisson, PAPER_ALPHA).unwrap();
        assert!(wide.upper > narrow.upper);
        assert!(wide.lower < narrow.lower + 1e-6);
    }

    #[test]
    fn more_overlap_tightens_interval() {
        // High recapture rate → precise estimate → narrow interval.
        let loose = profile_interval(
            &lp_table(500, 500, 50),
            &LogLinearModel::independence(2),
            CellModel::Poisson,
            0.05,
        )
        .unwrap();
        let tight = profile_interval(
            &lp_table(100, 100, 800),
            &LogLinearModel::independence(2),
            CellModel::Poisson,
            0.05,
        )
        .unwrap();
        let rel = |r: &EstimateRange| (r.upper - r.lower) / r.point;
        assert!(rel(&tight) < rel(&loose));
    }

    #[test]
    fn truncated_interval_stays_plausible() {
        let table = lp_table(60, 20, 3);
        let model = LogLinearModel::independence(2);
        let limit = 150u64;
        let r = profile_interval(&table, &model, CellModel::Truncated { limit }, 0.05).unwrap();
        assert!(r.point <= limit as f64 + 1e-6, "{r:?}");
    }
}
