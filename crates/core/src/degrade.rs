//! The graceful-degradation ladder (robustness layer).
//!
//! When the IC-selected log-linear model cannot be fitted — GLM
//! non-convergence, a non-finite fit, an exhausted Newton budget, or a
//! failed profile-interval bisection — the estimator does not abort the
//! run. It walks a fixed, deterministic ladder of fallbacks:
//!
//! 1. **Next-best IC candidate** (§3.3.2's within-7 rule): every other
//!    model the search evaluated whose IC is within `within` units of the
//!    best, tried in (parameter count, IC) order — exactly the order the
//!    within-margin rule would have ranked them.
//! 2. **Independence model**: the baseline every search starts from; it
//!    has the fewest parameters and the best-conditioned design matrix.
//! 3. **Chao lower bound**: a closed-form moment estimator
//!    ([`chao_lower_bound`]) that is a *total function* of the table — it
//!    cannot fail, making it the guaranteed terminal rung.
//!
//! Every ladder transition is recorded as a structured `degradation`
//! trace event (the `ghosts-events/2` kind), and the winning rung is
//! attached to the returned estimate as [`Degradation`] so manifests can
//! report a `degraded` section. The ladder is a pure function of the
//! table and configuration: the rung order, candidate order and tie-breaks
//! contain no timing, randomness or thread-count dependence, so a degraded
//! run is exactly as reproducible as a clean one.

use crate::chao::chao_lower_bound;
use crate::ci::{profile_interval_opts, EstimateRange};
use crate::estimator::{CrConfig, CrEstimate};
use crate::fit::{fit_llm_opts, CellModel};
use crate::history::ContingencyTable;
use crate::model::LogLinearModel;
use crate::select::SelectionResult;
use ghosts_obs::{FieldValue, Scope};

/// A rung of the graceful-degradation ladder, in descending order of
/// fidelity to the paper's method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Another model from the search trace within the IC margin.
    NextBestIc,
    /// The independence model refitted from scratch.
    Independence,
    /// Chao's bias-corrected lower bound (never fails).
    ChaoLowerBound,
}

impl LadderRung {
    /// Stable name used in trace events and manifests.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::NextBestIc => "next-best-ic",
            LadderRung::Independence => "independence",
            LadderRung::ChaoLowerBound => "chao-lower-bound",
        }
    }
}

/// How an estimate was degraded: which stage failed, why, and where the
/// ladder landed.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The stage that failed: `"select"`, `"fit"` or `"ci"`.
    pub stage: String,
    /// Display form of the original error.
    pub reason: String,
    /// What failed — the chosen model's description, or `"(selection)"`
    /// when the search itself failed.
    pub from: String,
    /// The rung the ladder landed on.
    pub rung: LadderRung,
    /// Description of the model (or `"(chao)"`) actually used.
    pub model: String,
}

/// What the estimator asks the ladder to recover.
pub(crate) struct LadderRequest<'a> {
    /// The stratum's table.
    pub table: &'a ContingencyTable,
    /// The cell model of the failed attempt (fallbacks keep truncation).
    pub cell_model: CellModel,
    /// The search trace, when selection succeeded before the failure.
    pub sel: Option<&'a SelectionResult>,
    /// The stage that failed: `"select"`, `"fit"` or `"ci"`.
    pub stage: &'a str,
    /// Display form of the original error.
    pub reason: String,
    /// Description of what failed (model or `"(selection)"`).
    pub from: String,
    /// `Some(alpha)` when the caller also needs a profile range; the
    /// ladder then requires each rung to produce one, and the Chao rung
    /// reports the one-sided range `[n̂, ∞)`.
    pub alpha: Option<f64>,
}

/// Walks the ladder until a rung produces an estimate. Infallible: the
/// Chao rung is a total function of the table.
pub(crate) fn run_ladder(
    req: &LadderRequest<'_>,
    cfg: &CrConfig,
) -> (CrEstimate, Option<EstimateRange>) {
    let span = cfg.obs.child("degrade");
    let mut tried: Vec<String> = vec![req.from.clone()];

    // Rung 1: the remaining within-margin candidates from the search
    // trace, in the within-rule's own ranking order.
    if let Some(sel) = req.sel {
        let mut candidates: Vec<_> = sel
            .evaluated
            .iter()
            .filter(|e| e.ic <= sel.best_ic + cfg.selection.within)
            .collect();
        candidates.sort_by(|a, b| {
            (a.model.num_params())
                .cmp(&b.model.num_params())
                .then(a.ic.total_cmp(&b.ic))
        });
        for cand in candidates {
            let desc = cand.model.describe();
            if tried.contains(&desc) {
                continue;
            }
            tried.push(desc);
            if let Some(out) = attempt(
                req,
                cfg,
                &span,
                LadderRung::NextBestIc,
                &cand.model,
                cand.ic,
                sel.divisor,
            ) {
                return out;
            }
        }
    }

    // Rung 2: the independence baseline (unless it already failed above).
    let independence = LogLinearModel::independence(req.table.num_sources());
    if !tried.contains(&independence.describe()) {
        let divisor = req.sel.map_or(1, |s| s.divisor);
        if let Some(out) = attempt(
            req,
            cfg,
            &span,
            LadderRung::Independence,
            &independence,
            f64::NAN,
            divisor,
        ) {
            return out;
        }
    }

    // Rung 3: Chao's lower bound — closed-form, cannot fail.
    let chao = chao_lower_bound(req.table);
    let est = CrEstimate {
        observed: chao.observed,
        unseen: chao.n_hat - chao.observed as f64,
        total: chao.n_hat,
        model: String::from("(chao)"),
        ic: f64::NAN,
        divisor: 1,
        degraded: Some(Degradation {
            stage: req.stage.to_string(),
            reason: req.reason.clone(),
            from: req.from.clone(),
            rung: LadderRung::ChaoLowerBound,
            model: String::from("(chao)"),
        }),
    };
    record_step(&span, req, LadderRung::ChaoLowerBound, "(chao)", "ok", None);
    // The lower bound pins the bottom of the range; the ladder has no
    // model left to bound the top, so the range is one-sided.
    let range = req.alpha.map(|alpha| EstimateRange {
        lower: chao.n_hat,
        point: chao.n_hat,
        upper: f64::INFINITY,
        alpha,
    });
    (est, range)
}

/// Tries one model rung: refit (and re-profile when a range is needed).
/// Emits one degradation event either way; returns `None` on failure so
/// the ladder continues.
fn attempt(
    req: &LadderRequest<'_>,
    cfg: &CrConfig,
    span: &Scope,
    rung: LadderRung,
    model: &LogLinearModel,
    ic: f64,
    divisor: u64,
) -> Option<(CrEstimate, Option<EstimateRange>)> {
    let desc = model.describe();
    let fit = match fit_llm_opts(req.table, model, req.cell_model, &cfg.fit, span) {
        Ok(fit) => fit,
        Err(e) => {
            record_step(span, req, rung, &desc, "failed", Some(&e.to_string()));
            return None;
        }
    };
    let range = match req.alpha {
        Some(alpha) => {
            match profile_interval_opts(req.table, model, req.cell_model, alpha, &cfg.fit, span) {
                Ok(range) => Some(range),
                Err(e) => {
                    record_step(span, req, rung, &desc, "failed", Some(&e.to_string()));
                    return None;
                }
            }
        }
        None => None,
    };
    record_step(span, req, rung, &desc, "ok", None);
    let est = CrEstimate {
        observed: fit.observed,
        unseen: fit.z0,
        total: fit.n_hat,
        model: desc.clone(),
        ic,
        divisor,
        degraded: Some(Degradation {
            stage: req.stage.to_string(),
            reason: req.reason.clone(),
            from: req.from.clone(),
            rung,
            model: desc,
        }),
    };
    Some((est, range))
}

/// Records one ladder transition as a structured `degradation` event.
fn record_step(
    span: &Scope,
    req: &LadderRequest<'_>,
    rung: LadderRung,
    model: &str,
    outcome: &str,
    error: Option<&str>,
) {
    span.add("degrade.ladder_steps", 1);
    let mut fields = vec![
        ("stage", FieldValue::Str(req.stage.to_string())),
        ("reason", FieldValue::Str(req.reason.clone())),
        ("from", FieldValue::Str(req.from.clone())),
        ("to", FieldValue::Str(rung.name().to_string())),
        ("model", FieldValue::Str(model.to_string())),
        ("outcome", FieldValue::Str(outcome.to_string())),
    ];
    if let Some(e) = error {
        fields.push(("error", FieldValue::Str(e.to_string())));
    }
    span.degradation("ladder_step", &fields);
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use crate::select::{select_model, SelectionOptions};

    fn toy_table() -> ContingencyTable {
        ContingencyTable::from_histories(
            3,
            std::iter::repeat_n(0b001u16, 300)
                .chain(std::iter::repeat_n(0b010, 200))
                .chain(std::iter::repeat_n(0b100, 100))
                .chain(std::iter::repeat_n(0b011, 80))
                .chain(std::iter::repeat_n(0b101, 60))
                .chain(std::iter::repeat_n(0b110, 40))
                .chain(std::iter::repeat_n(0b111, 20)),
        )
    }

    /// With a real search trace, pretending the chosen model failed must
    /// land on another within-margin candidate (not Chao).
    #[test]
    fn next_best_candidate_is_preferred() {
        let table = toy_table();
        let opts = SelectionOptions {
            within: 1e9, // keep every candidate in the margin
            ..Default::default()
        };
        let sel = select_model(&table, CellModel::Poisson, &opts).unwrap();
        let cfg = CrConfig {
            truncated: false,
            selection: opts,
            ..CrConfig::paper()
        };
        let req = LadderRequest {
            table: &table,
            cell_model: CellModel::Poisson,
            sel: Some(&sel),
            stage: "fit",
            reason: String::from("synthetic failure"),
            from: sel.model.describe(),
            alpha: None,
        };
        let (est, range) = run_ladder(&req, &cfg);
        let deg = est.degraded.expect("ladder output is marked degraded");
        assert_eq!(deg.rung, LadderRung::NextBestIc);
        assert_ne!(deg.model, req.from, "must not retry the failed model");
        assert!(est.total > est.observed as f64);
        assert!(range.is_none());
    }

    /// Without a search trace (selection itself failed) the ladder must
    /// refit independence.
    #[test]
    fn selection_failure_falls_back_to_independence() {
        let table = toy_table();
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let req = LadderRequest {
            table: &table,
            cell_model: CellModel::Poisson,
            sel: None,
            stage: "select",
            reason: String::from("non-finite fit"),
            from: String::from("(selection)"),
            alpha: None,
        };
        let (est, _) = run_ladder(&req, &cfg);
        let deg = est.degraded.expect("degraded");
        assert_eq!(deg.rung, LadderRung::Independence);
        assert_eq!(est.model, LogLinearModel::independence(3).describe());
    }

    /// When a range is requested, the fallback rung must produce one that
    /// brackets its own point estimate.
    #[test]
    fn range_request_is_honoured_by_fallback() {
        let table = toy_table();
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let req = LadderRequest {
            table: &table,
            cell_model: CellModel::Poisson,
            sel: None,
            stage: "ci",
            reason: String::from("unbounded profile"),
            from: String::from("[1][2][3]"),
            alpha: Some(0.05),
        };
        let (est, range) = run_ladder(&req, &cfg);
        let range = range.expect("fallback produced a range");
        assert!(range.lower <= est.total && est.total <= range.upper);
    }

    /// The rung names are the stable vocabulary of the `degradation`
    /// events and the manifest section; pin them.
    #[test]
    fn rung_names_are_stable() {
        assert_eq!(LadderRung::NextBestIc.name(), "next-best-ic");
        assert_eq!(LadderRung::Independence.name(), "independence");
        assert_eq!(LadderRung::ChaoLowerBound.name(), "chao-lower-bound");
    }
}
