//! High-level capture–recapture estimation: model selection, fitting and
//! (optionally) stratified totals with the paper's sampling-zeros
//! exclusion rule (§3.3.4, §3.4).

use crate::ci::{profile_interval_opts, CiError, EstimateRange, PAPER_ALPHA};
use crate::degrade::{run_ladder, Degradation, LadderRequest};
use crate::fit::{fit_llm_opts, CellModel, FitOptions};
use crate::history::ContingencyTable;
use crate::invariant;
use crate::parallel::{try_par_map, Parallelism};
use crate::select::{select_model, SelectionOptions, SelectionResult};
use ghosts_obs::{FieldValue, Scope, StageProfiler};
use ghosts_stats::glm::GlmError;

/// Configuration of a CR estimation run.
#[derive(Debug, Clone)]
pub struct CrConfig {
    /// Whether cells are plain Poisson or right-truncated by the routed
    /// space (the limit itself is passed per table, since it differs per
    /// stratum).
    pub truncated: bool,
    /// Model-selection options (IC, divisor rule, interaction order).
    pub selection: SelectionOptions,
    /// Newton-fit knobs (iteration budget included) applied to the final
    /// fit and the profile refits. [`selection_with_obs`] copies them onto
    /// the search so one policy governs every GLM fit of a run.
    pub fit: FitOptions,
    /// Whether fit/selection/range failures walk the graceful-degradation
    /// ladder ([`crate::degrade`]) instead of aborting the estimate. On by
    /// default; [`EstimateError::NotEnoughSources`] is never degradable.
    pub degrade: bool,
    /// Strata with fewer observed individuals than this are not estimated
    /// (the paper excludes country strata with < 1000 observed IPs).
    pub min_stratum_observed: u64,
    /// What an excluded stratum contributes to stratified totals.
    pub excluded_policy: ExcludedPolicy,
    /// Worker threads for the per-stratum fan-out of
    /// [`estimate_stratified`]. Stratum estimates are independent and
    /// summed in stratum order, so every setting yields bit-identical
    /// results; `Fixed(1)` is the sequential path.
    pub parallelism: Parallelism,
    /// Observability scope estimation traces into (disabled by default).
    /// [`estimate_stratified`] derives an indexed child span per stratum,
    /// so parallel strata never share a span.
    pub obs: Scope,
    /// Stage profiler attributing clock time to the select / fit / ci
    /// stages (disabled by default). Callers usually pass a scoped handle
    /// (`profiler.scoped("estimate")`) so stage paths read
    /// `estimate/select`, `estimate/fit`, `estimate/ci`. Durations follow
    /// the profiler's clock and stay in the volatile lane; only the call
    /// counts are deterministic.
    pub profile: StageProfiler,
}

impl Default for CrConfig {
    fn default() -> Self {
        Self {
            truncated: true,
            selection: SelectionOptions::default(),
            fit: FitOptions::default(),
            degrade: true,
            min_stratum_observed: 1000,
            excluded_policy: ExcludedPolicy::ObservedOnly,
            parallelism: Parallelism::Auto,
            obs: Scope::disabled(),
            profile: StageProfiler::disabled(),
        }
    }
}

impl CrConfig {
    /// The paper's headline configuration: right-truncated Poisson cells,
    /// BIC, adaptive divisor with maximum 1000.
    pub fn paper() -> Self {
        Self::default()
    }

    fn cell_model(&self, limit: Option<u64>) -> CellModel {
        match (self.truncated, limit) {
            (true, Some(l)) => CellModel::Truncated { limit: l },
            _ => CellModel::Poisson,
        }
    }
}

/// Contribution of strata that fail the minimum-observed rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcludedPolicy {
    /// Drop entirely (what §3.3.4 does for small country strata, which it
    /// argues are negligible).
    Drop,
    /// Count the observed individuals but estimate no ghosts for them.
    ObservedOnly,
}

/// A point estimate for one table.
#[derive(Debug, Clone)]
pub struct CrEstimate {
    /// Observed individuals `M`.
    pub observed: u64,
    /// Estimated unobserved individuals (ghosts).
    pub unseen: f64,
    /// `N̂ = M + ghosts`.
    pub total: f64,
    /// Bracket notation of the selected model.
    pub model: String,
    /// IC value of the selected model.
    pub ic: f64,
    /// Divisor applied by the scaling rule.
    pub divisor: u64,
    /// `Some` when the estimate came off the graceful-degradation ladder
    /// rather than the primary selected-model path; `None` in clean runs,
    /// so golden values are unaffected.
    pub degraded: Option<Degradation>,
}

/// Errors from high-level estimation.
#[derive(Debug)]
pub enum EstimateError {
    /// CR needs at least two sources.
    NotEnoughSources {
        /// The number of sources supplied.
        got: usize,
    },
    /// Model search / fitting failed.
    Fit(GlmError),
    /// Range computation failed.
    Ci(CiError),
}

impl EstimateError {
    /// A stable kebab-case label for the error class, used by serving and
    /// tracing layers that report errors over a wire format.
    pub fn kind(&self) -> &'static str {
        match self {
            EstimateError::NotEnoughSources { .. } => "not-enough-sources",
            EstimateError::Fit(_) => "fit",
            EstimateError::Ci(_) => "ci",
        }
    }
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::NotEnoughSources { got } => {
                write!(f, "capture-recapture needs >= 2 sources, got {got}")
            }
            EstimateError::Fit(e) => write!(f, "fit failed: {e}"),
            EstimateError::Ci(e) => write!(f, "range computation failed: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<GlmError> for EstimateError {
    fn from(e: GlmError) -> Self {
        EstimateError::Fit(e)
    }
}

impl From<CiError> for EstimateError {
    fn from(e: CiError) -> Self {
        EstimateError::Ci(e)
    }
}

/// Selects a model and estimates the population for one table.
///
/// `limit` is the size of the routed space for this table's stratum — used
/// only when the configuration asks for truncated cells.
///
/// # Errors
///
/// [`EstimateError::NotEnoughSources`] for `t < 2`; fitting errors
/// otherwise.
pub fn estimate_table(
    table: &ContingencyTable,
    limit: Option<u64>,
    cfg: &CrConfig,
) -> Result<CrEstimate, EstimateError> {
    if table.num_sources() < 2 {
        cfg.obs.error(
            "estimate_failed",
            &[
                ("error", FieldValue::Str("not enough sources".to_string())),
                ("sources", FieldValue::U64(table.num_sources() as u64)),
            ],
        );
        return Err(EstimateError::NotEnoughSources {
            got: table.num_sources(),
        });
    }
    invariant::check_table(table);
    if table.observed_total() == 0 {
        cfg.obs.event("estimate_empty", &[]);
        return Ok(CrEstimate {
            observed: 0,
            unseen: 0.0,
            total: 0.0,
            model: String::from("(empty)"),
            ic: f64::NAN,
            divisor: 1,
            degraded: None,
        });
    }
    let cell_model = cfg.cell_model(limit);
    let (est, _) = estimate_cell(table, cell_model, None, cfg)?;
    record_estimate(&cfg.obs, &est);
    Ok(est)
}

/// The shared select → fit (→ range) path of [`estimate_table`] and
/// [`estimate_table_with_range`], with the degradation ladder wrapped
/// around every fallible stage.
fn estimate_cell(
    table: &ContingencyTable,
    cell_model: CellModel,
    alpha: Option<f64>,
    cfg: &CrConfig,
) -> Result<(CrEstimate, Option<EstimateRange>), EstimateError> {
    let degrade = |sel: Option<&SelectionResult>, stage: &str, reason: String, from: String| {
        run_ladder(
            &LadderRequest {
                table,
                cell_model,
                sel,
                stage,
                reason,
                from,
                alpha,
            },
            cfg,
        )
    };
    let selected = {
        let _stage = cfg.profile.enter("select");
        select_model(table, cell_model, &selection_with_obs(cfg))
    };
    let sel = match selected {
        Ok(sel) => sel,
        Err(e) if cfg.degrade => {
            return Ok(degrade(
                None,
                "select",
                e.to_string(),
                String::from("(selection)"),
            ));
        }
        Err(e) => return Err(e.into()),
    };
    let fitted = {
        let _stage = cfg.profile.enter("fit");
        fit_llm_opts(table, &sel.model, cell_model, &cfg.fit, &cfg.obs)
    };
    let fit = match fitted {
        Ok(fit) => fit,
        Err(e) if cfg.degrade => {
            return Ok(degrade(
                Some(&sel),
                "fit",
                e.to_string(),
                sel.model.describe(),
            ));
        }
        Err(e) => return Err(e.into()),
    };
    let range = match alpha {
        Some(alpha_v) => {
            let interval = {
                let _stage = cfg.profile.enter("ci");
                profile_interval_opts(table, &sel.model, cell_model, alpha_v, &cfg.fit, &cfg.obs)
            };
            match interval {
                Ok(range) => Some(range),
                Err(e) if cfg.degrade => {
                    return Ok(degrade(
                        Some(&sel),
                        "ci",
                        e.to_string(),
                        sel.model.describe(),
                    ));
                }
                Err(e) => return Err(e.into()),
            }
        }
        None => None,
    };
    let est = CrEstimate {
        observed: fit.observed,
        unseen: fit.z0,
        total: fit.n_hat,
        model: sel.model.describe(),
        ic: sel.ic,
        divisor: sel.divisor,
        degraded: None,
    };
    Ok((est, range))
}

/// The selection options to actually run with: if the caller did not give
/// the selection its own scope, the search inherits the estimator's.
fn selection_with_obs(cfg: &CrConfig) -> SelectionOptions {
    let mut sel = cfg.selection.clone();
    if !sel.obs.is_enabled() {
        sel.obs = cfg.obs.clone();
    }
    sel
}

/// Records the summary event for one table's estimate. Degraded estimates
/// carry an extra `degraded` field naming the ladder rung; clean runs emit
/// exactly the same bytes as before the ladder existed.
fn record_estimate(obs: &Scope, est: &CrEstimate) {
    obs.add("estimate.count", 1);
    let mut fields = vec![
        ("observed", FieldValue::U64(est.observed)),
        ("unseen", FieldValue::F64(est.unseen)),
        ("total", FieldValue::F64(est.total)),
        ("model", FieldValue::Str(est.model.clone())),
        ("ic", FieldValue::F64(est.ic)),
        ("divisor", FieldValue::U64(est.divisor)),
    ];
    if let Some(deg) = &est.degraded {
        fields.push(("degraded", FieldValue::Str(deg.rung.name().to_string())));
    }
    obs.event("estimate", &fields);
}

/// Like [`estimate_table`] but also computes the profile-likelihood range
/// at the paper's `α = 10⁻⁷`. Under the degradation ladder the estimate
/// and the range always come from the *same* rung; the terminal Chao rung
/// reports the one-sided range `[n̂, ∞)`.
pub fn estimate_table_with_range(
    table: &ContingencyTable,
    limit: Option<u64>,
    cfg: &CrConfig,
) -> Result<(CrEstimate, EstimateRange), EstimateError> {
    if table.num_sources() < 2 {
        return Err(EstimateError::NotEnoughSources {
            got: table.num_sources(),
        });
    }
    invariant::check_table(table);
    let cell_model = cfg.cell_model(limit);
    let (est, range) = estimate_cell(table, cell_model, Some(PAPER_ALPHA), cfg)?;
    let range = range.expect("estimate_cell returns a range when alpha is set"); // lint: allow(no-unwrap) alpha was passed
    record_estimate(&cfg.obs, &est);
    Ok((est, range))
}

/// A point estimate together with the fitted model's expected cell means —
/// the parametric-bootstrap entry point. `expected_cells` follows the
/// layout of [`ContingencyTable::observed_cells`]: mask order `1..2^t`.
#[derive(Debug, Clone)]
pub struct CrFit {
    /// The selected-model point estimate.
    pub estimate: CrEstimate,
    /// Expected count per observed cell under the fitted model (truncated
    /// means when the cell model is right-truncated), mask order `1..2^t`.
    pub expected_cells: Vec<f64>,
}

/// Like [`estimate_table`] but returns the fitted model's expected cell
/// means alongside the estimate, and never walks the degradation ladder:
/// a parametric bootstrap needs a parametric model to resample from, so a
/// selection or fit failure here must surface as an error the replicate
/// engine can isolate, not silently swap in a Chao bound.
///
/// # Errors
///
/// [`EstimateError::NotEnoughSources`] for `t < 2`; selection/fit errors
/// otherwise (regardless of `cfg.degrade`).
pub fn estimate_table_with_fit(
    table: &ContingencyTable,
    limit: Option<u64>,
    cfg: &CrConfig,
) -> Result<CrFit, EstimateError> {
    if table.num_sources() < 2 {
        return Err(EstimateError::NotEnoughSources {
            got: table.num_sources(),
        });
    }
    invariant::check_table(table);
    let cell_model = cfg.cell_model(limit);
    let sel = select_model(table, cell_model, &selection_with_obs(cfg))?;
    let fit = fit_llm_opts(table, &sel.model, cell_model, &cfg.fit, &cfg.obs)?;
    let estimate = CrEstimate {
        observed: fit.observed,
        unseen: fit.z0,
        total: fit.n_hat,
        model: sel.model.describe(),
        ic: sel.ic,
        divisor: sel.divisor,
        degraded: None,
    };
    record_estimate(&cfg.obs, &estimate);
    Ok(CrFit {
        estimate,
        expected_cells: fit.glm.fitted.clone(),
    })
}

/// A stratified estimate: per-stratum results and their sum (§3.4: "we
/// separated each source into the different strata, then used CR to
/// estimate the size of each stratum, and finally we summed up the
/// estimates over all strata").
#[derive(Debug, Clone)]
pub struct StratifiedEstimate {
    /// Per-stratum estimates; `None` where the stratum was excluded by the
    /// minimum-observed rule or failed outright (see [`Self::failed`]).
    pub strata: Vec<Option<CrEstimate>>,
    /// Sum of observed individuals over all strata (including excluded
    /// and failed ones under [`ExcludedPolicy::ObservedOnly`]).
    pub observed_total: u64,
    /// Sum of estimated totals.
    pub estimated_total: f64,
    /// Indices of excluded strata.
    pub excluded: Vec<usize>,
    /// Indices of strata whose estimate came off the degradation ladder.
    pub degraded: Vec<usize>,
    /// Indices of strata that produced no estimate at all — a
    /// non-degradable error (too few sources, or a run with the ladder
    /// switched off) or a worker panic. They contribute like excluded
    /// strata under the configured [`ExcludedPolicy`].
    pub failed: Vec<usize>,
}

impl StratifiedEstimate {
    /// Whether every stratum produced a clean (non-degraded) estimate or
    /// a deliberate exclusion.
    pub fn is_clean(&self) -> bool {
        self.degraded.is_empty() && self.failed.is_empty()
    }
}

/// Estimates every stratum and sums. `limits[i]` is stratum `i`'s routed
/// size (`limits` may be `None` for untruncated runs).
///
/// Infallible by design: per-stratum failures are isolated. A stratum
/// whose model fails walks the degradation ladder inside
/// [`estimate_table`]; a stratum that fails non-degradably (or whose
/// worker panics) is recorded in [`StratifiedEstimate::failed`] with a
/// `stratum_failed` error event, and the remaining strata still produce a
/// partial total. The merge runs in stratum order, so results — including
/// which strata degraded or failed — are bit-identical at every thread
/// count.
///
/// # Panics
///
/// Panics if `limits` is provided with a length different from `tables`.
pub fn estimate_stratified(
    tables: &[ContingencyTable],
    limits: Option<&[u64]>,
    cfg: &CrConfig,
) -> StratifiedEstimate {
    if let Some(ls) = limits {
        assert_eq!(ls.len(), tables.len(), "one limit per stratum required");
    }
    // One task per stratum. When strata already fan out across workers the
    // inner model selection runs sequentially (nested parallelism would
    // oversubscribe cores without changing any result).
    let mut inner = cfg.clone();
    if cfg.parallelism.threads() > 1 && tables.len() > 1 {
        inner.selection.parallelism = Parallelism::SEQUENTIAL;
    }
    let results = try_par_map(cfg.parallelism, tables, |i, table| {
        // Each stratum traces into its own indexed span, owned by exactly
        // one worker — cross-stratum event order is imposed at flush time
        // by the span paths, not by scheduling.
        let mut stratum_cfg = inner.clone();
        stratum_cfg.obs = cfg.obs.child_idx("stratum", i as u64);
        let observed = table.observed_total();
        if observed < cfg.min_stratum_observed {
            stratum_cfg.obs.event(
                "stratum_excluded",
                &[
                    ("observed", FieldValue::U64(observed)),
                    ("threshold", FieldValue::U64(cfg.min_stratum_observed)),
                ],
            );
            return Ok(None);
        }
        // lint: allow(panic-path) limits.len() == tables.len() asserted at function entry
        let limit = limits.map(|ls| ls[i]);
        estimate_table(table, limit, &stratum_cfg).map(Some)
    });
    cfg.obs
        .volatile_add("stratified.par_map_tasks", tables.len() as u64);
    cfg.obs.volatile_max(
        "stratified.par_map_workers",
        cfg.parallelism.threads().min(tables.len().max(1)) as u64,
    );

    // Deterministic merge in stratum order. `stratum_failed` events are
    // appended here (after every worker is done), so within each stratum
    // span they always follow the worker's own events — the same order at
    // every thread count.
    let mut strata = Vec::with_capacity(tables.len());
    let mut observed_total = 0u64;
    let mut estimated_total = 0.0f64;
    let mut excluded = Vec::new();
    let mut degraded = Vec::new();
    let mut failed = Vec::new();
    for (i, result) in results.into_iter().enumerate() {
        // Flatten worker panics and estimation errors into one failure
        // lane; both leave the stratum without an estimate.
        let flat = match result {
            Ok(inner) => inner.map_err(|e| e.to_string()),
            Err(panic_msg) => Err(format!("worker panicked: {panic_msg}")),
        };
        match flat {
            Ok(Some(est)) => {
                if est.degraded.is_some() {
                    degraded.push(i);
                }
                observed_total += est.observed;
                estimated_total += est.total;
                strata.push(Some(est));
            }
            Ok(None) => {
                excluded.push(i);
                if cfg.excluded_policy == ExcludedPolicy::ObservedOnly {
                    // lint: allow(panic-path) i indexes the par_map results, one per table
                    let observed = tables[i].observed_total();
                    observed_total += observed;
                    estimated_total += observed as f64;
                }
                strata.push(None);
            }
            Err(message) => {
                failed.push(i);
                cfg.obs
                    .child_idx("stratum", i as u64)
                    .error("stratum_failed", &[("error", FieldValue::Str(message))]);
                if cfg.excluded_policy == ExcludedPolicy::ObservedOnly {
                    // lint: allow(panic-path) i indexes the par_map results, one per table
                    let observed = tables[i].observed_total();
                    observed_total += observed;
                    estimated_total += observed as f64;
                }
                strata.push(None);
            }
        }
    }
    cfg.obs.event(
        "stratified_total",
        &[
            ("strata", FieldValue::U64(tables.len() as u64)),
            ("excluded", FieldValue::U64(excluded.len() as u64)),
            ("degraded", FieldValue::U64(degraded.len() as u64)),
            ("failed", FieldValue::U64(failed.len() as u64)),
            ("observed_total", FieldValue::U64(observed_total)),
            ("estimated_total", FieldValue::F64(estimated_total)),
        ],
    );
    StratifiedEstimate {
        strata,
        observed_total,
        estimated_total,
        excluded,
        degraded,
        failed,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    /// Simulates a heterogeneous population captured by `t` sources and
    /// returns (table, true N).
    fn simulate(t: usize, n: usize, seed: u64) -> ContingencyTable {
        let mut rng = component_rng(seed, "estimator-test");
        let mut table = ContingencyTable::new(t);
        for _ in 0..n {
            // Two latent classes with different catchabilities.
            let sociable = rng.gen_bool(0.5);
            let mut mask = 0u16;
            for i in 0..t {
                let p = if sociable { 0.5 } else { 0.15 };
                if rng.gen_bool(p) {
                    mask |= 1 << i;
                }
            }
            table.record(mask);
        }
        table
    }

    #[test]
    fn estimate_beats_observed_on_heterogeneous_population() {
        let n = 20_000;
        let table = simulate(4, n, 42);
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let est = estimate_table(&table, None, &cfg).unwrap();
        let observed = est.observed as f64;
        // CR must close most of the gap between observed and truth.
        let obs_err = (n as f64 - observed).abs();
        let est_err = (n as f64 - est.total).abs();
        assert!(
            est_err < obs_err,
            "estimate {} should beat observed {} against truth {}",
            est.total,
            observed,
            n
        );
        assert!(est.total > observed);
    }

    #[test]
    fn truncation_keeps_estimate_plausible() {
        let table = simulate(3, 5_000, 7);
        let observed = table.observed_total();
        // Declare a universe barely above the observed count.
        let limit = observed + 50;
        let cfg = CrConfig::paper();
        let est = estimate_table(&table, Some(limit), &cfg).unwrap();
        assert!(est.total <= limit as f64 + 1e-6, "{est:?}");
    }

    #[test]
    fn empty_table_is_zero() {
        let table = ContingencyTable::new(3);
        let est = estimate_table(&table, None, &CrConfig::paper()).unwrap();
        assert_eq!(est.observed, 0);
        assert_eq!(est.total, 0.0);
    }

    #[test]
    fn one_source_rejected() {
        let table = ContingencyTable::from_histories(1, [1u16, 1, 1]);
        assert!(matches!(
            estimate_table(&table, None, &CrConfig::paper()),
            Err(EstimateError::NotEnoughSources { got: 1 })
        ));
    }

    #[test]
    fn stratified_sums_and_excludes() {
        let big = simulate(3, 30_000, 1);
        let small = simulate(3, 40, 2); // below the 1000 threshold
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let s = estimate_stratified(&[big.clone(), small.clone()], None, &cfg);
        assert_eq!(s.excluded, vec![1]);
        assert!(
            s.is_clean(),
            "clean fixture: {:?} {:?}",
            s.degraded,
            s.failed
        );
        assert!(s.strata[0].is_some() && s.strata[1].is_none());
        // ObservedOnly policy: the small stratum's observed count is in.
        assert_eq!(
            s.observed_total,
            big.observed_total() + small.observed_total()
        );
        assert!(s.estimated_total > s.observed_total as f64);

        // Drop policy: the small stratum vanishes.
        let cfg_drop = CrConfig {
            excluded_policy: ExcludedPolicy::Drop,
            ..cfg
        };
        let s2 = estimate_stratified(&[big.clone(), small], None, &cfg_drop);
        assert_eq!(s2.observed_total, big.observed_total());
    }

    /// A stratum with too few sources is a non-degradable failure: it is
    /// isolated into `failed` and the other strata still sum.
    #[test]
    fn failing_stratum_yields_partial_results() {
        let good = simulate(3, 30_000, 1);
        let bad = ContingencyTable::from_histories(1, std::iter::repeat_n(1u16, 2_000));
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let s = estimate_stratified(&[good.clone(), bad.clone()], None, &cfg);
        assert_eq!(s.failed, vec![1]);
        assert!(s.excluded.is_empty() && s.degraded.is_empty());
        assert!(s.strata[0].is_some() && s.strata[1].is_none());
        // ObservedOnly: the failed stratum still contributes its observed.
        assert_eq!(
            s.observed_total,
            good.observed_total() + bad.observed_total()
        );
        assert!(s.estimated_total > s.observed_total as f64);
    }

    /// Clean estimates are not marked degraded.
    #[test]
    fn clean_estimate_is_not_degraded() {
        let table = simulate(3, 10_000, 9);
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let est = estimate_table(&table, None, &cfg).unwrap();
        assert!(est.degraded.is_none());
    }

    #[test]
    fn range_brackets_point() {
        let table = simulate(3, 5_000, 3);
        let cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let (est, range) = estimate_table_with_range(&table, None, &cfg).unwrap();
        assert!(range.lower <= est.total && est.total <= range.upper);
    }
}
