//! Fitting a log-linear model to a contingency table and extracting the
//! ghost estimate `Ẑ₀₀…₀ = exp(u)` (§3.3.1).

use crate::history::ContingencyTable;
use crate::invariant;
use crate::model::LogLinearModel;
use ghosts_obs::{FieldValue, Scope};
use ghosts_stats::glm::{self, CountFamily, GlmError, GlmFit, GlmOptions};
use ghosts_stats::TruncatedPoisson;

/// The per-cell count distribution used when fitting (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellModel {
    /// Plain Poisson cells.
    Poisson,
    /// Right-truncated Poisson cells bounded by the size of the routed
    /// space of the stratum under study.
    Truncated {
        /// Upper limit `l` (the routed addresses or /24s of the stratum).
        limit: u64,
    },
}

impl CellModel {
    /// The GLM family for `n_cells` observed cells under an optional count
    /// scaling divisor `d` (the IC heuristic scales both counts and limit).
    pub(crate) fn family(&self, n_cells: usize, divisor: u64) -> CountFamily {
        match *self {
            CellModel::Poisson => CountFamily::Poisson,
            CellModel::Truncated { limit } => {
                let scaled = (limit / divisor.max(1)).max(1);
                CountFamily::TruncatedPoisson(vec![scaled; n_cells])
            }
        }
    }
}

/// Knobs for the Newton fits run by the estimation layer, carried on
/// [`CrConfig`](crate::estimator::CrConfig) and
/// [`SelectionOptions`](crate::select::SelectionOptions) so every GLM fit
/// of a run — selection candidates, the final fit, profile refits — obeys
/// one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Maximum Newton iterations; reaching it returns a non-converged fit.
    pub max_iter: usize,
    /// Convergence tolerance on the relative log-likelihood change.
    pub tol: f64,
    /// Hard iteration budget: exhausting it is a structured error
    /// ([`GlmError::BudgetExhausted`]) rather than a silently
    /// non-converged fit, so the degradation ladder can catch it.
    /// `None` disables the budget.
    pub iteration_budget: Option<usize>,
}

impl Default for FitOptions {
    fn default() -> Self {
        let glm = GlmOptions::default();
        Self {
            max_iter: glm.max_iter,
            tol: glm.tol,
            iteration_budget: glm.iteration_budget,
        }
    }
}

impl FitOptions {
    /// The equivalent low-level GLM options.
    pub(crate) fn glm_options(&self) -> GlmOptions {
        GlmOptions {
            max_iter: self.max_iter,
            tol: self.tol,
            iteration_budget: self.iteration_budget,
        }
    }
}

/// A fitted log-linear capture–recapture model.
#[derive(Debug, Clone)]
pub struct FittedLlm {
    /// The model that was fitted.
    pub model: LogLinearModel,
    /// The underlying GLM fit (coefficients in term order).
    pub glm: GlmFit,
    /// Estimated number of unobserved individuals (ghosts).
    pub z0: f64,
    /// Estimated total population `N̂ = M + Ẑ₀`.
    pub n_hat: f64,
    /// Observed total `M`.
    pub observed: u64,
}

/// Fits `model` to `table` under `cell_model`.
///
/// The ghost estimate is `exp(u)` for Poisson cells; under truncation the
/// ghost cell is itself bounded by the *remaining* space `l − M`, so the
/// estimate is the mean of `TruncatedPoisson(exp(u), l − M)` — this is what
/// keeps estimates "always plausible (below the number of routed
/// addresses)" (§6.2).
///
/// # Errors
///
/// Propagates [`GlmError`] from the Newton fitter.
pub fn fit_llm(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
) -> Result<FittedLlm, GlmError> {
    fit_llm_traced(table, model, cell_model, &Scope::disabled())
}

/// [`fit_llm`] with tracing: records the fit event (log-likelihood,
/// Newton iterations, convergence, ghost estimate) and truncation-bound
/// counters into `obs`.
///
/// # Errors
///
/// Propagates [`GlmError`] from the Newton fitter (after recording an
/// error event).
pub fn fit_llm_traced(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    obs: &Scope,
) -> Result<FittedLlm, GlmError> {
    fit_llm_opts(table, model, cell_model, &FitOptions::default(), obs)
}

/// [`fit_llm_traced`] with explicit [`FitOptions`] — the entry point the
/// estimator uses so the configured Newton budget reaches every fit.
///
/// # Errors
///
/// Propagates [`GlmError`] from the Newton fitter (after recording an
/// error event), including [`GlmError::BudgetExhausted`] when a budget is
/// configured and exhausted.
pub fn fit_llm_opts(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    fit_opts: &FitOptions,
    obs: &Scope,
) -> Result<FittedLlm, GlmError> {
    assert_eq!(
        table.num_sources(),
        model.num_sources(),
        "model and table disagree on the number of sources"
    );
    invariant::check_table(table);
    let design = model.design_matrix();
    invariant::check_design(&design);
    let y = table.observed_cells();
    let family = cell_model.family(y.len(), 1);
    let glm = glm::fit(&design, &y, &family, fit_opts.glm_options()).inspect_err(|e| {
        obs.error(
            "fit_failed",
            &[
                ("model", FieldValue::Str(model.describe())),
                ("error", FieldValue::Str(e.to_string())),
            ],
        );
    })?;
    invariant::check_glm(&glm, &y, &family);
    let observed = table.observed_total();
    // lint: allow(panic-path) coef has one entry per design column and the intercept is column 0
    let lambda0 = glm.coef[0].exp();
    let z0 = match cell_model {
        CellModel::Poisson => lambda0,
        CellModel::Truncated { limit } => {
            let remaining = limit.saturating_sub(observed);
            if remaining == 0 {
                obs.add("fit.truncation_exhausted", 1);
                0.0
            } else {
                let mean = TruncatedPoisson::new(lambda0.max(1e-300), remaining).mean();
                // The bound "bites" when the truncated mean is pressed
                // against the remaining space — the estimate would exceed
                // the routed space if unbounded (§6.2's plausibility
                // guarantee doing actual work).
                if mean >= 0.95 * remaining as f64 {
                    obs.add("fit.truncation_bound_hit", 1);
                }
                mean
            }
        }
    };
    obs.add("fit.count", 1);
    obs.observe("fit.glm_iterations", glm.iterations as u64);
    obs.event(
        "fit",
        &[
            ("model", FieldValue::Str(model.describe())),
            ("log_likelihood", FieldValue::F64(glm.log_likelihood)),
            ("iterations", FieldValue::U64(glm.iterations as u64)),
            ("converged", FieldValue::Bool(glm.converged)),
            ("observed", FieldValue::U64(observed)),
            ("z0", FieldValue::F64(z0)),
        ],
    );
    let fitted = FittedLlm {
        model: model.clone(),
        glm,
        z0,
        n_hat: observed as f64 + z0,
        observed,
    };
    invariant::check_estimate(
        &fitted,
        match cell_model {
            CellModel::Poisson => None,
            CellModel::Truncated { limit } => Some(limit),
        },
    );
    Ok(fitted)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    /// Two independent sources: the LLM ghost estimate must equal the
    /// Lincoln–Petersen unseen cell `z10·z01/z11`.
    #[test]
    fn two_source_independence_matches_lincoln_petersen() {
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, 60)
                .chain(std::iter::repeat_n(0b10, 20))
                .chain(std::iter::repeat_n(0b11, 30)),
        );
        let model = LogLinearModel::independence(2);
        let fit = fit_llm(&table, &model, CellModel::Poisson).unwrap();
        close(fit.z0, 60.0 * 20.0 / 30.0, 1e-5);
        close(fit.n_hat, 110.0 + 40.0, 1e-5);
    }

    /// Three independent sources with known marginal probabilities: the
    /// independence LLM must recover the true population within sampling
    /// tolerance when given exact expected cell counts.
    #[test]
    fn three_source_independence_exact_cells() {
        // N = 10_000; capture probabilities p = (0.3, 0.4, 0.5).
        let n: f64 = 10_000.0;
        let p = [0.3, 0.4, 0.5];
        let mut table = ContingencyTable::new(3);
        for mask in 1u16..8 {
            let mut prob = 1.0;
            for (i, &pi) in p.iter().enumerate() {
                prob *= if mask & (1 << i) != 0 { pi } else { 1.0 - pi };
            }
            for _ in 0..((n * prob).round() as u64) {
                table.record(mask);
            }
        }
        let model = LogLinearModel::independence(3);
        let fit = fit_llm(&table, &model, CellModel::Poisson).unwrap();
        // Expected ghosts: N·(0.7·0.6·0.5) = 2100.
        close(fit.z0, 2_100.0, 0.01);
        close(fit.n_hat, 10_000.0, 0.01);
    }

    /// Positive dependence between two of three sources: the saturated
    /// (minus top) model must account for it while the independence model
    /// underestimates.
    #[test]
    fn dependence_correction_with_third_source() {
        // Construct cells with a strong 1-2 interaction: individuals seen
        // by source 1 are twice as likely to be seen by source 2.
        // True N = 8000; p3 = 0.5 independent; p1 = 0.4;
        // p2|1 = 0.6, p2|not1 = 0.3.
        let n: f64 = 8_000.0;
        let mut table = ContingencyTable::new(3);
        let mut ghost_expected = 0.0;
        for s1 in [false, true] {
            for s2 in [false, true] {
                for s3 in [false, true] {
                    let p1: f64 = if s1 { 0.4 } else { 0.6 };
                    let p2: f64 = match (s1, s2) {
                        (true, true) => 0.6,
                        (true, false) => 0.4,
                        (false, true) => 0.3,
                        (false, false) => 0.7,
                    };
                    let p3: f64 = 0.5;
                    let count = n * p1 * p2 * p3;
                    let mask = u16::from(s1) | (u16::from(s2) << 1) | (u16::from(s3) << 2);
                    if mask == 0 {
                        ghost_expected = count;
                        continue;
                    }
                    for _ in 0..(count.round() as u64) {
                        table.record(mask);
                    }
                }
            }
        }
        let indep = fit_llm(&table, &LogLinearModel::independence(3), CellModel::Poisson).unwrap();
        let with_12 = fit_llm(
            &table,
            &LogLinearModel::with_interactions(3, &[0b011]),
            CellModel::Poisson,
        )
        .unwrap();
        // The 1-2 interaction model recovers the truth; independence is
        // biased low (positive correlation → L-P style underestimate).
        close(with_12.z0, ghost_expected, 0.02);
        assert!(
            indep.z0 < with_12.z0 * 0.9,
            "independence {} should undershoot corrected {}",
            indep.z0,
            with_12.z0
        );
    }

    #[test]
    fn truncation_caps_ghosts_by_remaining_space() {
        // Table with big ghost estimate but tiny declared universe.
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, 60)
                .chain(std::iter::repeat_n(0b10, 20))
                .chain(std::iter::repeat_n(0b11, 3)),
        );
        // Poisson ghost estimate would be 60·20/3 = 400.
        let plain = fit_llm(&table, &LogLinearModel::independence(2), CellModel::Poisson).unwrap();
        close(plain.z0, 400.0, 1e-4);
        // Truncated with limit 150 (observed 83, remaining 67): the ghost
        // estimate must stay below 67.
        let trunc = fit_llm(
            &table,
            &LogLinearModel::independence(2),
            CellModel::Truncated { limit: 150 },
        )
        .unwrap();
        assert!(trunc.z0 <= 67.0 + 1e-9, "z0 = {}", trunc.z0);
        assert!(trunc.n_hat <= 150.0 + 1e-9);
        // And it is still a sizeable estimate, not collapsed to zero.
        assert!(trunc.z0 > 40.0, "z0 = {}", trunc.z0);
    }

    #[test]
    fn truncated_far_limit_matches_poisson() {
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, 50)
                .chain(std::iter::repeat_n(0b10, 40))
                .chain(std::iter::repeat_n(0b11, 25)),
        );
        let model = LogLinearModel::independence(2);
        let a = fit_llm(&table, &model, CellModel::Poisson).unwrap();
        let b = fit_llm(&table, &model, CellModel::Truncated { limit: 1 << 30 }).unwrap();
        close(a.z0, b.z0, 1e-6);
    }

    #[test]
    fn exhausted_space_yields_zero_ghosts() {
        let table = ContingencyTable::from_histories(2, [0b01u16, 0b10, 0b11]);
        let fit = fit_llm(
            &table,
            &LogLinearModel::independence(2),
            CellModel::Truncated { limit: 3 },
        )
        .unwrap();
        assert_eq!(fit.z0, 0.0);
        assert_eq!(fit.n_hat, 3.0);
    }

    #[test]
    #[should_panic]
    fn source_count_mismatch_panics() {
        let table = ContingencyTable::new(3);
        let model = LogLinearModel::independence(2);
        let _ = fit_llm(&table, &model, CellModel::Poisson);
    }
}
