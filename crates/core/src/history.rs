//! Capture histories and contingency tables (§3.3.1).
//!
//! For `t` sources, each individual (address or /24 subnet) has a capture
//! history `s₁s₂…s_t`; the observed data reduce to the counts `z_s` of
//! individuals with each history. Histories are bitmasks (`bit i` set ⇔
//! observed by source `i`), and a [`ContingencyTable`] holds the `2^t`
//! counts, with the all-zero cell — the ghosts — unknown.

use ghosts_addrplane::AddrPlane;
use ghosts_net::{AddrSet, SubnetSet};

/// Maximum number of sources a table can hold. The paper uses nine; the
/// `2^t` cell count makes much larger `t` statistically meaningless anyway.
pub const MAX_SOURCES: usize = ghosts_addrplane::MAX_SOURCES;

/// A contingency table of capture-history counts over `t` sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    t: usize,
    /// `counts[mask]` = number of individuals with capture history `mask`.
    /// `counts[0]` is structurally zero (the unknown ghost cell).
    counts: Vec<u64>,
}

impl ContingencyTable {
    /// Creates an empty table over `t` sources.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= MAX_SOURCES`.
    pub fn new(t: usize) -> Self {
        assert!(
            (1..=MAX_SOURCES).contains(&t),
            "ContingencyTable: t = {t} out of range"
        );
        Self {
            t,
            counts: vec![0u64; 1 << t],
        }
    }

    /// Builds a table from per-individual history masks.
    pub fn from_histories<I: IntoIterator<Item = u16>>(t: usize, histories: I) -> Self {
        let mut table = Self::new(t);
        for h in histories {
            table.record(h);
        }
        table
    }

    /// Builds the table for a collection of address sets (one per source)
    /// via the bitwise plane kernel: all `2^t` cells from one walk over
    /// the sources' shared bitmap words, no per-address loop. The result
    /// is bit-identical to [`ContingencyTable::from_addr_sets_per_addr`]
    /// (both compute the same exact partition; the equivalence is pinned
    /// by tests here and asserted on the repro scenario in the bench
    /// crate).
    pub fn from_addr_sets(sources: &[&AddrSet]) -> Self {
        let planes: Vec<&AddrPlane> = sources.iter().map(|s| s.plane()).collect();
        Self::from_planes(&planes)
    }

    /// Builds the table directly from `t` source bitmap planes using the
    /// word-wise 2^t kernel ([`ghosts_addrplane::contingency_counts`]).
    pub fn from_planes(planes: &[&AddrPlane]) -> Self {
        let t = planes.len();
        assert!(
            (1..=MAX_SOURCES).contains(&t),
            "ContingencyTable: t = {t} out of range"
        );
        ContingencyTable {
            t,
            counts: ghosts_addrplane::contingency_counts(planes),
        }
    }

    /// The per-address reference construction: iterates the union of all
    /// sources once and tests membership per source — `O(union · t)`
    /// bitmap probes. Kept as the independently-derived oracle the plane
    /// kernel is checked against.
    pub fn from_addr_sets_per_addr(sources: &[&AddrSet]) -> Self {
        let t = sources.len();
        let mut table = Self::new(t);
        let mut union = AddrSet::new();
        for s in sources {
            union.union_with(s);
        }
        for addr in union.iter() {
            let mut mask = 0u16;
            for (i, s) in sources.iter().enumerate() {
                if s.contains(addr) {
                    mask |= 1 << i;
                }
            }
            table.record(mask);
        }
        table
    }

    /// Builds the table for a collection of /24 subnet sets.
    pub fn from_subnet_sets(sources: &[&SubnetSet]) -> Self {
        let t = sources.len();
        let mut table = Self::new(t);
        let mut union = SubnetSet::new();
        for s in sources {
            union.union_with(s);
        }
        for sub in union.iter() {
            let mut mask = 0u16;
            for (i, s) in sources.iter().enumerate() {
                if s.contains(sub) {
                    mask |= 1 << i;
                }
            }
            table.record(mask);
        }
        table
    }

    /// Builds one table per stratum from address sets. `stratum_of` maps an
    /// address to a stratum index below `n_strata` (or `None` to drop it —
    /// e.g. addresses outside the routed space).
    pub fn stratified_from_addr_sets<F>(
        sources: &[&AddrSet],
        n_strata: usize,
        stratum_of: F,
    ) -> Vec<ContingencyTable>
    where
        F: Fn(u32) -> Option<usize>,
    {
        let t = sources.len();
        let mut tables = vec![Self::new(t); n_strata];
        let mut union = AddrSet::new();
        for s in sources {
            union.union_with(s);
        }
        for addr in union.iter() {
            let Some(stratum) = stratum_of(addr) else {
                continue;
            };
            let mut mask = 0u16;
            for (i, s) in sources.iter().enumerate() {
                if s.contains(addr) {
                    mask |= 1 << i;
                }
            }
            // lint: allow(panic-path) stratum_of's contract: Some(i) implies i < n_strata
            tables[stratum].record(mask);
        }
        tables
    }

    /// Builds one table per stratum from /24 subnet sets. `stratum_of`
    /// receives the subnet's base address.
    pub fn stratified_from_subnet_sets<F>(
        sources: &[&SubnetSet],
        n_strata: usize,
        stratum_of: F,
    ) -> Vec<ContingencyTable>
    where
        F: Fn(u32) -> Option<usize>,
    {
        let t = sources.len();
        let mut tables = vec![Self::new(t); n_strata];
        let mut union = SubnetSet::new();
        for s in sources {
            union.union_with(s);
        }
        for sub in union.iter() {
            let Some(stratum) = stratum_of(SubnetSet::subnet_base(sub)) else {
                continue;
            };
            let mut mask = 0u16;
            for (i, s) in sources.iter().enumerate() {
                if s.contains(sub) {
                    mask |= 1 << i;
                }
            }
            // lint: allow(panic-path) stratum_of's contract: Some(i) implies i < n_strata
            tables[stratum].record(mask);
        }
        tables
    }

    /// Records one individual with history `mask`. A zero mask (individual
    /// seen by no source) is ignored — such individuals are by definition
    /// unobservable.
    pub fn record(&mut self, mask: u16) {
        debug_assert!((mask as usize) < self.counts.len(), "history out of range");
        if mask != 0 {
            // lint: allow(panic-path) mask < 2^t is the documented contract, debug-asserted above
            self.counts[mask as usize] += 1;
        }
    }

    /// Records `n` individuals with history `mask` at once — the bulk
    /// variant the bootstrap resampler uses to rebuild a table from
    /// per-cell replicate counts. A zero mask is ignored, as in
    /// [`ContingencyTable::record`].
    pub fn record_n(&mut self, mask: u16, n: u64) {
        debug_assert!((mask as usize) < self.counts.len(), "history out of range");
        if mask != 0 {
            let cell = &mut self.counts[mask as usize];
            *cell = cell.saturating_add(n);
        }
    }

    /// Number of sources `t`.
    pub fn num_sources(&self) -> usize {
        self.t
    }

    /// Number of cells, `2^t`.
    pub fn num_cells(&self) -> usize {
        self.counts.len()
    }

    /// The count for a specific capture history.
    pub fn count(&self, mask: u16) -> u64 {
        // lint: allow(panic-path) mask < 2^t is the documented contract shared with record()
        self.counts[mask as usize]
    }

    /// Total observed individuals `M = Σ_{s≠0} z_s`.
    pub fn observed_total(&self) -> u64 {
        self.counts.iter().skip(1).sum()
    }

    /// Individuals observed by source `i` (the source's marginal).
    pub fn source_total(&self, i: usize) -> u64 {
        assert!(i < self.t, "source index {i} out of range");
        self.counts
            .iter()
            .enumerate()
            .filter(|(mask, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Individuals observed by both sources `i` and `j`.
    pub fn pair_overlap(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.t && j < self.t, "source index out of range");
        let need = (1u16 << i) | (1 << j);
        self.counts
            .iter()
            .enumerate()
            .filter(|(mask, _)| (*mask as u16) & need == need)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Capture-frequency counts: `f[k]` = number of individuals observed by
    /// exactly `k` sources (`f[0]` is always 0). Used by the Chao baseline.
    pub fn capture_frequencies(&self) -> Vec<u64> {
        let mut f = vec![0u64; self.t + 1];
        for (mask, &c) in self.counts.iter().enumerate() {
            // lint: allow(panic-path) mask < 2^t, so count_ones() <= t < f.len()
            f[mask.count_ones() as usize] += c;
        }
        f
    }

    /// The smallest strictly positive cell count, if any cell is positive.
    /// Drives the adaptive divisor heuristic (§3.3.2).
    pub fn min_positive_count(&self) -> Option<u64> {
        self.counts
            .iter()
            .skip(1)
            .filter(|&&c| c > 0)
            .min()
            .copied()
    }

    /// Observed cell counts in mask order `1..2^t`, as `f64` (the layout
    /// the model fitter consumes).
    pub fn observed_cells(&self) -> Vec<f64> {
        self.counts.iter().skip(1).map(|&c| c as f64).collect()
    }

    /// Collapses the table onto a subset of sources given by `keep`
    /// (indices into the original sources). Individuals observed only by
    /// dropped sources fold into the ghost cell and disappear — exactly
    /// what happens when a data source is removed from the study.
    pub fn marginalize(&self, keep: &[usize]) -> ContingencyTable {
        for &i in keep {
            assert!(i < self.t, "source index {i} out of range");
        }
        let mut out = ContingencyTable::new(keep.len());
        for (mask, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut new_mask = 0u16;
            for (new_i, &old_i) in keep.iter().enumerate() {
                if mask & (1 << old_i) != 0 {
                    new_mask |= 1 << new_i;
                }
            }
            if new_mask != 0 {
                out.counts[new_mask as usize] += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = ContingencyTable::new(3);
        t.record(0b001);
        t.record(0b001);
        t.record(0b011);
        t.record(0b111);
        t.record(0b000); // unobservable: ignored
        assert_eq!(t.observed_total(), 4);
        assert_eq!(t.count(0b001), 2);
        assert_eq!(t.count(0b000), 0);
        assert_eq!(t.source_total(0), 4);
        assert_eq!(t.source_total(1), 2);
        assert_eq!(t.source_total(2), 1);
        assert_eq!(t.pair_overlap(0, 1), 2);
        assert_eq!(t.pair_overlap(1, 2), 1);
    }

    #[test]
    fn from_addr_sets_builds_expected_histories() {
        let s1: AddrSet = [1u32, 2, 3].into_iter().collect();
        let s2: AddrSet = [2u32, 3, 4].into_iter().collect();
        let t = ContingencyTable::from_addr_sets(&[&s1, &s2]);
        assert_eq!(t.count(0b01), 1); // addr 1
        assert_eq!(t.count(0b10), 1); // addr 4
        assert_eq!(t.count(0b11), 2); // addrs 2, 3
        assert_eq!(t.observed_total(), 4);
    }

    #[test]
    fn plane_kernel_is_bit_identical_to_per_addr_path() {
        // Deterministic pseudo-random sources spanning several segments,
        // including plane boundaries.
        let mut sources: Vec<AddrSet> = Vec::new();
        let mut x = 0x2545_f491u32;
        for i in 0..4u32 {
            let mut s = AddrSet::new();
            for _ in 0..600 {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                s.insert(x >> (i % 3));
            }
            s.insert(0);
            s.insert(u32::MAX);
            s.insert((1 << 24) - 1 + i);
            sources.push(s);
        }
        let refs: Vec<&AddrSet> = sources.iter().collect();
        let kernel = ContingencyTable::from_addr_sets(&refs);
        let per_addr = ContingencyTable::from_addr_sets_per_addr(&refs);
        assert_eq!(kernel, per_addr);
        let planes: Vec<_> = sources.iter().map(|s| s.plane()).collect();
        assert_eq!(ContingencyTable::from_planes(&planes), per_addr);
        assert_eq!(crate::contingency_from_planes(&planes), per_addr);
    }

    #[test]
    fn from_subnet_sets_builds_expected_histories() {
        let s1: SubnetSet = [10u32, 20].into_iter().collect();
        let s2: SubnetSet = [20u32, 30].into_iter().collect();
        let t = ContingencyTable::from_subnet_sets(&[&s1, &s2]);
        assert_eq!(t.count(0b11), 1);
        assert_eq!(t.observed_total(), 3);
    }

    #[test]
    fn capture_frequencies() {
        let t = ContingencyTable::from_histories(3, [0b001, 0b010, 0b011, 0b111]);
        let f = t.capture_frequencies();
        assert_eq!(f, vec![0, 2, 1, 1]);
    }

    #[test]
    fn min_positive_count() {
        let t = ContingencyTable::from_histories(2, [0b01, 0b01, 0b10]);
        assert_eq!(t.min_positive_count(), Some(1));
        let empty = ContingencyTable::new(2);
        assert_eq!(empty.min_positive_count(), None);
    }

    #[test]
    fn stratified_addr_sets_split_and_drop() {
        let s1: AddrSet = [1u32, 100, 200].into_iter().collect();
        let s2: AddrSet = [1u32, 100, 300].into_iter().collect();
        // Stratum 0: addr < 150; stratum 1: 150..=250; drop above 250.
        let tables = ContingencyTable::stratified_from_addr_sets(&[&s1, &s2], 2, |a| {
            if a < 150 {
                Some(0)
            } else if a <= 250 {
                Some(1)
            } else {
                None
            }
        });
        assert_eq!(tables[0].observed_total(), 2); // addrs 1, 100
        assert_eq!(tables[0].count(0b11), 2);
        assert_eq!(tables[1].observed_total(), 1); // addr 200
        assert_eq!(tables[1].count(0b01), 1);
    }

    #[test]
    fn marginalize_folds_dropped_sources() {
        let t = ContingencyTable::from_histories(3, [0b001, 0b010, 0b100, 0b110, 0b101]);
        // Keep sources 0 and 2 (drop source 1).
        let m = t.marginalize(&[0, 2]);
        assert_eq!(m.num_sources(), 2);
        // 0b001 → 0b01; 0b010 → dropped; 0b100 → 0b10; 0b110 → 0b10;
        // 0b101 → 0b11.
        assert_eq!(m.count(0b01), 1);
        assert_eq!(m.count(0b10), 2);
        assert_eq!(m.count(0b11), 1);
        assert_eq!(m.observed_total(), 4);
    }

    #[test]
    fn observed_cells_layout() {
        let t = ContingencyTable::from_histories(2, [0b01, 0b10, 0b10, 0b11]);
        assert_eq!(t.observed_cells(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn zero_sources_rejected() {
        ContingencyTable::new(0);
    }
}
