//! Information criteria with the count pre-processing heuristic (§3.3.2).
//!
//! AIC = 2k − 2 ln L and BIC = ln(M)·k − 2 ln L, where `L` is the model
//! likelihood, `k` the number of free parameters, and `M` the number of
//! observed individuals. The Poisson likelihood assumes each source samples
//! uniformly; in reality most randomness comes from *which sources exist*,
//! whose variance is far larger, so the raw Poisson IC over-selects complex
//! models. The paper mitigates this by dividing all cell counts by an
//! integer `d` before computing `L` — either a fixed `d` or the adaptive
//! rule "start at 1000 and halve until `d` is smaller than the smallest
//! cell count" (§3.3.2, §5.1).

use crate::fit::{CellModel, FitOptions};
use crate::history::ContingencyTable;
use crate::model::LogLinearModel;
use ghosts_stats::glm::{self, GlmError};

/// Which information criterion to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcKind {
    /// Akaike information criterion.
    Aic,
    /// Bayesian information criterion (the paper's final choice, §5.1).
    Bic,
}

impl IcKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            IcKind::Aic => "AIC",
            IcKind::Bic => "BIC",
        }
    }
}

/// The count-scaling rule for the IC computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisorRule {
    /// Divide all counts by a fixed integer.
    Fixed(u64),
    /// Start at `start` and halve until the divisor is smaller than the
    /// smallest positive cell count (the paper's adaptive rule with
    /// `start = 1000`).
    Adaptive {
        /// Initial (maximum) divisor.
        start: u64,
    },
}

impl DivisorRule {
    /// The paper's preferred setting: adaptive with a maximum of 1000.
    pub fn adaptive1000() -> Self {
        DivisorRule::Adaptive { start: 1000 }
    }

    /// Resolves the divisor for a given table.
    pub fn divisor_for(&self, table: &ContingencyTable) -> u64 {
        match *self {
            DivisorRule::Fixed(d) => d.max(1),
            DivisorRule::Adaptive { start } => {
                let min_pos = table.min_positive_count().unwrap_or(1);
                let mut d = start.max(1);
                while d >= min_pos && d > 1 {
                    d /= 2;
                }
                d.max(1)
            }
        }
    }

    /// Short label used in Table 3 row names, e.g. `fixed100` or
    /// `adaptive1000`.
    pub fn label(&self) -> String {
        match *self {
            DivisorRule::Fixed(d) => format!("fixed{d}"),
            DivisorRule::Adaptive { start } => format!("adaptive{start}"),
        }
    }
}

/// Scaled cell counts: `round(z_s / d)`, in the fitter's cell order.
pub fn scaled_counts(table: &ContingencyTable, d: u64) -> Vec<f64> {
    table
        .observed_cells()
        .iter()
        .map(|&z| (z / d as f64).round())
        .collect()
}

/// The IC value of a model on a table (lower is better).
#[derive(Debug, Clone)]
pub struct IcResult {
    /// The criterion value.
    pub ic: f64,
    /// Log-likelihood of the scaled data under the fitted model.
    pub log_likelihood: f64,
    /// Number of free parameters `k`.
    pub k: usize,
    /// The divisor that was applied.
    pub divisor: u64,
    /// Newton iterations the underlying GLM fit took (for the trace).
    pub iterations: usize,
    /// Whether that fit converged within its iteration budget.
    pub converged: bool,
}

/// Fits `model` to the **scaled** table and evaluates the criterion.
///
/// The truncation limit is scaled alongside the counts so the bounded cell
/// model stays consistent.
///
/// # Errors
///
/// Propagates [`GlmError`] from the fitter.
pub fn evaluate_ic(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    kind: IcKind,
    rule: DivisorRule,
) -> Result<IcResult, GlmError> {
    evaluate_ic_opts(table, model, cell_model, kind, rule, &FitOptions::default())
}

/// [`evaluate_ic`] with explicit [`FitOptions`], so the model search can
/// impose the run's Newton budget on every candidate fit.
///
/// # Errors
///
/// Propagates [`GlmError`] from the fitter, including
/// [`GlmError::BudgetExhausted`] when a budget is configured.
pub fn evaluate_ic_opts(
    table: &ContingencyTable,
    model: &LogLinearModel,
    cell_model: CellModel,
    kind: IcKind,
    rule: DivisorRule,
    fit_opts: &FitOptions,
) -> Result<IcResult, GlmError> {
    let d = rule.divisor_for(table);
    let y = scaled_counts(table, d);
    let design = model.design_matrix();
    let family = cell_model.family(y.len(), d);
    let fit = glm::fit(&design, &y, &family, fit_opts.glm_options())?;
    let k = model.num_params();
    let m_scaled: f64 = y.iter().sum::<f64>().max(1.0);
    let ic = match kind {
        IcKind::Aic => 2.0 * k as f64 - 2.0 * fit.log_likelihood,
        IcKind::Bic => m_scaled.ln() * k as f64 - 2.0 * fit.log_likelihood,
    };
    Ok(IcResult {
        ic,
        log_likelihood: fit.log_likelihood,
        k,
        divisor: d,
        iterations: fit.iterations,
        converged: fit.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table() -> ContingencyTable {
        ContingencyTable::from_histories(
            3,
            std::iter::repeat_n(0b001u16, 300)
                .chain(std::iter::repeat_n(0b010, 200))
                .chain(std::iter::repeat_n(0b100, 100))
                .chain(std::iter::repeat_n(0b011, 80))
                .chain(std::iter::repeat_n(0b101, 60))
                .chain(std::iter::repeat_n(0b110, 40))
                .chain(std::iter::repeat_n(0b111, 20)),
        )
    }

    #[test]
    fn adaptive_divisor_halves_below_min() {
        let table = toy_table(); // min positive count = 20
        let d = DivisorRule::adaptive1000().divisor_for(&table);
        // 1000 → 500 → 250 → 125 → 62 → 31 → 15 < 20.
        assert_eq!(d, 15);
    }

    #[test]
    fn adaptive_divisor_with_tiny_counts_is_one() {
        let table = ContingencyTable::from_histories(2, [0b01u16, 0b10, 0b11]);
        assert_eq!(DivisorRule::adaptive1000().divisor_for(&table), 1);
    }

    #[test]
    fn fixed_divisor_clamped_to_one() {
        let table = toy_table();
        assert_eq!(DivisorRule::Fixed(0).divisor_for(&table), 1);
        assert_eq!(DivisorRule::Fixed(100).divisor_for(&table), 100);
    }

    #[test]
    fn scaled_counts_round() {
        let table = toy_table();
        let scaled = scaled_counts(&table, 100);
        // Counts 300,200,80,100,60,40,20 in mask order 1..7 → /100 rounded.
        assert_eq!(scaled, vec![3.0, 2.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn aic_penalises_parameters() {
        let table = toy_table();
        let m_simple = LogLinearModel::independence(3);
        let m_complex = LogLinearModel::with_interactions(3, &[0b011, 0b101, 0b110]);
        let simple = evaluate_ic(
            &table,
            &m_simple,
            CellModel::Poisson,
            IcKind::Aic,
            DivisorRule::Fixed(1),
        )
        .unwrap();
        let complex = evaluate_ic(
            &table,
            &m_complex,
            CellModel::Poisson,
            IcKind::Aic,
            DivisorRule::Fixed(1),
        )
        .unwrap();
        // The complex model fits at least as well in likelihood...
        assert!(complex.log_likelihood >= simple.log_likelihood - 1e-6);
        // ...and the penalty structure is visible in k.
        assert_eq!(simple.k, 4);
        assert_eq!(complex.k, 7);
        // AIC difference = 2Δk − 2Δll.
        let want = 2.0 * 3.0 - 2.0 * (complex.log_likelihood - simple.log_likelihood);
        assert!((complex.ic - simple.ic - want).abs() < 1e-9);
    }

    #[test]
    fn bic_penalty_grows_with_m() {
        let table = toy_table();
        let m = LogLinearModel::independence(3);
        let aic = evaluate_ic(
            &table,
            &m,
            CellModel::Poisson,
            IcKind::Aic,
            DivisorRule::Fixed(1),
        )
        .unwrap();
        let bic = evaluate_ic(
            &table,
            &m,
            CellModel::Poisson,
            IcKind::Bic,
            DivisorRule::Fixed(1),
        )
        .unwrap();
        // M = 800 > e², so BIC's per-parameter penalty exceeds AIC's.
        assert!(bic.ic > aic.ic);
        let want = (800.0f64.ln() - 2.0) * 4.0;
        assert!((bic.ic - aic.ic - want).abs() < 1e-9);
    }

    #[test]
    fn scaling_shrinks_likelihood_differences() {
        // The heuristic's purpose: with d > 1 the likelihood advantage of a
        // complex model shrinks, so simpler models win more often.
        let table = toy_table();
        let m_simple = LogLinearModel::independence(3);
        let m_complex = LogLinearModel::with_interactions(3, &[0b011, 0b101, 0b110]);
        let gap = |d: u64| {
            let s = evaluate_ic(
                &table,
                &m_simple,
                CellModel::Poisson,
                IcKind::Aic,
                DivisorRule::Fixed(d),
            )
            .unwrap();
            let c = evaluate_ic(
                &table,
                &m_complex,
                CellModel::Poisson,
                IcKind::Aic,
                DivisorRule::Fixed(d),
            )
            .unwrap();
            c.log_likelihood - s.log_likelihood
        };
        assert!(gap(10) < gap(1));
    }

    #[test]
    fn labels() {
        assert_eq!(DivisorRule::Fixed(100).label(), "fixed100");
        assert_eq!(DivisorRule::adaptive1000().label(), "adaptive1000");
        assert_eq!(IcKind::Aic.name(), "AIC");
        assert_eq!(IcKind::Bic.name(), "BIC");
    }
}
