//! Runtime counterparts of the ghost-lint static rules: validators for the
//! numerical-safety invariants the paper's estimates rest on.
//!
//! Each invariant has a fallible `validate_*` form returning a structured
//! [`InvariantViolation`] (used by tests and by callers that want a `Result`)
//! and a `check_*` form that panics in debug builds and is free in release
//! builds — the debug-assert convention. The `ghost-lint` rule
//! `invariant-usage` statically requires the estimation entry points
//! (`estimator`, `fit`, `select`) to call these.
//!
//! The invariants, tied to the paper:
//!
//! * **Contingency tables** (§3.3.1): exactly `2^t` cells for `t` sources,
//!   and the ghost cell `z₀₀…₀` structurally zero — the all-zero history is
//!   unobservable by definition.
//! * **Design matrices** (§3.3.1): every entry finite. A NaN/∞ row would
//!   silently poison the Newton score and every IC value downstream.
//! * **Fit results** (§3.3.2): finite coefficients and cell means `μ`,
//!   Poisson deviance ≥ 0, and — under the right-truncated refinement —
//!   fitted means within the per-cell truncation bound, which is what keeps
//!   estimates "always plausible (below the number of routed addresses)"
//!   (§6.2).

use crate::fit::FittedLlm;
use crate::history::{ContingencyTable, MAX_SOURCES};
use ghosts_stats::glm::{CountFamily, GlmFit};
use ghosts_stats::special::ln_gamma;
use ghosts_stats::Matrix;

/// Slack for the deviance sign check: the damped Newton loop stops on a
/// relative tolerance, so the fitted log-likelihood may exceed the
/// closed-form saturated value by rounding noise.
const DEVIANCE_SLACK: f64 = 1e-6;

/// A violated invariant, with enough context to locate the bad value.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The table's cell vector is not `2^t` long or `t` is out of range.
    TableShape {
        /// Number of sources the table claims.
        t: usize,
        /// Number of cells it actually holds.
        cells: usize,
    },
    /// The structurally-unobservable ghost cell holds a nonzero count.
    GhostCellNonZero {
        /// The offending count.
        count: u64,
    },
    /// A design-matrix entry is NaN or infinite.
    NonFiniteDesign {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A fitted coefficient is NaN or infinite.
    NonFiniteCoefficient {
        /// Index of the offending coefficient.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A fitted cell mean is NaN, infinite or negative.
    InvalidCellMean {
        /// Index of the offending cell.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The maximised log-likelihood is NaN or infinite.
    NonFiniteLogLikelihood {
        /// The offending value.
        value: f64,
    },
    /// The Poisson deviance `2(ℓ_sat − ℓ̂)` is negative beyond tolerance.
    NegativeDeviance {
        /// The computed deviance.
        deviance: f64,
    },
    /// A truncated cell's fitted mean exceeds its truncation limit.
    MeanAboveLimit {
        /// Index of the offending cell.
        index: usize,
        /// The fitted mean.
        mean: f64,
        /// The cell's inclusive limit.
        limit: u64,
    },
    /// The ghost estimate is NaN, infinite or negative.
    InvalidGhostEstimate {
        /// The offending `z₀` value.
        value: f64,
    },
    /// The estimated total exceeds the declared universe (routed space).
    TotalAboveUniverse {
        /// The estimated total `N̂`.
        total: f64,
        /// The universe bound.
        limit: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::TableShape { t, cells } => {
                write!(f, "table over {t} sources holds {cells} cells, want 2^{t}")
            }
            InvariantViolation::GhostCellNonZero { count } => {
                write!(f, "ghost cell z0 holds {count}, must be structurally 0")
            }
            InvariantViolation::NonFiniteDesign { row, col, value } => {
                write!(f, "design[{row},{col}] = {value} is not finite")
            }
            InvariantViolation::NonFiniteCoefficient { index, value } => {
                write!(f, "coefficient {index} = {value} is not finite")
            }
            InvariantViolation::InvalidCellMean { index, value } => {
                write!(f, "fitted mean {index} = {value} (want finite, >= 0)")
            }
            InvariantViolation::NonFiniteLogLikelihood { value } => {
                write!(f, "log-likelihood {value} is not finite")
            }
            InvariantViolation::NegativeDeviance { deviance } => {
                write!(f, "Poisson deviance {deviance} < 0")
            }
            InvariantViolation::MeanAboveLimit { index, mean, limit } => {
                write!(
                    f,
                    "fitted mean {index} = {mean} above truncation limit {limit}"
                )
            }
            InvariantViolation::InvalidGhostEstimate { value } => {
                write!(f, "ghost estimate z0 = {value} (want finite, >= 0)")
            }
            InvariantViolation::TotalAboveUniverse { total, limit } => {
                write!(f, "estimated total {total} exceeds universe {limit}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Validates the shape invariants of a contingency table (§3.3.1): `t` in
/// range, exactly `2^t` cells, ghost cell structurally zero.
///
/// # Errors
///
/// The first violated invariant.
pub fn validate_table(table: &ContingencyTable) -> Result<(), InvariantViolation> {
    let t = table.num_sources();
    if !(1..=MAX_SOURCES).contains(&t) || table.num_cells() != 1usize << t {
        return Err(InvariantViolation::TableShape {
            t,
            cells: table.num_cells(),
        });
    }
    if table.count(0) != 0 {
        return Err(InvariantViolation::GhostCellNonZero {
            count: table.count(0),
        });
    }
    Ok(())
}

/// Validates that every design-matrix entry is finite.
///
/// # Errors
///
/// The first non-finite entry.
pub fn validate_design(design: &Matrix) -> Result<(), InvariantViolation> {
    for row in 0..design.rows() {
        for col in 0..design.cols() {
            // lint: allow(panic-path) row/col iterate the matrix's own dimensions
            let value = design[(row, col)];
            if !value.is_finite() {
                return Err(InvariantViolation::NonFiniteDesign { row, col, value });
            }
        }
    }
    Ok(())
}

/// The saturated Poisson log-likelihood `ℓ_sat = Σ y ln y − y − ln Γ(y+1)`
/// (a `y = 0` cell contributes `0`). The reference point of the deviance.
fn poisson_saturated_loglik(y: &[f64]) -> f64 {
    y.iter()
        .map(|&v| {
            if v <= 0.0 {
                0.0
            } else {
                v * v.ln() - v - ln_gamma(v + 1.0)
            }
        })
        .sum()
}

/// Validates a GLM fit against the observed cells and family: finite
/// coefficients, finite non-negative means, finite log-likelihood; Poisson
/// deviance ≥ 0; truncated means within their cell limits.
///
/// # Errors
///
/// The first violated invariant.
pub fn validate_glm(
    fit: &GlmFit,
    y: &[f64],
    family: &CountFamily,
) -> Result<(), InvariantViolation> {
    for (index, &value) in fit.coef.iter().enumerate() {
        if !value.is_finite() {
            return Err(InvariantViolation::NonFiniteCoefficient { index, value });
        }
    }
    for (index, &value) in fit.fitted.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            return Err(InvariantViolation::InvalidCellMean { index, value });
        }
    }
    if !fit.log_likelihood.is_finite() {
        return Err(InvariantViolation::NonFiniteLogLikelihood {
            value: fit.log_likelihood,
        });
    }
    match family {
        CountFamily::Poisson => {
            let deviance = 2.0 * (poisson_saturated_loglik(y) - fit.log_likelihood);
            if deviance < -DEVIANCE_SLACK * (1.0 + fit.log_likelihood.abs()) {
                return Err(InvariantViolation::NegativeDeviance { deviance });
            }
        }
        CountFamily::TruncatedPoisson(limits) => {
            for (index, (&mean, &limit)) in fit.fitted.iter().zip(limits).enumerate() {
                if mean > limit as f64 * (1.0 + DEVIANCE_SLACK) {
                    return Err(InvariantViolation::MeanAboveLimit { index, mean, limit });
                }
            }
        }
    }
    Ok(())
}

/// Validates a finished log-linear fit: ghost estimate finite and
/// non-negative, and the total within the declared universe when one is
/// given (§6.2's plausibility guarantee).
///
/// # Errors
///
/// The first violated invariant.
pub fn validate_estimate(fit: &FittedLlm, limit: Option<u64>) -> Result<(), InvariantViolation> {
    if !fit.z0.is_finite() || fit.z0 < 0.0 {
        return Err(InvariantViolation::InvalidGhostEstimate { value: fit.z0 });
    }
    if let Some(l) = limit {
        if fit.n_hat > l as f64 * (1.0 + DEVIANCE_SLACK) + DEVIANCE_SLACK {
            return Err(InvariantViolation::TotalAboveUniverse {
                total: fit.n_hat,
                limit: l,
            });
        }
    }
    Ok(())
}

/// Debug-assert form of [`validate_table`]: free in release builds.
#[inline]
pub fn check_table(table: &ContingencyTable) {
    if cfg!(debug_assertions) {
        if let Err(violation) = validate_table(table) {
            // lint: allow(panic-path) deliberate fail-fast: debug-only invariant check
            panic!("contingency-table invariant violated: {violation}");
        }
    }
}

/// Debug-assert form of [`validate_design`]: free in release builds.
#[inline]
pub fn check_design(design: &Matrix) {
    if cfg!(debug_assertions) {
        if let Err(violation) = validate_design(design) {
            // lint: allow(panic-path) deliberate fail-fast: debug-only invariant check
            panic!("design-matrix invariant violated: {violation}");
        }
    }
}

/// Debug-assert form of [`validate_glm`]: free in release builds.
#[inline]
pub fn check_glm(fit: &GlmFit, y: &[f64], family: &CountFamily) {
    if cfg!(debug_assertions) {
        if let Err(violation) = validate_glm(fit, y, family) {
            // lint: allow(panic-path) deliberate fail-fast: debug-only invariant check
            panic!("fit-result invariant violated: {violation}");
        }
    }
}

/// Debug-assert form of [`validate_estimate`]: free in release builds.
#[inline]
pub fn check_estimate(fit: &FittedLlm, limit: Option<u64>) {
    if cfg!(debug_assertions) {
        if let Err(violation) = validate_estimate(fit, limit) {
            // lint: allow(panic-path) deliberate fail-fast: debug-only invariant check
            panic!("estimate invariant violated: {violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit_llm, CellModel};
    use crate::model::LogLinearModel;

    fn table() -> ContingencyTable {
        ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, 60)
                .chain(std::iter::repeat_n(0b10, 20))
                .chain(std::iter::repeat_n(0b11, 30)),
        )
    }

    #[test]
    fn healthy_pipeline_passes_every_validator() {
        let t = table();
        validate_table(&t).unwrap();
        let model = LogLinearModel::independence(2);
        validate_design(&model.design_matrix()).unwrap();
        let fit = fit_llm(&t, &model, CellModel::Poisson).unwrap();
        validate_glm(&fit.glm, &t.observed_cells(), &CountFamily::Poisson).unwrap();
        validate_estimate(&fit, None).unwrap();
        validate_estimate(&fit, Some(1 << 20)).unwrap();
    }

    #[test]
    fn nan_design_is_rejected() {
        let mut m = Matrix::zeros(2, 2);
        m[(1, 0)] = f64::NAN;
        assert!(matches!(
            validate_design(&m),
            Err(InvariantViolation::NonFiniteDesign { row: 1, col: 0, .. })
        ));
    }

    #[test]
    fn doctored_fit_results_are_rejected() {
        let t = table();
        let model = LogLinearModel::independence(2);
        let y = t.observed_cells();
        let good = fit_llm(&t, &model, CellModel::Poisson).unwrap();

        let mut bad_coef = good.glm.clone();
        bad_coef.coef[0] = f64::INFINITY;
        assert!(matches!(
            validate_glm(&bad_coef, &y, &CountFamily::Poisson),
            Err(InvariantViolation::NonFiniteCoefficient { index: 0, .. })
        ));

        let mut bad_mean = good.glm.clone();
        bad_mean.fitted[1] = -3.0;
        assert!(matches!(
            validate_glm(&bad_mean, &y, &CountFamily::Poisson),
            Err(InvariantViolation::InvalidCellMean { index: 1, .. })
        ));

        let mut bad_ll = good.glm.clone();
        bad_ll.log_likelihood = f64::NAN;
        assert!(matches!(
            validate_glm(&bad_ll, &y, &CountFamily::Poisson),
            Err(InvariantViolation::NonFiniteLogLikelihood { .. })
        ));

        // A log-likelihood above the saturated bound means deviance < 0.
        let mut bad_dev = good.glm.clone();
        bad_dev.log_likelihood += 1.0e3;
        assert!(matches!(
            validate_glm(&bad_dev, &y, &CountFamily::Poisson),
            Err(InvariantViolation::NegativeDeviance { .. })
        ));
    }

    #[test]
    fn truncated_means_must_respect_limits() {
        let t = table();
        let model = LogLinearModel::independence(2);
        let y = t.observed_cells();
        let fit = fit_llm(&t, &model, CellModel::Truncated { limit: 1 << 16 }).unwrap();
        let family = CountFamily::TruncatedPoisson(vec![1 << 16; y.len()]);
        validate_glm(&fit.glm, &y, &family).unwrap();
        // The same fit against a tiny claimed limit violates the bound.
        let tight = CountFamily::TruncatedPoisson(vec![1; y.len()]);
        assert!(matches!(
            validate_glm(&fit.glm, &y, &tight),
            Err(InvariantViolation::MeanAboveLimit { .. })
        ));
    }

    #[test]
    fn estimate_above_universe_is_rejected() {
        let t = table();
        let model = LogLinearModel::independence(2);
        let fit = fit_llm(&t, &model, CellModel::Poisson).unwrap();
        // Poisson fit (z0 = 40): claiming a universe of 120 < n_hat = 150
        // must trip the plausibility bound.
        assert!(matches!(
            validate_estimate(&fit, Some(120)),
            Err(InvariantViolation::TotalAboveUniverse { .. })
        ));
        let mut bad = fit.clone();
        bad.z0 = f64::NAN;
        assert!(matches!(
            validate_estimate(&bad, None),
            Err(InvariantViolation::InvalidGhostEstimate { .. })
        ));
    }

    #[test]
    fn deviance_reference_is_zero_for_saturated_fit() {
        // Fitting the saturated model reproduces the counts, so the Poisson
        // deviance must be ~0 (and in particular not negative).
        let t = table();
        let model = LogLinearModel::saturated(2);
        let fit = fit_llm(&t, &model, CellModel::Poisson).unwrap();
        let y = t.observed_cells();
        let deviance = 2.0 * (poisson_saturated_loglik(&y) - fit.glm.log_likelihood);
        assert!(deviance.abs() < 1e-5, "deviance {deviance}");
        validate_glm(&fit.glm, &y, &CountFamily::Poisson).unwrap();
    }
}
