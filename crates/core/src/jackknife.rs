//! Burnham–Overton jackknife estimators for model Mh.
//!
//! The paper's reference [9] (Chao's overview of closed capture–recapture
//! models) catalogues the classical estimators for heterogeneous capture
//! probabilities (model *Mh*). Alongside Chao's moment bound ([`crate::chao`])
//! the standard tool is the **jackknife** family (Burnham & Overton 1978),
//! which corrects the observed count with linear combinations of the
//! capture-frequency counts `f₁…f_k`:
//!
//! `N̂_J1 = M + ((t−1)/t)·f₁`, `N̂_J2 = M + ((2t−3)/t)·f₁ − ((t−2)²/(t(t−1)))·f₂`, …
//!
//! Rcapture ships the same estimators; they complete this crate's baseline
//! suite for §5-style comparisons against the log-linear models.

use crate::history::ContingencyTable;

/// A jackknife estimate of a given order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JackknifeEstimate {
    /// Jackknife order (1–5).
    pub order: usize,
    /// The population estimate.
    pub n_hat: f64,
    /// Approximate variance of the estimate (Burnham & Overton's
    /// coefficient-based formula).
    pub variance: f64,
}

/// Errors from the jackknife estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JackknifeError {
    /// Order must be 1–5.
    BadOrder {
        /// The requested order.
        got: usize,
    },
    /// Need at least `order + 1` capture occasions.
    NotEnoughOccasions {
        /// Occasions available.
        t: usize,
        /// Order requested.
        order: usize,
    },
}

impl std::fmt::Display for JackknifeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JackknifeError::BadOrder { got } => {
                write!(f, "jackknife order must be 1-5, got {got}")
            }
            JackknifeError::NotEnoughOccasions { t, order } => {
                write!(
                    f,
                    "order-{order} jackknife needs > {order} occasions, got {t}"
                )
            }
        }
    }
}

impl std::error::Error for JackknifeError {}

/// Coefficients `a_k(i)` such that `N̂_Jk = M + Σ_i a_k(i)·f_i`
/// (Burnham & Overton 1978, as implemented by Rcapture).
fn coefficients(order: usize, t: f64) -> Vec<f64> {
    match order {
        1 => vec![(t - 1.0) / t],
        2 => vec![
            (2.0 * t - 3.0) / t,
            -((t - 2.0) * (t - 2.0)) / (t * (t - 1.0)),
        ],
        3 => vec![
            (3.0 * t - 6.0) / t,
            -(3.0 * t * t - 15.0 * t + 19.0) / (t * (t - 1.0)),
            (t - 3.0).powi(3) / (t * (t - 1.0) * (t - 2.0)),
        ],
        4 => vec![
            (4.0 * t - 10.0) / t,
            -(6.0 * t * t - 36.0 * t + 55.0) / (t * (t - 1.0)),
            (4.0 * t * t * t - 42.0 * t * t + 148.0 * t - 175.0) / (t * (t - 1.0) * (t - 2.0)),
            -(t - 4.0).powi(4) / (t * (t - 1.0) * (t - 2.0) * (t - 3.0)),
        ],
        5 => vec![
            (5.0 * t - 15.0) / t,
            -(10.0 * t * t - 70.0 * t + 125.0) / (t * (t - 1.0)),
            (10.0 * t * t * t - 120.0 * t * t + 485.0 * t - 660.0) / (t * (t - 1.0) * (t - 2.0)),
            -((t - 4.0).powi(4) * (4.0 * t - 15.0)) / (t * (t - 1.0) * (t - 2.0) * (t - 3.0)),
            (t - 5.0).powi(5) / (t * (t - 1.0) * (t - 2.0) * (t - 3.0) * (t - 4.0)),
        ],
        _ => unreachable!("validated by caller"),
    }
}

/// Computes the order-`order` jackknife estimate from a contingency table.
///
/// # Errors
///
/// [`JackknifeError::BadOrder`] outside 1–5;
/// [`JackknifeError::NotEnoughOccasions`] when `t <= order`.
pub fn jackknife(
    table: &ContingencyTable,
    order: usize,
) -> Result<JackknifeEstimate, JackknifeError> {
    if !(1..=5).contains(&order) {
        return Err(JackknifeError::BadOrder { got: order });
    }
    let t = table.num_sources();
    if t <= order {
        return Err(JackknifeError::NotEnoughOccasions { t, order });
    }
    let f = table.capture_frequencies();
    let m = table.observed_total() as f64;
    let coef = coefficients(order, t as f64);
    // N̂ = Σ_{i≤k} (1 + a_i)·f_i + Σ_{i>k} f_i. Treating the frequency
    // counts as independent Poisson gives Var(N̂) = Σ (1+a_i)²·f_i plus the
    // unweighted tail — the working approximation Burnham & Overton use.
    let mut n_hat = m;
    let mut variance = 0.0;
    for (i, a) in coef.iter().enumerate() {
        let fi = f.get(i + 1).copied().unwrap_or(0) as f64;
        n_hat += a * fi;
        variance += (1.0 + a) * (1.0 + a) * fi;
    }
    for fi in f.iter().skip(coef.len() + 1) {
        variance += *fi as f64;
    }
    Ok(JackknifeEstimate {
        order,
        n_hat,
        variance: variance.max(0.0),
    })
}

/// Burnham & Overton's selection rule, simplified as Rcapture does: walk
/// the orders upward and stop when the increment `N̂_{k+1} − N̂_k` is no
/// longer significant relative to its spread; here, when the relative
/// increment drops below 2%. Returns the selected estimate.
///
/// # Errors
///
/// Propagates [`JackknifeError`] from the underlying orders (at least the
/// first order must be computable).
pub fn jackknife_select(table: &ContingencyTable) -> Result<JackknifeEstimate, JackknifeError> {
    let mut current = jackknife(table, 1)?;
    for order in 2..=5 {
        let Ok(next) = jackknife(table, order) else {
            break; // not enough occasions for higher orders
        };
        let increment = (next.n_hat - current.n_hat).abs();
        if increment < 0.02 * current.n_hat {
            break;
        }
        current = next;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    fn heterogeneous_table(t: usize, n: u32, seed: u64) -> ContingencyTable {
        let mut rng = component_rng(seed, "jack");
        let mut table = ContingencyTable::new(t);
        for _ in 0..n {
            let p: f64 = if rng.gen_bool(0.5) { 0.45 } else { 0.10 };
            let mut mask = 0u16;
            for i in 0..t {
                if rng.gen_bool(p) {
                    mask |= 1 << i;
                }
            }
            table.record(mask);
        }
        table
    }

    #[test]
    fn first_order_formula() {
        // J1 = M + ((t-1)/t)·f1.
        let table = ContingencyTable::from_histories(
            4,
            std::iter::repeat_n(0b0001u16, 40)
                .chain(std::iter::repeat_n(0b0011, 25))
                .chain(std::iter::repeat_n(0b0111, 10)),
        );
        let j1 = jackknife(&table, 1).unwrap();
        assert!((j1.n_hat - (75.0 + 0.75 * 40.0)).abs() < 1e-12);
        assert!(j1.variance > 0.0);
    }

    #[test]
    fn orders_validated() {
        let table = heterogeneous_table(3, 1_000, 1);
        assert!(matches!(
            jackknife(&table, 0),
            Err(JackknifeError::BadOrder { got: 0 })
        ));
        assert!(matches!(
            jackknife(&table, 6),
            Err(JackknifeError::BadOrder { got: 6 })
        ));
        assert!(matches!(
            jackknife(&table, 3),
            Err(JackknifeError::NotEnoughOccasions { t: 3, order: 3 })
        ));
        assert!(jackknife(&table, 2).is_ok());
    }

    #[test]
    fn corrects_upward_under_heterogeneity() {
        let n = 20_000u32;
        let table = heterogeneous_table(5, n, 2);
        let m = table.observed_total() as f64;
        let j = jackknife_select(&table).unwrap();
        assert!(j.n_hat > m, "jackknife must add mass above observed");
        assert!(j.n_hat <= f64::from(n) * 1.15, "overshoot: {}", j.n_hat);
        // And it reduces the error vs using the observed count.
        let obs_err = (f64::from(n) - m).abs();
        let jk_err = (f64::from(n) - j.n_hat).abs();
        assert!(jk_err < obs_err, "J{} {} vs obs {}", j.order, j.n_hat, m);
    }

    #[test]
    fn homogeneous_population_known_positive_bias() {
        // The jackknife is an Mh estimator: on *homogeneous* data it is
        // known to overestimate (Burnham & Overton discuss exactly this).
        // It must still land between the observed count and a bounded
        // overshoot — and well above the naive observed baseline's error
        // band on the unseen side.
        let mut rng = component_rng(3, "jack-hom");
        let n = 10_000u32;
        let mut table = ContingencyTable::new(5);
        for _ in 0..n {
            let mut mask = 0u16;
            for i in 0..5 {
                if rng.gen_bool(0.3) {
                    mask |= 1 << i;
                }
            }
            table.record(mask);
        }
        let m = table.observed_total() as f64;
        let j = jackknife_select(&table).unwrap();
        assert!(j.n_hat > m, "must correct upward");
        assert!(
            j.n_hat < f64::from(n) * 1.30,
            "J{} overshoot {} vs truth {n}",
            j.order,
            j.n_hat
        );
        // The overshoot can even exceed the observed count's undershoot on
        // homogeneous data — which is precisely why the paper prefers
        // model-selected log-linear models over fixed Mh corrections.
    }

    #[test]
    fn selection_walks_orders() {
        let table = heterogeneous_table(6, 30_000, 5);
        let j = jackknife_select(&table).unwrap();
        assert!((1..=5).contains(&j.order));
        // Selection never returns less than J1.
        let j1 = jackknife(&table, 1).unwrap();
        assert!(j.n_hat >= j1.n_hat * 0.98);
    }
}
