//! # ghosts-core
//!
//! The primary contribution of *Capturing Ghosts: Predicting the Used IPv4
//! Space by Inferring Unobserved Addresses* (Zander, Andrew & Armitage,
//! IMC 2014): log-linear capture–recapture estimation of the true
//! population of used IPv4 addresses — including the addresses no
//! measurement source ever observed — from multiple incomplete sources.
//!
//! ## Pipeline
//!
//! 1. Build a [`ContingencyTable`](history::ContingencyTable) of capture
//!    histories from per-source observation sets (§3.3.1).
//! 2. Search hierarchical [`LogLinearModel`](model::LogLinearModel)s with
//!    [`select::select_model`] — AIC/BIC with the divisor heuristic and the
//!    within-7 rule (§3.3.2).
//! 3. Fit with [`fit::fit_llm`] under Poisson or **right-truncated
//!    Poisson** cells bounded by the routed space (§3.3.1) and read off the
//!    ghost estimate `Ẑ₀₀…₀ = exp(u)`.
//! 4. Optionally compute a profile-likelihood range with
//!    [`ci::profile_interval`] (§3.3.3) and stratified totals with
//!    [`estimator::estimate_stratified`] (§3.4).
//!
//! The classical baselines — [`lp`] (Lincoln–Petersen/Chapman) and
//! [`chao`] (Chao's lower bound) — are included for comparison, as are all
//! the validation hooks the paper's §5 needs. The paper's stated future
//! work — multi-party CR without revealing addresses (§8) — is prototyped
//! in [`mpcr`] via k-minhash sketches.
//!
//! ## Quick example
//!
//! ```
//! use ghosts_core::history::ContingencyTable;
//! use ghosts_core::estimator::{estimate_table, CrConfig};
//!
//! // Three sources; histories as bitmasks (bit i = seen by source i).
//! let table = ContingencyTable::from_histories(
//!     3,
//!     std::iter::repeat(0b001u16).take(300)
//!         .chain(std::iter::repeat(0b010).take(200))
//!         .chain(std::iter::repeat(0b100).take(250))
//!         .chain(std::iter::repeat(0b011).take(60))
//!         .chain(std::iter::repeat(0b101).take(80))
//!         .chain(std::iter::repeat(0b110).take(50))
//!         .chain(std::iter::repeat(0b111).take(20)),
//! );
//! let cfg = CrConfig { truncated: false, ..CrConfig::paper() };
//! let est = estimate_table(&table, None, &cfg).unwrap();
//! assert!(est.total > est.observed as f64); // ghosts were inferred
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chao;
pub mod ci;
pub mod degrade;
pub mod estimator;
pub mod fit;
pub mod history;
pub mod ic;
pub mod invariant;
pub mod jackknife;
pub mod lp;
pub mod model;
pub mod mpcr;
pub mod parallel;
pub mod select;

pub use chao::{chao_lower_bound, ChaoEstimate};
pub use ci::{
    profile_interval, profile_interval_opts, profile_interval_traced, EstimateRange, PAPER_ALPHA,
};
pub use degrade::{Degradation, LadderRung};
pub use estimator::{
    estimate_stratified, estimate_table, estimate_table_with_fit, estimate_table_with_range,
    CrConfig, CrEstimate, CrFit, EstimateError, ExcludedPolicy, StratifiedEstimate,
};
pub use fit::{fit_llm, fit_llm_opts, fit_llm_traced, CellModel, FitOptions, FittedLlm};
pub use history::ContingencyTable;

/// Builds all `2^t` capture-history cells directly from `t` source
/// bitmap planes — the word-wise kernel path
/// ([`ContingencyTable::from_planes`]) as a free function, for callers
/// holding raw `ghosts_addrplane::AddrPlane`s.
pub fn contingency_from_planes(planes: &[&ghosts_addrplane::AddrPlane]) -> ContingencyTable {
    ContingencyTable::from_planes(planes)
}
pub use ic::{DivisorRule, IcKind};
pub use jackknife::{jackknife, jackknife_select, JackknifeEstimate};
pub use lp::{chapman, lincoln_petersen, lincoln_petersen_pair, TwoSampleEstimate};
pub use model::LogLinearModel;
pub use mpcr::{mpcr_estimate, MinHashSketch, MpcrResult};
pub use parallel::{panic_message, par_map, try_par_map, Parallelism};
pub use select::{select_model, SelectionOptions, SelectionResult};
