//! The two-sample Lincoln–Petersen estimator (§3.2) and Chapman's
//! bias-corrected variant — the classical baselines the log-linear models
//! generalise.
//!
//! The paper uses L-P only didactically (its independence and homogeneity
//! assumptions are violated by the IPv4 sources), but notes that when the
//! sign of the inter-source correlation is known, L-P gives a plausible
//! bound: positively correlated sources make it an under-estimate, negative
//! correlation an over-estimate (§3.2.2).

use crate::history::ContingencyTable;

/// A two-sample capture–recapture estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSampleEstimate {
    /// First-sample size `M`.
    pub m: u64,
    /// Second-sample size `C`.
    pub c: u64,
    /// Recaptures `R` (individuals in both samples).
    pub r: u64,
    /// The population estimate `N̂`.
    pub n_hat: f64,
    /// Approximate variance of `N̂` (Seber's formula); `inf` when `R = 0`.
    pub variance: f64,
}

/// Errors for the two-sample estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No recaptured individuals — the classical L-P estimate is undefined
    /// (Chapman still works; see [`chapman`]).
    NoRecaptures,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no recaptured individuals: Lincoln-Petersen undefined")
    }
}

impl std::error::Error for LpError {}

/// The classical Lincoln–Petersen estimate `N̂ = M·C / R`.
///
/// # Errors
///
/// [`LpError::NoRecaptures`] when `r == 0`.
pub fn lincoln_petersen(m: u64, c: u64, r: u64) -> Result<TwoSampleEstimate, LpError> {
    if r == 0 {
        return Err(LpError::NoRecaptures);
    }
    let (mf, cf, rf) = (m as f64, c as f64, r as f64);
    let n_hat = mf * cf / rf;
    // Seber's approximate variance of the L-P estimator.
    let variance = mf * cf * (mf - rf) * (cf - rf) / (rf * rf * rf);
    Ok(TwoSampleEstimate {
        m,
        c,
        r,
        n_hat,
        variance,
    })
}

/// Chapman's bias-corrected estimator
/// `N̂ = (M+1)(C+1)/(R+1) − 1`, defined even with zero recaptures.
pub fn chapman(m: u64, c: u64, r: u64) -> TwoSampleEstimate {
    let (mf, cf, rf) = (m as f64, c as f64, r as f64);
    let n_hat = (mf + 1.0) * (cf + 1.0) / (rf + 1.0) - 1.0;
    let variance =
        (mf + 1.0) * (cf + 1.0) * (mf - rf) * (cf - rf) / ((rf + 1.0) * (rf + 1.0) * (rf + 2.0));
    TwoSampleEstimate {
        m,
        c,
        r,
        n_hat,
        variance,
    }
}

/// Applies Lincoln–Petersen to a pair of sources in a contingency table.
///
/// # Errors
///
/// [`LpError::NoRecaptures`] when the pair has no overlap.
pub fn lincoln_petersen_pair(
    table: &ContingencyTable,
    i: usize,
    j: usize,
) -> Result<TwoSampleEstimate, LpError> {
    lincoln_petersen(
        table.source_total(i),
        table.source_total(j),
        table.pair_overlap(i, j),
    )
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // M = 200 marked; C = 150 captured; R = 30 recaptured → N̂ = 1000.
        let e = lincoln_petersen(200, 150, 30).unwrap();
        assert_eq!(e.n_hat, 1000.0);
        assert!(e.variance > 0.0);
    }

    #[test]
    fn chapman_less_than_lp_and_defined_at_zero() {
        let lp = lincoln_petersen(200, 150, 30).unwrap();
        let ch = chapman(200, 150, 30);
        assert!(ch.n_hat < lp.n_hat);
        // R = 0: Chapman is still finite.
        let ch0 = chapman(10, 10, 0);
        assert_eq!(ch0.n_hat, 11.0 * 11.0 - 1.0);
        assert!(lincoln_petersen(10, 10, 0).is_err());
    }

    #[test]
    fn full_overlap_gives_union() {
        // Second sample a subset of the first: N̂ = M.
        let e = lincoln_petersen(100, 40, 40).unwrap();
        assert_eq!(e.n_hat, 100.0);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn from_contingency_table() {
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, 60)
                .chain(std::iter::repeat_n(0b10, 20))
                .chain(std::iter::repeat_n(0b11, 30)),
        );
        let e = lincoln_petersen_pair(&table, 0, 1).unwrap();
        assert_eq!(e.m, 90);
        assert_eq!(e.c, 50);
        assert_eq!(e.r, 30);
        assert_eq!(e.n_hat, 150.0);
    }

    #[test]
    fn positive_correlation_underestimates() {
        // Ground truth N = 1000; both sources see the same biased half.
        // Sources: each observes 400 of the same 500 "popular" individuals,
        // overlapping in 320. L-P: 400·400/320 = 500 < 1000.
        let e = lincoln_petersen(400, 400, 320).unwrap();
        assert!(e.n_hat < 1000.0);
    }
}
