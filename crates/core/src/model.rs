//! Log-linear model structure (§3.3.1).
//!
//! A model is a set of *terms* `u_h`, one per subset `h` of sources, with
//! `log E[Z_s] = Σ_{h ⊆ h(s)} u_h`. Terms are bitmasks; the empty mask is
//! the intercept `u`, single-bit masks are main effects, multi-bit masks are
//! interactions standing for (apparent) source dependence. Model selection
//! (§3.3.2) chooses which interaction terms are forced to zero; the
//! `t`-way term `u_{12…t}` is always zero by convention, since the system
//! would otherwise be under-determined.
//!
//! Models are kept **hierarchical**: a term is only present if all its
//! sub-terms are. This is the standard restriction for interpretable
//! log-linear models and is what Rcapture fits.

use ghosts_stats::Matrix;

/// A hierarchical log-linear model over `t` sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearModel {
    t: usize,
    /// Sorted term masks; always starts with `0` (the intercept).
    terms: Vec<u16>,
}

impl LogLinearModel {
    /// The independence model: intercept plus all `t` main effects, no
    /// interactions. The starting point of model selection.
    pub fn independence(t: usize) -> Self {
        assert!((1..=super::history::MAX_SOURCES).contains(&t));
        let mut terms: Vec<u16> = vec![0];
        terms.extend((0..t).map(|i| 1u16 << i));
        Self { t, terms }
    }

    /// The saturated model minus the `t`-way interaction: every term of
    /// order `< t` (the customary `u_{12…t} = 0` restriction).
    pub fn saturated(t: usize) -> Self {
        assert!((1..=super::history::MAX_SOURCES).contains(&t));
        let full = (1u16 << t) - 1;
        let terms: Vec<u16> = (0..=full).filter(|&m| m != full || t == 1).collect();
        Self { t, terms }
    }

    /// Builds a model from explicit term masks. The intercept and all main
    /// effects are added implicitly.
    ///
    /// # Panics
    ///
    /// Panics if the resulting term set is not hierarchical, if any mask
    /// uses bits `>= t`, or if the full `t`-way term is included for `t>1`.
    pub fn with_interactions(t: usize, interactions: &[u16]) -> Self {
        let mut model = Self::independence(t);
        let mut masks = interactions.to_vec();
        masks.sort_by_key(|m| (m.count_ones(), *m));
        for m in masks {
            model = model.with_term(m);
        }
        model
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.t
    }

    /// Number of free parameters `k` (including the intercept).
    pub fn num_params(&self) -> usize {
        self.terms.len()
    }

    /// The term masks, sorted ascending (intercept first).
    pub fn terms(&self) -> &[u16] {
        &self.terms
    }

    /// The interaction terms only (order ≥ 2).
    pub fn interactions(&self) -> Vec<u16> {
        self.terms
            .iter()
            .copied()
            .filter(|m| m.count_ones() >= 2)
            .collect()
    }

    /// Whether the model contains term `mask`.
    pub fn contains_term(&self, mask: u16) -> bool {
        self.terms.binary_search(&mask).is_ok()
    }

    /// A new model with `mask` (and nothing else) added.
    ///
    /// # Panics
    ///
    /// Panics if the term is out of range, equals the full `t`-way
    /// interaction (fixed to zero by convention, `t > 1`), or would break
    /// the hierarchy (some proper sub-term missing).
    pub fn with_term(&self, mask: u16) -> Self {
        assert!(
            (mask as u32) < (1u32 << self.t),
            "term {mask:#b} out of range for t = {}",
            self.t
        );
        let full = (1u16 << self.t) - 1;
        assert!(
            !(self.t > 1 && mask == full),
            "the full {}-way interaction is fixed to zero",
            self.t
        );
        if self.contains_term(mask) {
            return self.clone();
        }
        // Hierarchy: all proper submasks must already be present.
        let mut sub = (mask.wrapping_sub(1)) & mask;
        loop {
            assert!(
                self.contains_term(sub),
                "adding {mask:#b} breaks hierarchy: missing sub-term {sub:#b}"
            );
            if sub == 0 {
                break;
            }
            sub = sub.wrapping_sub(1) & mask;
        }
        let mut terms = self.terms.clone();
        let pos = terms.binary_search(&mask).unwrap_err();
        terms.insert(pos, mask);
        Self { t: self.t, terms }
    }

    /// A new model with `mask` removed, or `None` if removing it would
    /// break the hierarchy (a super-term present) or it is a mandatory term
    /// (intercept or main effect).
    pub fn without_term(&self, mask: u16) -> Option<Self> {
        if mask.count_ones() < 2 || !self.contains_term(mask) {
            return None;
        }
        if self.terms.iter().any(|&m| m != mask && m & mask == mask) {
            return None; // a super-term depends on it
        }
        let terms = self.terms.iter().copied().filter(|&m| m != mask).collect();
        Some(Self { t: self.t, terms })
    }

    /// Interaction masks that can legally be added next (hierarchy holds
    /// after addition, full `t`-way term excluded).
    pub fn addable_terms(&self, max_order: u32) -> Vec<u16> {
        // lint: allow(counting-overflow) t <= 16 (u16 histories), so 1 << t fits in u32
        let full = (1u32 << self.t) - 1;
        // lint: allow(counting-overflow) t <= 16 (u16 histories), so 1 << t fits in u32
        (3..(1u32 << self.t))
            .filter(|&m| {
                let mask = m as u16;
                let order = mask.count_ones();
                order >= 2
                    && order <= max_order
                    && (self.t == 1 || m != full)
                    && !self.contains_term(mask)
                    && self.submasks_present(mask)
            })
            .map(|m| m as u16)
            .collect()
    }

    fn submasks_present(&self, mask: u16) -> bool {
        let mut sub = mask.wrapping_sub(1) & mask;
        loop {
            if !self.contains_term(sub) {
                return false;
            }
            if sub == 0 {
                return true;
            }
            sub = sub.wrapping_sub(1) & mask;
        }
    }

    /// The design matrix over the observed cells (history masks
    /// `1..2^t − 1`, in ascending mask order): entry `(s−1, j)` is 1 iff
    /// term `j` is a subset of history `s`.
    pub fn design_matrix(&self) -> Matrix {
        self.design_matrix_rows(false)
    }

    /// The design matrix including the ghost cell as the **first** row
    /// (history mask 0: only the intercept applies). Used by the
    /// profile-likelihood interval, which treats the ghost count as data.
    pub fn design_matrix_with_ghost(&self) -> Matrix {
        self.design_matrix_rows(true)
    }

    fn design_matrix_rows(&self, include_ghost: bool) -> Matrix {
        let cells = (1usize << self.t) - 1;
        let rows = cells + usize::from(include_ghost);
        let mut m = Matrix::zeros(rows, self.terms.len());
        let mut row = 0;
        if include_ghost {
            // lint: allow(panic-path) rows >= 1 when include_ghost; column 0 is the intercept
            m[(0, 0)] = 1.0; // intercept only
            row = 1;
        }
        for s in 1..=(cells as u16) {
            for (j, &h) in self.terms.iter().enumerate() {
                if h & s == h {
                    // lint: allow(panic-path) row walks the matrix's own rows, j its columns
                    m[(row, j)] = 1.0;
                }
            }
            row += 1;
        }
        m
    }

    /// Human-readable description, e.g. `[1] [2] [3] [12] [13]` in the
    /// conventional log-linear bracket notation (source indices 1-based).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for &term in &self.terms {
            if term == 0 {
                continue;
            }
            out.push('[');
            for i in 0..self.t {
                if term & (1 << i) != 0 {
                    out.push_str(&(i + 1).to_string());
                    if self.t > 9 {
                        out.push(' ');
                    }
                }
            }
            out.push(']');
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn independence_model_terms() {
        let m = LogLinearModel::independence(3);
        assert_eq!(m.terms(), &[0, 1, 2, 4]);
        assert_eq!(m.num_params(), 4);
        assert!(m.interactions().is_empty());
    }

    #[test]
    fn saturated_excludes_top_term() {
        let m = LogLinearModel::saturated(3);
        assert_eq!(m.num_params(), 7); // 8 subsets minus the 3-way term
        assert!(!m.contains_term(0b111));
        assert!(m.contains_term(0b011));
    }

    #[test]
    fn with_term_keeps_hierarchy() {
        let m = LogLinearModel::independence(3).with_term(0b011);
        assert!(m.contains_term(0b011));
        assert_eq!(m.num_params(), 5);
        // Adding an existing term is a no-op.
        assert_eq!(m.with_term(0b011).num_params(), 5);
    }

    #[test]
    #[should_panic]
    fn with_term_rejects_hierarchy_break() {
        // 3-way term without its 2-way subsets (and it's the full term).
        LogLinearModel::independence(4).with_term(0b0111);
    }

    #[test]
    #[should_panic]
    fn full_interaction_rejected() {
        LogLinearModel::saturated(3).with_term(0b111);
    }

    #[test]
    fn without_term_respects_dependencies() {
        let m = LogLinearModel::with_interactions(4, &[0b0011, 0b0101, 0b0110, 0b0111]);
        // 0b0011 supports the 3-way 0b0111: cannot remove.
        assert!(m.without_term(0b0011).is_none());
        // The 3-way itself can go.
        let m2 = m.without_term(0b0111).unwrap();
        assert!(!m2.contains_term(0b0111));
        // Main effects never removable.
        assert!(m.without_term(0b0001).is_none());
    }

    #[test]
    fn addable_terms_enumeration() {
        let m = LogLinearModel::independence(3);
        let addable = m.addable_terms(2);
        assert_eq!(addable, vec![0b011, 0b101, 0b110]);
        // With pairwise all in, the 3-way is the only order-3 candidate, but
        // it is the full term and stays excluded.
        let m2 = LogLinearModel::with_interactions(3, &[0b011, 0b101, 0b110]);
        assert!(m2.addable_terms(3).is_empty());
        // For t = 4 a 3-way term becomes addable once its pairs are in —
        // alongside the pairwise terms involving source 4.
        let m3 = LogLinearModel::with_interactions(4, &[0b0011, 0b0101, 0b0110]);
        assert_eq!(m3.addable_terms(3), vec![0b0111, 0b1001, 0b1010, 0b1100]);
        // Restricting to pairs drops the triple.
        assert_eq!(m3.addable_terms(2), vec![0b1001, 0b1010, 0b1100]);
    }

    #[test]
    fn design_matrix_independence_three_sources() {
        let m = LogLinearModel::independence(2);
        let x = m.design_matrix();
        // Rows: masks 01, 10, 11; cols: intercept, s1, s2.
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 3);
        assert_eq!(x.row(0), &[1.0, 1.0, 0.0]);
        assert_eq!(x.row(1), &[1.0, 0.0, 1.0]);
        assert_eq!(x.row(2), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn design_matrix_with_ghost_row() {
        let m = LogLinearModel::independence(2);
        let x = m.design_matrix_with_ghost();
        assert_eq!(x.rows(), 4);
        assert_eq!(x.row(0), &[1.0, 0.0, 0.0]); // ghost: intercept only
        assert_eq!(x.row(1), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn interaction_column_marks_superset_histories() {
        let m = LogLinearModel::with_interactions(3, &[0b011]);
        let x = m.design_matrix();
        // Terms sorted: 0, 1, 2, 0b011, 4. Column of 0b011 is index 3.
        // Histories with both sources 1 and 2: masks 0b011 (row 2) and
        // 0b111 (row 6).
        let col = 3;
        for (row, mask) in (1u16..8).enumerate() {
            let want = if mask & 0b011 == 0b011 { 1.0 } else { 0.0 };
            assert_eq!(x[(row, col)], want, "mask {mask:#b}");
        }
    }

    #[test]
    fn describe_format() {
        let m = LogLinearModel::with_interactions(3, &[0b011]);
        assert_eq!(m.describe(), "[1][2][12][3]");
    }
}
