//! Multi-party capture–recapture from sketches — the paper's stated
//! future work (§8: "We plan to explore an enhanced method [33] for
//! securely applying CR to multi-source measurement data without
//! revealing which IPv4 addresses each source contains").
//!
//! Each party publishes only a **k-minhash sketch** of its salted-hashed
//! address set. A coordinator merges the sketches into a union sketch,
//! then asks each party for a membership bit-vector over the union's k
//! sample hashes. The k samples are a uniform sample of the union, so the
//! per-sample capture histories estimate the contingency-table cell
//! *proportions*; scaling by the union-cardinality estimate recovers the
//! cell counts, and the ordinary log-linear machinery runs unchanged.
//!
//! What leaks: per party, the membership of k salted hashes (≪ the full
//! set), plus its approximate cardinality. The production design in the
//! paper's reference [33] replaces the salted hash with proper
//! cryptographic primitives; this module reproduces the *estimation*
//! mechanics and quantifies the accuracy cost of sketching.

use crate::estimator::{estimate_table, CrConfig, CrEstimate, EstimateError};
use crate::history::ContingencyTable;
use ghosts_net::AddrSet;

/// A k-minhash sketch of a hashed address set.
#[derive(Debug, Clone)]
pub struct MinHashSketch {
    k: usize,
    salt: u64,
    /// The k smallest salted hashes, ascending (fewer if the set is
    /// smaller than k).
    mins: Vec<u64>,
    /// Exact set size (parties are willing to reveal cardinalities; the
    /// paper publishes its per-source counts in Table 2).
    size: u64,
}

/// Salted 64-bit hash of one address (splitmix-style).
fn salted_hash(salt: u64, addr: u32) -> u64 {
    let mut z = salt ^ (u64::from(addr).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MinHashSketch {
    /// Sketches a party's address set. All parties must share `salt`
    /// (in [33] this is replaced by an oblivious keyed primitive).
    pub fn build(addrs: &AddrSet, k: usize, salt: u64) -> Self {
        assert!(k > 0, "sketch size must be positive");
        // Keep the k smallest hashes via a bounded max-heap.
        let mut heap: std::collections::BinaryHeap<u64> = std::collections::BinaryHeap::new();
        for addr in addrs.iter() {
            let h = salted_hash(salt, addr);
            if heap.len() < k {
                heap.push(h);
            // lint: allow(no-unwrap) heap holds exactly k > 0 items on this branch
            } else if h < *heap.peek().expect("non-empty at capacity") {
                heap.pop();
                heap.push(h);
            }
        }
        let mut mins = heap.into_vec();
        mins.sort_unstable();
        Self {
            k,
            salt,
            mins,
            size: addrs.len(),
        }
    }

    /// Sketch size parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The party's exact cardinality.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Merges sketches into the sketch of the union.
    ///
    /// # Panics
    ///
    /// Panics on mismatched `k` or salt, or an empty input.
    pub fn union(sketches: &[&MinHashSketch]) -> MinHashSketch {
        let first = sketches.first().expect("at least one sketch"); // lint: allow(no-unwrap) documented panic
        let mut all: Vec<u64> = Vec::new();
        for s in sketches {
            assert_eq!(s.k, first.k, "mismatched sketch sizes");
            assert_eq!(s.salt, first.salt, "mismatched salts");
            all.extend_from_slice(&s.mins);
        }
        all.sort_unstable();
        all.dedup();
        all.truncate(first.k);
        MinHashSketch {
            k: first.k,
            salt: first.salt,
            mins: all,
            size: 0, // union size is estimated, not revealed
        }
    }

    /// Estimates the cardinality of the sketched set from the k-th
    /// smallest hash: `(k − 1) · 2⁶⁴ / h_(k)`.
    pub fn cardinality_estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            // The whole set is inside the sketch: exact count.
            return self.mins.len() as f64;
        }
        let kth = *self.mins.last().expect("k > 0"); // lint: allow(no-unwrap) k validated in new()
        if kth == 0 {
            return self.mins.len() as f64;
        }
        (self.k as f64 - 1.0) * (u64::MAX as f64) / (kth as f64)
    }

    /// The union's sample hashes the coordinator sends to every party.
    pub fn sample_hashes(&self) -> &[u64] {
        &self.mins
    }

    /// A party's membership bit-vector over the coordinator's sample.
    /// (The only per-element information a party ever reveals.)
    pub fn membership_of(addrs: &AddrSet, salt: u64, samples: &[u64]) -> Vec<bool> {
        let mut mine: Vec<u64> = addrs.iter().map(|a| salted_hash(salt, a)).collect();
        mine.sort_unstable();
        samples
            .iter()
            .map(|h| mine.binary_search(h).is_ok())
            .collect()
    }
}

/// The outcome of a multi-party estimation round.
#[derive(Debug, Clone)]
pub struct MpcrResult {
    /// The sketch-estimated contingency table (cell counts scaled from
    /// the k-sample to the estimated union size).
    pub table: ContingencyTable,
    /// Estimated union cardinality.
    pub union_estimate: f64,
    /// The CR estimate computed from the sketched table.
    pub estimate: CrEstimate,
}

/// Runs the full multi-party protocol: sketch → merge → membership →
/// scaled table → log-linear estimate.
///
/// # Errors
///
/// Propagates estimation failures from the log-linear machinery.
///
/// # Panics
///
/// Panics if fewer than two parties are given.
pub fn mpcr_estimate(
    parties: &[&AddrSet],
    k: usize,
    salt: u64,
    limit: Option<u64>,
    cfg: &CrConfig,
) -> Result<MpcrResult, EstimateError> {
    assert!(parties.len() >= 2, "capture-recapture needs two parties");
    let sketches: Vec<MinHashSketch> = parties
        .iter()
        .map(|p| MinHashSketch::build(p, k, salt))
        .collect();
    let refs: Vec<&MinHashSketch> = sketches.iter().collect();
    let union = MinHashSketch::union(&refs);
    let union_estimate = union.cardinality_estimate();
    let samples = union.sample_hashes();

    // Membership vectors — the only per-element exchange.
    let memberships: Vec<Vec<bool>> = parties
        .iter()
        .map(|p| MinHashSketch::membership_of(p, salt, samples))
        .collect();

    // Per-sample capture histories → cell proportions → scaled counts.
    let t = parties.len();
    let mut cell_samples = vec![0u64; 1 << t];
    for i in 0..samples.len() {
        let mut mask = 0u16;
        for (j, m) in memberships.iter().enumerate() {
            if m[i] {
                mask |= 1 << j;
            }
        }
        cell_samples[mask as usize] += 1;
    }
    let total_samples: u64 = cell_samples.iter().sum();
    let mut table = ContingencyTable::new(t);
    if total_samples > 0 {
        let scale = union_estimate / total_samples as f64;
        for (mask, &count) in cell_samples.iter().enumerate() {
            if mask == 0 || count == 0 {
                continue;
            }
            let scaled = (count as f64 * scale).round() as u64;
            for _ in 0..scaled {
                table.record(mask as u16);
            }
        }
    }
    let estimate = estimate_table(&table, limit, cfg)?;
    Ok(MpcrResult {
        table,
        union_estimate,
        estimate,
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    fn random_set(n: u32, seed: u64) -> AddrSet {
        let mut rng = component_rng(seed, "mpcr");
        let mut s = AddrSet::new();
        while s.len() < u64::from(n) {
            s.insert(rng.gen::<u32>());
        }
        s
    }

    #[test]
    fn cardinality_estimate_accuracy() {
        for &n in &[2_000u32, 20_000, 80_000] {
            let set = random_set(n, u64::from(n));
            let sketch = MinHashSketch::build(&set, 1_024, 99);
            let est = sketch.cardinality_estimate();
            let rel = (est - f64::from(n)).abs() / f64::from(n);
            assert!(rel < 0.15, "n = {n}: estimate {est} ({rel:.3} rel err)");
        }
    }

    #[test]
    fn small_set_is_exact() {
        let set = random_set(100, 5);
        let sketch = MinHashSketch::build(&set, 1_024, 99);
        assert_eq!(sketch.cardinality_estimate(), 100.0);
    }

    #[test]
    fn union_sketch_equals_sketch_of_union() {
        let a = random_set(5_000, 1);
        let b = random_set(5_000, 2);
        let sa = MinHashSketch::build(&a, 512, 7);
        let sb = MinHashSketch::build(&b, 512, 7);
        let merged = MinHashSketch::union(&[&sa, &sb]);
        let mut u = a.clone();
        u.union_with(&b);
        let direct = MinHashSketch::build(&u, 512, 7);
        assert_eq!(merged.sample_hashes(), direct.sample_hashes());
    }

    #[test]
    #[should_panic]
    fn mismatched_salts_panic() {
        let a = random_set(100, 1);
        let sa = MinHashSketch::build(&a, 64, 1);
        let sb = MinHashSketch::build(&a, 64, 2);
        MinHashSketch::union(&[&sa, &sb]);
    }

    /// The end-to-end protocol approximates the exact CR estimate on a
    /// synthetic heterogeneous population.
    #[test]
    fn mpcr_tracks_exact_estimate() {
        let mut rng = component_rng(11, "mpcr-e2e");
        let n_true = 30_000u32;
        let t = 3;
        let mut parties: Vec<AddrSet> = (0..t).map(|_| AddrSet::new()).collect();
        for i in 0..n_true {
            let sociable = rng.gen_bool(0.5);
            for set in parties.iter_mut() {
                let p = if sociable { 0.55 } else { 0.2 };
                if rng.gen_bool(p) {
                    set.insert(i.wrapping_mul(2_654_435_761));
                }
            }
        }
        let refs: Vec<&AddrSet> = parties.iter().collect();
        let cfg = CrConfig {
            truncated: false,
            min_stratum_observed: 0,
            ..CrConfig::paper()
        };

        // Exact estimate with full data.
        let exact_table = ContingencyTable::from_addr_sets(&refs);
        let exact = estimate_table(&exact_table, None, &cfg).unwrap();

        // Sketched estimate: only k samples per party revealed.
        let result = mpcr_estimate(&refs, 2_048, 42, None, &cfg).unwrap();

        let union_true = exact_table.observed_total() as f64;
        let union_err = (result.union_estimate - union_true).abs() / union_true;
        assert!(union_err < 0.1, "union estimate off by {union_err:.3}");

        let rel = (result.estimate.total - exact.total).abs() / exact.total;
        assert!(
            rel < 0.15,
            "sketched {} vs exact {} ({rel:.3} rel err)",
            result.estimate.total,
            exact.total
        );
    }

    /// Privacy surface: the protocol reveals exactly k membership bits per
    /// party, never raw addresses.
    #[test]
    fn membership_vector_is_bounded_by_k() {
        let a = random_set(10_000, 3);
        let b = random_set(10_000, 4);
        let k = 256;
        let sa = MinHashSketch::build(&a, k, 5);
        let sb = MinHashSketch::build(&b, k, 5);
        let union = MinHashSketch::union(&[&sa, &sb]);
        assert!(union.sample_hashes().len() <= k);
        let bits = MinHashSketch::membership_of(&a, 5, union.sample_hashes());
        assert_eq!(bits.len(), union.sample_hashes().len());
    }
}
