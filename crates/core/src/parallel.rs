//! Deterministic self-scheduling parallelism for the two hot fan-outs of
//! the estimation pipeline: candidate evaluation inside a model-selection
//! round ([`crate::select::select_model`]) and per-stratum estimation
//! ([`crate::estimator::estimate_stratified`]).
//!
//! The design constraint is **bit-identical output at every thread
//! count**: workers claim items one at a time from a shared atomic
//! counter (classic self-scheduling, so uneven item costs balance
//! automatically), record each result together with its input index, and
//! the caller merges results *in index order*. No floating-point value is
//! ever combined in a thread-dependent order, so `threads = 1` and
//! `threads = N` produce exactly the same bytes.
//!
//! Only `std` is used (`std::thread::scope` + atomics) — the workspace
//! builds offline and adds no dependency for this.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads fan-out sections may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available CPU core (falls back to 1 if the core
    /// count cannot be determined).
    #[default]
    Auto,
    /// Exactly this many workers; `Fixed(1)` reproduces the sequential
    /// code path exactly (no threads are spawned at all).
    Fixed(usize),
}

impl Parallelism {
    /// Runs everything on the calling thread.
    pub const SEQUENTIAL: Parallelism = Parallelism::Fixed(1);

    /// The number of workers this setting resolves to (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }

    /// Parses a CLI/config spelling: `auto` or a positive integer.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Fixed)
                .ok_or_else(|| format!("expected `auto` or a positive integer, got {s:?}")),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Maps `f` over `items` with self-scheduling workers, returning outputs
/// in input order.
///
/// With one worker (or one item) this is a plain sequential loop on the
/// calling thread. Otherwise `min(threads, items.len())` scoped workers
/// each repeatedly claim the next unclaimed index from an atomic counter
/// and run `f(index, &items[index])`; results are stitched back into
/// index order afterwards, so the output is independent of scheduling.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread (like the
/// sequential loop would).
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = par.threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Deterministic merge: place every result at its input index.
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for bucket in buckets {
        for (i, u) in bucket {
            slots[i] = Some(u);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once")) // lint: allow(no-unwrap) see scheduler proof above
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution() {
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::SEQUENTIAL.threads(), 1);
    }

    #[test]
    fn parse_accepts_auto_and_integers() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("4"), Ok(Parallelism::Fixed(4)));
        assert!(Parallelism::parse("0").is_err());
        assert!(Parallelism::parse("-2").is_err());
        assert!(Parallelism::parse("fast").is_err());
    }

    #[test]
    fn display_round_trips() {
        for p in [Parallelism::Auto, Parallelism::Fixed(7)] {
            assert_eq!(Parallelism::parse(&p.to_string()), Ok(p));
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(Parallelism::Fixed(1), &items, |i, &x| {
            (i as u64) * 1000 + x * x
        });
        for threads in [2, 3, 8] {
            let par = par_map(Parallelism::Fixed(threads), &items, |i, &x| {
                (i as u64) * 1000 + x * x
            });
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Auto, &empty, |_, &x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Auto, &[41u32], |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn par_map_balances_uneven_items() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(Parallelism::Fixed(4), &items, |_, &x| {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map(
                Parallelism::Fixed(4),
                &[0u32, 1, 2, 3, 4, 5, 6, 7],
                |_, &x| {
                    assert!(x != 5, "boom at {x}");
                    x
                },
            )
        });
        assert!(result.is_err());
    }
}
