//! Deterministic self-scheduling parallelism for the two hot fan-outs of
//! the estimation pipeline: candidate evaluation inside a model-selection
//! round ([`crate::select::select_model`]) and per-stratum estimation
//! ([`crate::estimator::estimate_stratified`]).
//!
//! The design constraint is **bit-identical output at every thread
//! count**: workers claim items one at a time from a shared atomic
//! counter (classic self-scheduling, so uneven item costs balance
//! automatically), record each result together with its input index, and
//! the caller merges results *in index order*. No floating-point value is
//! ever combined in a thread-dependent order, so `threads = 1` and
//! `threads = N` produce exactly the same bytes.
//!
//! Only `std` is used (`std::thread::scope` + atomics) — the workspace
//! builds offline and adds no dependency for this.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A caught worker panic payload.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// How many worker threads fan-out sections may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available CPU core (falls back to 1 if the core
    /// count cannot be determined).
    #[default]
    Auto,
    /// Exactly this many workers; `Fixed(1)` reproduces the sequential
    /// code path exactly (no threads are spawned at all).
    Fixed(usize),
}

impl Parallelism {
    /// Runs everything on the calling thread.
    pub const SEQUENTIAL: Parallelism = Parallelism::Fixed(1);

    /// The number of workers this setting resolves to (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }

    /// Parses a CLI/config spelling: `auto` or a positive integer.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Fixed)
                .ok_or_else(|| format!("expected `auto` or a positive integer, got {s:?}")),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Runs one item inside its fault-injection task frame with the panic
/// trapped. Trapping *per item* (instead of letting a panic tear down the
/// worker) means every item always runs at every thread count, so the
/// side effects an item produced before panicking — recorded trace events
/// in particular — are the same set whether `threads` is 1 or N.
fn run_item<T, U, F>(i: usize, item: &T, f: &F) -> Result<U, PanicPayload>
where
    F: Fn(usize, &T) -> U,
{
    ghosts_faultinject::task_scope(i, || {
        catch_unwind(AssertUnwindSafe(|| {
            // Fault point (no-op unless a fault plan is armed; DESIGN.md
            // §11): simulates a worker dying mid-item.
            if let Some(ghosts_faultinject::Fault::WorkerPanic) =
                ghosts_faultinject::fire("parallel.worker")
            {
                // lint: allow(panic-path) deliberate: injected fault simulating a worker death
                panic!("injected worker panic (site parallel.worker, item {i})");
            }
            f(i, item)
        }))
    })
}

/// Maps `f` over `items` with self-scheduling workers, collecting each
/// item's outcome — `Ok` or the caught panic payload — in input order.
///
/// With one worker (or one item) this is a plain sequential loop on the
/// calling thread. Otherwise `min(threads, items.len())` scoped workers
/// each repeatedly claim the next unclaimed index from an atomic counter
/// and run `f(index, &items[index])`; results are stitched back into
/// index order afterwards, so the output is independent of scheduling.
///
/// Every item runs even when an earlier one panics — a worker panic is
/// confined to its item and can no longer leak an unjoined thread or
/// poison sibling items.
fn run_all<T, U, F>(par: Parallelism, items: &[T], f: &F) -> Vec<Result<U, PanicPayload>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = par.threads().min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_item(i, t, f))
            .collect();
    }

    let token = ghosts_faultinject::current_scope();
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, Result<U, PanicPayload>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (token, next) = (&token, &next);
                scope.spawn(move || {
                    // Workers inherit the spawning thread's fault scope so
                    // nested fan-outs address items identically at every
                    // thread count.
                    ghosts_faultinject::with_scope(token, || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            // lint: allow(panic-path) i < items.len() checked two lines up
                            out.push((i, run_item(i, &items[i], f)));
                        }
                        out
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                // Unreachable in practice — run_item traps item panics —
                // but a panic in the claiming loop itself must still
                // surface rather than vanish.
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Deterministic merge: place every result at its input index.
    let mut slots: Vec<Option<Result<U, PanicPayload>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for bucket in buckets {
        for (i, u) in bucket {
            // lint: allow(panic-path) workers only claim i < items.len(), slots has that length
            slots[i] = Some(u);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once")) // lint: allow(no-unwrap) see scheduler proof above
        .collect()
}

/// Maps `f` over `items` with self-scheduling workers, returning outputs
/// in input order. See [`try_par_map`] for the panic-isolating variant.
///
/// # Panics
///
/// If any item panics, re-raises the panic of the *lowest-index* failing
/// item on the calling thread — deterministic first-error reporting,
/// independent of which worker hit it first. All items still run before
/// the panic is re-raised.
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic: Option<PanicPayload> = None;
    for result in run_all(par, items, &f) {
        match result {
            Ok(u) => out.push(u),
            Err(panic) => {
                if first_panic.is_none() {
                    first_panic = Some(panic);
                }
            }
        }
    }
    if let Some(panic) = first_panic {
        std::panic::resume_unwind(panic);
    }
    out
}

/// Like [`par_map`], but a panicking item yields `Err(message)` in its
/// slot instead of aborting the whole map — the robustness primitive
/// behind per-stratum failure isolation in
/// [`crate::estimator::estimate_stratified`].
pub fn try_par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    run_all(par, items, &f)
        .into_iter()
        .map(|r| r.map_err(|p| panic_message(&p)))
        .collect()
}

/// Best-effort extraction of a human-readable message from a panic payload.
pub fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution() {
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::SEQUENTIAL.threads(), 1);
    }

    #[test]
    fn parse_accepts_auto_and_integers() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("4"), Ok(Parallelism::Fixed(4)));
        assert!(Parallelism::parse("0").is_err());
        assert!(Parallelism::parse("-2").is_err());
        assert!(Parallelism::parse("fast").is_err());
    }

    #[test]
    fn display_round_trips() {
        for p in [Parallelism::Auto, Parallelism::Fixed(7)] {
            assert_eq!(Parallelism::parse(&p.to_string()), Ok(p));
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(Parallelism::Fixed(1), &items, |i, &x| {
            (i as u64) * 1000 + x * x
        });
        for threads in [2, 3, 8] {
            let par = par_map(Parallelism::Fixed(threads), &items, |i, &x| {
                (i as u64) * 1000 + x * x
            });
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Auto, &empty, |_, &x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Auto, &[41u32], |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn par_map_balances_uneven_items() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(Parallelism::Fixed(4), &items, |_, &x| {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map(
                Parallelism::Fixed(4),
                &[0u32, 1, 2, 3, 4, 5, 6, 7],
                |_, &x| {
                    assert!(x != 5, "boom at {x}");
                    x
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_reports_lowest_index_panic() {
        // Two items panic; regardless of which worker trips first, the
        // re-raised payload must be the lowest-index one.
        for threads in [1usize, 4] {
            let result = std::panic::catch_unwind(|| {
                par_map(
                    Parallelism::Fixed(threads),
                    &[0u32, 1, 2, 3, 4, 5, 6, 7],
                    |_, &x| {
                        assert!(x != 2 && x != 5, "boom at {x}");
                        x
                    },
                )
            });
            let payload = result.expect_err("panic must propagate");
            assert_eq!(panic_message(&payload), "boom at 2", "threads = {threads}");
        }
    }

    #[test]
    fn try_par_map_isolates_panics_and_runs_every_item() {
        let items: Vec<u32> = (0..16).collect();
        for threads in [1usize, 4] {
            let ran = AtomicUsize::new(0);
            let results = try_par_map(Parallelism::Fixed(threads), &items, |_, &x| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(x % 5 != 0, "boom at {x}");
                x * 2
            });
            assert_eq!(ran.load(Ordering::Relaxed), 16, "threads = {threads}");
            assert_eq!(results.len(), 16);
            for (i, result) in results.iter().enumerate() {
                if i % 5 == 0 {
                    let message = result.as_ref().expect_err("multiple-of-5 items panic");
                    assert_eq!(message, &format!("boom at {i}"));
                } else {
                    assert_eq!(result.as_ref().ok().copied(), Some(i as u32 * 2));
                }
            }
        }
    }
}
