//! Model selection (§3.3.2): greedy stepwise search over hierarchical
//! log-linear models, scored by an information criterion on divisor-scaled
//! counts, with the paper's "simplest model within 7 IC units of the best"
//! final rule.
//!
//! Full enumeration of hierarchical models over nine sources is infeasible
//! (hundreds of candidate interaction terms), so the search is greedy
//! forward selection starting from the independence model — the same
//! strategy Rcapture's `closedpMS.t` stepwise mode uses. Every model
//! evaluated along the way is remembered so the within-7 rule can pick a
//! simpler model than the IC minimiser.

use crate::fit::{CellModel, FitOptions};
use crate::history::ContingencyTable;
use crate::ic::{evaluate_ic_opts, DivisorRule, IcKind};
use crate::invariant;
use crate::model::LogLinearModel;
use crate::parallel::{par_map, Parallelism};
use ghosts_obs::{FieldValue, Scope};
use ghosts_stats::glm::GlmError;

/// Options controlling the stepwise search.
#[derive(Debug, Clone)]
pub struct SelectionOptions {
    /// Criterion to minimise.
    pub ic: IcKind,
    /// Count-scaling rule for the criterion.
    pub divisor: DivisorRule,
    /// Highest interaction order considered (2 = pairwise only,
    /// 3 = pairwise + triples; the marginal information in higher orders is
    /// negligible and noisy — the paper's footnote 7 notes that many-source
    /// interactions have far fewer samples).
    pub max_order: u32,
    /// Cap on the number of interaction terms added (guards runtime; the
    /// IC's own penalty normally stops the search much earlier).
    pub max_added_terms: usize,
    /// The final-rule margin: choose the simplest model whose IC is within
    /// this many units of the best (the paper uses 7, citing MARK).
    pub within: f64,
    /// Newton-fit knobs applied to every candidate fit (iteration budget
    /// included, so a runaway candidate fails structurally and is skipped
    /// instead of stalling the search).
    pub fit: FitOptions,
    /// Worker threads for evaluating a round's candidate terms. Candidate
    /// fits are independent and merged in term order, so every setting
    /// yields bit-identical results; `Fixed(1)` is the sequential path.
    pub parallelism: Parallelism,
    /// Observability scope the search traces into (disabled by default —
    /// then every recording call is a no-op branch).
    pub obs: Scope,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        Self {
            ic: IcKind::Bic,
            divisor: DivisorRule::adaptive1000(),
            max_order: 2,
            max_added_terms: 24,
            within: 7.0,
            fit: FitOptions::default(),
            parallelism: Parallelism::Auto,
            obs: Scope::disabled(),
        }
    }
}

/// Human-readable label of an interaction term mask, e.g. `0b011` → `12`.
fn term_label(mask: u16) -> String {
    let mut out = String::new();
    for i in 0..16 {
        if mask & (1 << i) != 0 {
            out.push_str(&(i + 1).to_string());
        }
    }
    out
}

/// One evaluated model with its criterion value.
#[derive(Debug, Clone)]
pub struct EvaluatedModel {
    /// The model.
    pub model: LogLinearModel,
    /// Its IC value (lower is better).
    pub ic: f64,
}

/// The outcome of a model search.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The model picked by the within-margin rule.
    pub model: LogLinearModel,
    /// IC value of the picked model.
    pub ic: f64,
    /// The minimum IC value seen anywhere in the search.
    pub best_ic: f64,
    /// Every distinct model evaluated (search trace).
    pub evaluated: Vec<EvaluatedModel>,
    /// The divisor that was applied by the scaling rule.
    pub divisor: u64,
}

/// Runs greedy forward selection and applies the within-margin rule.
///
/// # Errors
///
/// Propagates a [`GlmError`] only if even the independence model cannot be
/// fitted; failures on candidate models simply exclude those candidates.
pub fn select_model(
    table: &ContingencyTable,
    cell_model: CellModel,
    opts: &SelectionOptions,
) -> Result<SelectionResult, GlmError> {
    invariant::check_table(table);
    let divisor = opts.divisor.divisor_for(table);
    let span = opts.obs.child("select");
    span.event(
        "search_started",
        &[
            ("sources", FieldValue::U64(table.num_sources() as u64)),
            ("observed", FieldValue::U64(table.observed_total())),
            ("ic", FieldValue::Str(opts.ic.name().to_string())),
            ("divisor", FieldValue::U64(divisor)),
        ],
    );
    let mut evaluated: Vec<EvaluatedModel> = Vec::new();

    let mut current = LogLinearModel::independence(table.num_sources());
    // Fault site `select.baseline`: any injected fault here stands in for a
    // search whose baseline fit cannot be completed, which is the trigger
    // for the independence rung of the degradation ladder.
    let baseline = match ghosts_faultinject::fire("select.baseline") {
        Some(_) => Err(GlmError::NonFiniteFit),
        None => evaluate_ic_opts(
            table,
            &current,
            cell_model,
            opts.ic,
            opts.divisor,
            &opts.fit,
        ),
    }
    .inspect_err(|e| {
        span.error(
            "baseline_failed",
            &[("error", FieldValue::Str(e.to_string()))],
        );
    })?;
    let mut current_ic = baseline.ic;
    span.event(
        "candidate",
        &[
            ("model", FieldValue::Str(current.describe())),
            ("ic", FieldValue::F64(baseline.ic)),
            ("k", FieldValue::U64(baseline.k as u64)),
            ("iterations", FieldValue::U64(baseline.iterations as u64)),
            ("converged", FieldValue::Bool(baseline.converged)),
        ],
    );
    span.add("select.models_evaluated", 1);
    span.observe("select.glm_iterations", baseline.iterations as u64);
    evaluated.push(EvaluatedModel {
        model: current.clone(),
        ic: current_ic,
    });

    for round in 0..opts.max_added_terms {
        let candidates = current.addable_terms(opts.max_order);
        // Candidate fits are independent, so a round fans out across
        // workers; merging in candidate (term) order below keeps the trace
        // and the first-minimum tie-break identical to the sequential loop.
        let fits = par_map(opts.parallelism, &candidates, |_, &mask| {
            let trial = current.with_term(mask);
            evaluate_ic_opts(table, &trial, cell_model, opts.ic, opts.divisor, &opts.fit)
                .map(|res| (trial, res))
        });
        span.volatile_add("select.par_map_tasks", candidates.len() as u64);
        span.volatile_max(
            "select.par_map_workers",
            opts.parallelism.threads().min(candidates.len().max(1)) as u64,
        );
        let round_span = span.child_idx("round", round as u64);
        let mut best: Option<(u16, f64)> = None;
        for (mask, fit) in candidates.iter().zip(fits) {
            span.add("select.models_evaluated", 1);
            let (trial, res) = match fit {
                Ok(ok) => ok,
                Err(e) => {
                    // numerically unfittable candidate: skip
                    round_span.event(
                        "candidate_failed",
                        &[
                            ("term", FieldValue::Str(term_label(*mask))),
                            ("error", FieldValue::Str(e.to_string())),
                        ],
                    );
                    span.add("select.candidates_failed", 1);
                    continue;
                }
            };
            round_span.event(
                "candidate",
                &[
                    ("term", FieldValue::Str(term_label(*mask))),
                    ("ic", FieldValue::F64(res.ic)),
                    ("k", FieldValue::U64(res.k as u64)),
                    ("iterations", FieldValue::U64(res.iterations as u64)),
                    ("converged", FieldValue::Bool(res.converged)),
                ],
            );
            span.observe("select.glm_iterations", res.iterations as u64);
            let ic = res.ic;
            evaluated.push(EvaluatedModel { model: trial, ic });
            if best.is_none_or(|(_, b)| ic < b) {
                best = Some((*mask, ic));
            }
        }
        span.add("select.rounds", 1);
        match best {
            Some((mask, ic)) if ic < current_ic - 1e-9 => {
                round_span.event(
                    "term_added",
                    &[
                        ("term", FieldValue::Str(term_label(mask))),
                        ("ic", FieldValue::F64(ic)),
                    ],
                );
                current = current.with_term(mask);
                current_ic = ic;
            }
            _ => break, // no candidate improves the criterion
        }
    }

    // Within-margin rule: among everything evaluated, keep models whose IC
    // is within `within` of the minimum, then take the one with the fewest
    // parameters (ties broken by lower IC).
    let best_ic = evaluated.iter().map(|e| e.ic).fold(f64::INFINITY, f64::min);
    if span.is_enabled() {
        // The IC-candidates table: every model still in the running under
        // the within-margin rule, in search-trace order.
        for e in evaluated.iter().filter(|e| e.ic <= best_ic + opts.within) {
            span.event(
                "ic_candidate",
                &[
                    ("model", FieldValue::Str(e.model.describe())),
                    ("ic", FieldValue::F64(e.ic)),
                    ("delta", FieldValue::F64(e.ic - best_ic)),
                    ("k", FieldValue::U64(e.model.num_params() as u64)),
                ],
            );
        }
    }
    let chosen = evaluated
        .iter()
        .filter(|e| e.ic <= best_ic + opts.within)
        .min_by(|a, b| {
            (a.model.num_params())
                .cmp(&b.model.num_params())
                .then(a.ic.total_cmp(&b.ic))
        })
        // lint: allow(no-unwrap) the candidate set always contains the independence model
        .expect("at least the independence model was evaluated")
        .clone();
    span.event(
        "model_chosen",
        &[
            ("model", FieldValue::Str(chosen.model.describe())),
            ("ic", FieldValue::F64(chosen.ic)),
            ("best_ic", FieldValue::F64(best_ic)),
            ("k", FieldValue::U64(chosen.model.num_params() as u64)),
            ("divisor", FieldValue::U64(divisor)),
        ],
    );

    Ok(SelectionResult {
        model: chosen.model,
        ic: chosen.ic,
        best_ic,
        evaluated,
        divisor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected cell counts for a population with one pairwise dependence.
    fn dependent_table(n: f64) -> ContingencyTable {
        let mut table = ContingencyTable::new(3);
        for s1 in [false, true] {
            for s2 in [false, true] {
                for s3 in [false, true] {
                    let p1: f64 = if s1 { 0.4 } else { 0.6 };
                    let p2: f64 = match (s1, s2) {
                        (true, true) => 0.7,
                        (true, false) => 0.3,
                        (false, true) => 0.25,
                        (false, false) => 0.75,
                    };
                    let p3: f64 = if s3 { 0.45 } else { 0.55 };
                    let mask = u16::from(s1) | (u16::from(s2) << 1) | (u16::from(s3) << 2);
                    if mask == 0 {
                        continue;
                    }
                    for _ in 0..((n * p1 * p2 * p3).round() as u64) {
                        table.record(mask);
                    }
                }
            }
        }
        table
    }

    /// Independence-generated cells.
    fn independent_table(n: f64) -> ContingencyTable {
        let mut table = ContingencyTable::new(3);
        let p = [0.35, 0.45, 0.5];
        for mask in 1u16..8 {
            let mut prob = 1.0;
            for (i, &pi) in p.iter().enumerate() {
                prob *= if mask & (1 << i) != 0 { pi } else { 1.0 - pi };
            }
            for _ in 0..((n * prob).round() as u64) {
                table.record(mask);
            }
        }
        table
    }

    #[test]
    fn independence_data_selects_independence_model() {
        let table = independent_table(50_000.0);
        let res = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                divisor: DivisorRule::Fixed(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            res.model.interactions().is_empty(),
            "picked {}",
            res.model.describe()
        );
    }

    #[test]
    fn dependent_data_selects_the_interaction() {
        let table = dependent_table(100_000.0);
        let res = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                divisor: DivisorRule::Fixed(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            res.model.contains_term(0b011),
            "picked {}",
            res.model.describe()
        );
        // It should not have picked up the spurious interactions.
        assert_eq!(res.model.interactions(), vec![0b011]);
    }

    #[test]
    fn heavy_scaling_prefers_simpler_models() {
        // With a large divisor the dependence signal is squashed and the
        // within-7 rule should fall back to a simpler model than the
        // unscaled search picks.
        let table = dependent_table(3_000.0);
        let unscaled = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                divisor: DivisorRule::Fixed(1),
                ..Default::default()
            },
        )
        .unwrap();
        let scaled = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                divisor: DivisorRule::Fixed(100),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(scaled.model.num_params() <= unscaled.model.num_params());
    }

    #[test]
    fn within_rule_prefers_fewer_params_on_near_ties() {
        let table = independent_table(2_000.0);
        let res = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                divisor: DivisorRule::Fixed(1),
                within: 1e9, // everything qualifies → simplest wins outright
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.model.num_params(), 4); // independence
    }

    #[test]
    fn search_trace_contains_every_model() {
        let table = independent_table(5_000.0);
        let res = select_model(&table, CellModel::Poisson, &SelectionOptions::default()).unwrap();
        // Independence + the three pairwise candidates of round one.
        assert!(res.evaluated.len() >= 4);
        assert!(res.best_ic <= res.ic);
        assert!(res.ic <= res.best_ic + 7.0 + 1e-9);
    }

    #[test]
    fn triples_can_be_reached_when_enabled() {
        // Not asserting a triple is picked (data-dependent), only that the
        // search path allows order-3 terms without panicking.
        let table = dependent_table(50_000.0);
        let res = select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                max_order: 3,
                divisor: DivisorRule::Fixed(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.model.num_params() >= 4);
    }
}
