//! Thread-count invariance: the parallel execution layer must produce
//! bit-identical results at every `Parallelism` setting. These tests run
//! the two parallelised fan-outs — model selection and stratified
//! estimation — sequentially and with several worker counts and compare
//! every floating-point output via `f64::to_bits`.

use ghosts_core::{
    estimate_stratified, select_model, CellModel, ContingencyTable, CrConfig, Parallelism,
    SelectionOptions, SelectionResult,
};
use ghosts_stats::rng::component_rng;
use rand::Rng;

/// A heterogeneous multi-source population (same shape as the estimator
/// unit tests use): two latent classes with different catchabilities.
fn simulate(t: usize, n: usize, seed: u64) -> ContingencyTable {
    let mut rng = component_rng(seed, "determinism-test");
    let mut table = ContingencyTable::new(t);
    for _ in 0..n {
        let sociable = rng.gen_bool(0.5);
        let mut mask = 0u16;
        for i in 0..t {
            let p = if sociable { 0.45 } else { 0.12 };
            if rng.gen_bool(p) {
                mask |= 1 << i;
            }
        }
        table.record(mask);
    }
    table
}

fn assert_selection_identical(a: &SelectionResult, b: &SelectionResult, what: &str) {
    assert_eq!(
        a.model.describe(),
        b.model.describe(),
        "{what}: picked model differs"
    );
    assert_eq!(a.ic.to_bits(), b.ic.to_bits(), "{what}: picked IC differs");
    assert_eq!(
        a.best_ic.to_bits(),
        b.best_ic.to_bits(),
        "{what}: best IC differs"
    );
    assert_eq!(a.divisor, b.divisor, "{what}: divisor differs");
    assert_eq!(
        a.evaluated.len(),
        b.evaluated.len(),
        "{what}: trace length differs"
    );
    for (i, (ea, eb)) in a.evaluated.iter().zip(&b.evaluated).enumerate() {
        assert_eq!(
            ea.model.describe(),
            eb.model.describe(),
            "{what}: trace entry {i} model differs"
        );
        assert_eq!(
            ea.ic.to_bits(),
            eb.ic.to_bits(),
            "{what}: trace entry {i} IC differs"
        );
    }
}

#[test]
fn select_model_is_thread_count_invariant() {
    let table = simulate(6, 40_000, 11);
    let run = |parallelism| {
        select_model(
            &table,
            CellModel::Poisson,
            &SelectionOptions {
                max_order: 3,
                parallelism,
                ..SelectionOptions::default()
            },
        )
        .expect("selection succeeds")
    };
    let seq = run(Parallelism::SEQUENTIAL);
    for threads in [2, 4, 7] {
        let par = run(Parallelism::Fixed(threads));
        assert_selection_identical(&seq, &par, &format!("threads={threads}"));
    }
    let auto = run(Parallelism::Auto);
    assert_selection_identical(&seq, &auto, "threads=auto");
}

#[test]
fn select_model_is_invariant_under_truncation_too() {
    let table = simulate(4, 15_000, 3);
    let limit = table.observed_total() * 3;
    let run = |parallelism| {
        select_model(
            &table,
            CellModel::Truncated { limit },
            &SelectionOptions {
                parallelism,
                ..SelectionOptions::default()
            },
        )
        .expect("selection succeeds")
    };
    assert_selection_identical(
        &run(Parallelism::SEQUENTIAL),
        &run(Parallelism::Fixed(4)),
        "truncated threads=4",
    );
}

#[test]
fn estimate_stratified_is_thread_count_invariant() {
    // Mixed workload: strata of different sizes plus one excluded stratum.
    let tables: Vec<ContingencyTable> = [8_000, 12_000, 300, 5_000, 9_000, 700]
        .iter()
        .enumerate()
        .map(|(i, &n)| simulate(4, n, 100 + i as u64))
        .collect();
    let limits: Vec<u64> = tables
        .iter()
        .map(|t| t.observed_total() * 2 + 500)
        .collect();
    let run = |parallelism| {
        let cfg = CrConfig {
            min_stratum_observed: 1000,
            parallelism,
            ..CrConfig::paper()
        };
        estimate_stratified(&tables, Some(&limits), &cfg)
    };

    let seq = run(Parallelism::SEQUENTIAL);
    for threads in [2, 4] {
        let par = run(Parallelism::Fixed(threads));
        assert_eq!(seq.excluded, par.excluded, "threads={threads}");
        assert_eq!(seq.observed_total, par.observed_total, "threads={threads}");
        assert_eq!(
            seq.estimated_total.to_bits(),
            par.estimated_total.to_bits(),
            "threads={threads}: stratified total differs"
        );
        assert_eq!(seq.strata.len(), par.strata.len());
        for (i, (sa, sb)) in seq.strata.iter().zip(&par.strata).enumerate() {
            match (sa, sb) {
                (None, None) => {}
                (Some(ea), Some(eb)) => {
                    assert_eq!(ea.observed, eb.observed, "stratum {i}");
                    assert_eq!(
                        ea.total.to_bits(),
                        eb.total.to_bits(),
                        "threads={threads}: stratum {i} estimate differs"
                    );
                    assert_eq!(
                        ea.unseen.to_bits(),
                        eb.unseen.to_bits(),
                        "threads={threads}: stratum {i} ghosts differ"
                    );
                    assert_eq!(ea.model, eb.model, "stratum {i} model differs");
                    assert_eq!(
                        ea.ic.to_bits(),
                        eb.ic.to_bits(),
                        "threads={threads}: stratum {i} IC differs"
                    );
                    assert_eq!(ea.divisor, eb.divisor, "stratum {i} divisor differs");
                }
                _ => panic!("threads={threads}: stratum {i} exclusion differs"),
            }
        }
    }
}
