//! End-to-end exercises of the graceful-degradation ladder, driven by the
//! deterministic fault-injection runtime (`ghosts-faultinject` with the
//! `fault-inject` feature armed via this crate's dev-dependencies).
//!
//! The fault plan is process-global, so every test here takes `PLAN_LOCK`,
//! installs its plan, and clears it before releasing the lock. Keep any
//! test that installs a plan in this file — a plan leaking into a
//! concurrently running test binary would poison unrelated fits.

#![allow(clippy::float_cmp)] // determinism asserts compare exact values on purpose

use ghosts_core::{
    estimate_stratified, estimate_table, estimate_table_with_range, ContingencyTable, CrConfig,
    DivisorRule, LadderRung, Parallelism, SelectionOptions,
};
use ghosts_faultinject::{clear, drain_fires, install, Fault, FaultPlan, FaultRule};
use ghosts_obs::{validate_jsonl, LogicalClock, Recorder};
use std::sync::{Arc, Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn rule(site: &str, scope: Option<&str>, hit: u64, fault: Fault) -> FaultRule {
    FaultRule {
        site: site.to_string(),
        scope: scope.map(String::from),
        hit,
        fault,
    }
}

/// A deterministic three-source table with enough structure that the
/// model search evaluates several candidates.
fn fixture_table(scale: u64) -> ContingencyTable {
    ContingencyTable::from_histories(
        3,
        std::iter::repeat_n(0b001u16, 300 * scale as usize)
            .chain(std::iter::repeat_n(0b010, 200 * scale as usize))
            .chain(std::iter::repeat_n(0b100, 100 * scale as usize))
            .chain(std::iter::repeat_n(0b011, 80 * scale as usize))
            .chain(std::iter::repeat_n(0b101, 60 * scale as usize))
            .chain(std::iter::repeat_n(0b110, 40 * scale as usize))
            .chain(std::iter::repeat_n(0b111, 20 * scale as usize)),
    )
}

fn wide_margin_cfg() -> CrConfig {
    CrConfig {
        truncated: false,
        selection: SelectionOptions {
            divisor: DivisorRule::Fixed(1),
            within: 1e9, // keep every evaluated model in the IC margin
            ..SelectionOptions::default()
        },
        ..CrConfig::paper()
    }
}

/// Outside any task scope the calling thread's `glm.fit` hit counter sees
/// hit 0 = the selection baseline and hit 1 = the final fit (candidate
/// fits live in their own per-task scopes). Failing hit 1 must land on
/// the next-best within-margin candidate — for every injectable fault
/// class the fitter can produce.
#[test]
fn failed_final_fit_degrades_to_next_best_candidate() {
    let _g = lock();
    let table = fixture_table(1);
    for fault in [Fault::NonFiniteFit, Fault::BudgetExhaustion, Fault::NanCell] {
        install(FaultPlan {
            rules: vec![rule("glm.fit", Some(""), 1, fault)],
        })
        .expect("feature is armed in tests");
        let est = estimate_table(&table, None, &wide_margin_cfg()).expect("ladder recovers");
        let deg = est.degraded.expect("estimate is marked degraded");
        assert_eq!(deg.rung, LadderRung::NextBestIc, "fault {fault:?}");
        assert_eq!(deg.stage, "fit");
        assert!(est.total > est.observed as f64);
        let fires = drain_fires();
        assert_eq!(fires.len(), 1, "exactly the planned fault fired");
        assert_eq!(fires[0].site, "glm.fit");
        clear();
    }
}

/// A failed model search (no trace to fall back on) must refit the
/// independence baseline.
#[test]
fn failed_selection_degrades_to_independence() {
    let _g = lock();
    install(FaultPlan {
        rules: vec![rule("select.baseline", None, 0, Fault::NonFiniteFit)],
    })
    .expect("feature is armed in tests");
    let table = fixture_table(1);
    let est = estimate_table(&table, None, &wide_margin_cfg()).expect("ladder recovers");
    let deg = est.degraded.expect("degraded");
    assert_eq!(deg.rung, LadderRung::Independence);
    assert_eq!(deg.stage, "select");
    assert_eq!(deg.from, "(selection)");
    clear();
}

/// When every GLM fit is poisoned the ladder must bottom out on the Chao
/// lower bound — a total function — and report the one-sided range.
#[test]
fn total_fit_failure_degrades_to_chao_with_one_sided_range() {
    let _g = lock();
    let mut rules = vec![rule("select.baseline", None, 0, Fault::NonFiniteFit)];
    for hit in 0..200 {
        rules.push(rule("glm.fit", None, hit, Fault::NonFiniteFit));
    }
    install(FaultPlan { rules }).expect("feature is armed in tests");
    let table = fixture_table(1);
    let (est, range) =
        estimate_table_with_range(&table, None, &wide_margin_cfg()).expect("chao cannot fail");
    let deg = est.degraded.expect("degraded");
    assert_eq!(deg.rung, LadderRung::ChaoLowerBound);
    assert_eq!(est.model, "(chao)");
    assert!(est.total > est.observed as f64);
    assert_eq!(range.lower, est.total);
    assert_eq!(range.point, est.total);
    assert!(range.upper.is_infinite());
    clear();
}

/// A profile-interval failure after a clean fit degrades at stage `ci`,
/// and the fallback rung recomputes *both* the estimate and the range.
#[test]
fn failed_interval_degrades_with_matching_range() {
    let _g = lock();
    install(FaultPlan {
        rules: vec![rule("ci.profile", None, 0, Fault::BudgetExhaustion)],
    })
    .expect("feature is armed in tests");
    let table = fixture_table(1);
    let (est, range) =
        estimate_table_with_range(&table, None, &wide_margin_cfg()).expect("ladder recovers");
    let deg = est.degraded.expect("degraded");
    assert_eq!(deg.stage, "ci");
    assert_eq!(deg.rung, LadderRung::NextBestIc);
    assert!(range.lower <= est.total && est.total <= range.upper);
    clear();
}

/// The acceptance bar of the robustness work: a stratified run with one
/// degraded stratum and one panicking worker still produces partial
/// results, and its trace is byte-identical at every thread count.
#[test]
fn degraded_stratified_trace_is_thread_count_invariant() {
    let _g = lock();
    let tables = vec![
        fixture_table(1),
        fixture_table(2),
        fixture_table(1),
        fixture_table(3),
    ];
    let plan = || FaultPlan {
        rules: vec![
            // Stratum 1: fail its final fit (hit 0 is its baseline).
            rule("glm.fit", Some("1"), 1, Fault::NonFiniteFit),
            // Stratum 2: kill its worker outright.
            rule("parallel.worker", Some("2"), 0, Fault::WorkerPanic),
        ],
    };
    let run = |threads: usize| -> String {
        install(plan()).expect("feature is armed in tests");
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let cfg = CrConfig {
            min_stratum_observed: 100,
            parallelism: Parallelism::Fixed(threads),
            obs: rec.root("run"),
            ..wide_margin_cfg()
        };
        let s = estimate_stratified(&tables, None, &cfg);
        assert_eq!(s.degraded, vec![1], "threads={threads}");
        assert_eq!(s.failed, vec![2], "threads={threads}");
        assert!(s.excluded.is_empty());
        assert!(s.strata[0].is_some() && s.strata[3].is_some());
        let fires = drain_fires();
        assert_eq!(fires.len(), 2, "both planned faults fired: {fires:?}");
        clear();
        rec.flush().to_jsonl()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq, par, "degraded trace differs between threads 1 and 4");
    let summary = validate_jsonl(&seq).expect("degraded trace is schema-valid");
    assert!(summary.degradations > 0, "{summary:?}");
    assert!(summary.errors > 0, "stratum_failed is an error event");
}
