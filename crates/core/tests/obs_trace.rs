//! Golden test for the deterministic event stream (DESIGN.md §10).
//!
//! Runs a small stratified estimation with tracing enabled at `threads = 1`
//! and `threads = 4` and requires the two JSONL traces to be **byte
//! identical** — the observability layer's core guarantee. The exact stream
//! is additionally pinned against a committed fixture so that accidental
//! changes to event names, field order or serialisation are caught.
//!
//! To regenerate the fixture after an intentional trace-format change:
//! `UPDATE_GOLDEN=1 cargo test -p ghosts-core --test obs_trace`.

use ghosts_core::{
    estimate_stratified, ContingencyTable, CrConfig, DivisorRule, Parallelism, SelectionOptions,
};
use ghosts_obs::{validate_jsonl, LogicalClock, Recorder};
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/obs_trace.jsonl";

/// Two deterministic strata: one estimable 3-source table with a built-in
/// 1-2 dependence, one tiny table that the minimum-observed rule excludes.
fn fixture_tables() -> Vec<ContingencyTable> {
    let mut big = ContingencyTable::new(3);
    for (mask, count) in [
        (0b001u16, 300),
        (0b010, 200),
        (0b100, 250),
        (0b011, 90),
        (0b101, 80),
        (0b110, 50),
        (0b111, 30),
    ] {
        for _ in 0..count {
            big.record(mask);
        }
    }
    let small = ContingencyTable::from_histories(3, [0b001u16, 0b010, 0b011, 0b111]);
    vec![big, small]
}

fn run_trace(threads: usize) -> String {
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let tables = fixture_tables();
    let cfg = CrConfig {
        truncated: false,
        min_stratum_observed: 100,
        parallelism: Parallelism::Fixed(threads),
        obs: rec.root("run"),
        selection: SelectionOptions {
            divisor: DivisorRule::Fixed(1),
            ..SelectionOptions::default()
        },
        ..CrConfig::paper()
    };
    let s = estimate_stratified(&tables, None, &cfg);
    assert!(s.is_clean(), "fixture is estimable");
    assert_eq!(s.excluded, vec![1]);
    rec.flush().to_jsonl()
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    let seq = run_trace(1);
    for threads in [2, 4] {
        let par = run_trace(threads);
        assert_eq!(seq, par, "JSONL trace differs at threads = {threads}");
    }
}

#[test]
fn trace_validates_against_the_event_schema() {
    let trace = run_trace(4);
    let summary = validate_jsonl(&trace).expect("trace must be schema-valid");
    assert!(summary.events > 0);
    assert_eq!(summary.errors, 0);
    assert!(summary.counters > 0);
    assert!(summary.hists > 0);
}

#[test]
fn trace_matches_the_committed_golden_fixture() {
    let trace = run_trace(1);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &trace).expect("can write fixture");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden fixture missing — run UPDATE_GOLDEN=1 cargo test -p ghosts-core --test obs_trace",
    );
    assert_eq!(
        trace, golden,
        "event stream drifted from {GOLDEN_PATH}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn volatile_lane_is_populated_but_not_serialised() {
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let tables = fixture_tables();
    let cfg = CrConfig {
        truncated: false,
        min_stratum_observed: 100,
        parallelism: Parallelism::Fixed(4),
        obs: rec.root("run"),
        ..CrConfig::paper()
    };
    assert!(estimate_stratified(&tables, None, &cfg).is_clean());
    let log = rec.flush();
    assert!(
        log.volatile.contains_key("stratified.par_map_tasks"),
        "volatile stats missing: {:?}",
        log.volatile
    );
    for key in log.volatile.keys() {
        assert!(
            !log.to_jsonl().contains(key.as_str()),
            "volatile key {key} leaked into the deterministic trace"
        );
    }
}
