//! Property-based tests for the capture–recapture core: contingency-table
//! marginal identities, Lincoln–Petersen algebra, estimator sanity under
//! random tables.

use ghosts_core::{
    chao_lower_bound, estimate_table, fit_llm, lincoln_petersen, CellModel, ContingencyTable,
    CrConfig, LogLinearModel,
};
use proptest::prelude::*;

fn masks(t: usize) -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(1u16..(1 << t) as u16, 1..600)
}

proptest! {
    /// Source marginals and pair overlaps are consistent with the raw
    /// history multiset.
    #[test]
    fn marginals_match_histories(hist in masks(4)) {
        let t = 4;
        let table = ContingencyTable::from_histories(t, hist.iter().copied());
        prop_assert_eq!(table.observed_total(), hist.len() as u64);
        for i in 0..t {
            let want = hist.iter().filter(|&&m| m & (1 << i) != 0).count() as u64;
            prop_assert_eq!(table.source_total(i), want);
        }
        for i in 0..t {
            for j in (i + 1)..t {
                let need = (1u16 << i) | (1 << j);
                let want = hist.iter().filter(|&&m| m & need == need).count() as u64;
                prop_assert_eq!(table.pair_overlap(i, j), want);
            }
        }
        // Capture frequencies partition the observed total.
        let f = table.capture_frequencies();
        prop_assert_eq!(f.iter().sum::<u64>(), hist.len() as u64);
        prop_assert_eq!(f[0], 0);
    }

    /// Marginalising to a subset of sources preserves each kept source's
    /// marginal and never increases the observed total.
    #[test]
    fn marginalize_consistency(hist in masks(5), keep_mask in 1u8..31) {
        let table = ContingencyTable::from_histories(5, hist.iter().copied());
        let keep: Vec<usize> = (0..5).filter(|i| keep_mask & (1 << i) != 0).collect();
        let m = table.marginalize(&keep);
        prop_assert_eq!(m.num_sources(), keep.len());
        prop_assert!(m.observed_total() <= table.observed_total());
        for (new_i, &old_i) in keep.iter().enumerate() {
            prop_assert_eq!(m.source_total(new_i), table.source_total(old_i));
        }
    }

    /// The two-source independence LLM reproduces Lincoln–Petersen.
    #[test]
    fn llm_equals_lp_on_two_sources(m1 in 1u64..400, m2 in 1u64..400, r in 1u64..100) {
        let only1 = m1; // exclusive counts
        let only2 = m2;
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, only1 as usize)
                .chain(std::iter::repeat_n(0b10, only2 as usize))
                .chain(std::iter::repeat_n(0b11, r as usize)),
        );
        let lp = lincoln_petersen(only1 + r, only2 + r, r).unwrap();
        let llm = fit_llm(&table, &LogLinearModel::independence(2), CellModel::Poisson).unwrap();
        prop_assert!((llm.n_hat - lp.n_hat).abs() < 1e-3 * (1.0 + lp.n_hat),
            "LLM {} vs L-P {}", llm.n_hat, lp.n_hat);
    }

    /// Estimates are always at least the observed count, never NaN, and
    /// truncation caps them by the declared universe.
    #[test]
    fn estimates_are_sane(hist in masks(3), extra in 0u64..10_000) {
        let table = ContingencyTable::from_histories(3, hist.iter().copied());
        prop_assume!(table.observed_total() > 0);
        let cfg = CrConfig { truncated: false, min_stratum_observed: 0, ..CrConfig::paper() };
        if let Ok(est) = estimate_table(&table, None, &cfg) {
            prop_assert!(est.total.is_finite());
            prop_assert!(est.total >= est.observed as f64 - 1e-6);
            // With truncation the estimate respects the limit.
            let limit = table.observed_total() + extra;
            let cfg_t = CrConfig { min_stratum_observed: 0, ..CrConfig::paper() };
            if let Ok(est_t) = estimate_table(&table, Some(limit), &cfg_t) {
                prop_assert!(est_t.total <= limit as f64 + 1e-6,
                    "estimate {} above limit {}", est_t.total, limit);
            }
        }
    }

    /// Right-truncated Poisson fit invariants: ghosts are non-negative,
    /// the total respects the truncation bound, and every fitted cell
    /// mean is finite and non-negative.
    #[test]
    fn truncated_fit_respects_bound(hist in masks(3), slack in 0u64..8_000) {
        let table = ContingencyTable::from_histories(3, hist.iter().copied());
        prop_assume!(table.observed_total() > 0);
        let limit = table.observed_total() + slack;
        let model = LogLinearModel::independence(3);
        if let Ok(f) = fit_llm(&table, &model, CellModel::Truncated { limit }) {
            prop_assert!(f.z0.is_finite() && f.z0 >= -1e-9, "ghosts {}", f.z0);
            prop_assert!(f.n_hat >= f.observed as f64 - 1e-6);
            // Relative tolerance: the Newton solver may sit a hair above
            // the bound when the estimate converges onto it.
            prop_assert!(f.n_hat <= limit as f64 * (1.0 + 1e-5) + 1e-6,
                "total {} above routed bound {}", f.n_hat, limit);
            for (i, &m) in f.glm.fitted.iter().enumerate() {
                prop_assert!(m.is_finite() && m >= 0.0, "cell {i}: mean {m}");
            }
        }
    }

    /// On two sources the independence model has a closed form
    /// (Lincoln–Petersen); the truncated fit with an unbinding limit must
    /// recover it just like the plain Poisson fit does.
    #[test]
    fn truncated_independence_recovers_lp(m1 in 1u64..300, m2 in 1u64..300, r in 1u64..80) {
        let table = ContingencyTable::from_histories(
            2,
            std::iter::repeat_n(0b01u16, m1 as usize)
                .chain(std::iter::repeat_n(0b10, m2 as usize))
                .chain(std::iter::repeat_n(0b11, r as usize)),
        );
        let lp = lincoln_petersen(m1 + r, m2 + r, r).unwrap();
        // A limit far above the closed-form total leaves it unconstrained.
        let limit = (lp.n_hat as u64 + 10) * 100;
        let f = fit_llm(
            &table,
            &LogLinearModel::independence(2),
            CellModel::Truncated { limit },
        ).unwrap();
        prop_assert!((f.n_hat - lp.n_hat).abs() < 1e-2 * (1.0 + lp.n_hat),
            "truncated LLM {} vs L-P {}", f.n_hat, lp.n_hat);
    }

    /// Chao's bound is finite, at least the observed count, and invariant
    /// to permuting source roles (it only reads capture frequencies).
    #[test]
    fn chao_bound_sane(hist in masks(4)) {
        let table = ContingencyTable::from_histories(4, hist.iter().copied());
        let e = chao_lower_bound(&table);
        prop_assert!(e.n_hat.is_finite());
        prop_assert!(e.n_hat >= e.observed as f64);
        // Permute sources: swap bits 0 and 3 in every history.
        let permuted: Vec<u16> = hist.iter().map(|&m| {
            let b0 = m & 1;
            let b3 = (m >> 3) & 1;
            (m & !0b1001) | (b0 << 3) | b3
        }).collect();
        let table_p = ContingencyTable::from_histories(4, permuted);
        let e_p = chao_lower_bound(&table_p);
        prop_assert_eq!(e.f1, e_p.f1);
        prop_assert_eq!(e.f2, e_p.f2);
        prop_assert!((e.n_hat - e_p.n_hat).abs() < 1e-9);
    }
}
