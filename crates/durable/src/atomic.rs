//! The atomic file writer: temp file + fsync + rename (+ directory
//! fsync), the only sanctioned way to put a whole file on disk.
//!
//! After a crash at *any* point, a path written through [`atomic_write`]
//! holds either its previous content or the complete new content — never
//! a prefix. The ghost-lint `fs-discipline` rule confines raw
//! `File::create`/`fs::write` to this module so no other code path can
//! reintroduce torn files.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: a `<name>.tmp` sibling is
/// written and fsynced, then renamed over `path`, then the parent
/// directory is fsynced so the rename itself survives a crash.
///
/// # Errors
///
/// Any I/O failure; on failure the destination is untouched (a stale
/// `.tmp` sibling may remain and is ignored by all readers).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Fsyncs a directory so a just-completed rename/create/unlink inside it
/// is durable. A no-op error on platforms that refuse to open directories
/// is swallowed: the data fsync already happened, only the *name* might
/// lag, and every caller tolerates re-finding the old name after a crash.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => handle.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ghosts-durable-atomic-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let path = dir.join("state.json");
        atomic_write(&path, b"v1").expect("first write");
        assert_eq!(std::fs::read(&path).expect("read"), b"v1");
        atomic_write(&path, b"version-two").expect("replace");
        assert_eq!(std::fs::read(&path).expect("read"), b"version-two");
        // No .tmp residue after a successful write.
        assert!(!dir.join("state.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_sibling_is_overwritten_not_fatal() {
        let dir = tmp_dir("stale");
        let path = dir.join("out.bin");
        std::fs::write(dir.join("out.bin.tmp"), b"torn half-write").expect("plant stale tmp");
        atomic_write(&path, b"fresh").expect("write over stale tmp");
        assert_eq!(std::fs::read(&path).expect("read"), b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_pathless_targets() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
