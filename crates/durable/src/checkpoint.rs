//! Generation-numbered atomic checkpoints.
//!
//! A checkpoint is one CRC frame (the same codec as the WAL) whose
//! payload is `generation: u64 LE ++ next_lsn: u64 LE ++ state bytes`,
//! written through [`crate::atomic::atomic_write`] to
//! `ckpt-<generation>.ckpt`. The generation appears in both the file
//! name and the payload; a mismatch (a renamed or spliced file) makes
//! the checkpoint invalid.
//!
//! Recovery takes the **newest valid** generation: a corrupt, torn or
//! mismatched file is quarantined to `<name>.corrupt` and the scan falls
//! back to the next-older one, so a crash mid-checkpoint can never lose
//! the previous good state.

use crate::atomic::{atomic_write, sync_dir};
use crate::frame::{encode_frame, scan_frames, Tail};
use ghosts_faultinject as faults;
use std::io;
use std::path::{Path, PathBuf};

/// Fault-probe site on the checkpoint write path. Honours `io-error`
/// (fail before writing), `torn-write` (leave a torn checkpoint file for
/// recovery to quarantine) and `crash-at-point` (abort after the write).
pub const FAULT_SITE_CHECKPOINT: &str = "durable.checkpoint";

/// Fixed payload prefix: generation + next_lsn, both `u64` LE.
const PAYLOAD_PREFIX_BYTES: usize = 16;

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotone generation number (newest valid generation wins).
    pub generation: u64,
    /// The WAL LSN the state already covers: replay starts here.
    pub next_lsn: u64,
    /// Opaque application state snapshot.
    pub state: Vec<u8>,
}

/// What a [`CheckpointStore::latest`] scan found.
#[derive(Debug, Default)]
pub struct CheckpointScan {
    /// The newest valid checkpoint, if any generation survived.
    pub checkpoint: Option<Checkpoint>,
    /// Files quarantined to `*.corrupt` during the scan (torn writes,
    /// CRC failures, generation mismatches).
    pub quarantined: Vec<PathBuf>,
}

/// The checkpoint directory manager.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn checkpoint_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:020}.ckpt"))
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".ckpt")?
        .parse::<u64>()
        .ok()
}

fn encode_payload(generation: u64, next_lsn: u64, state: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_PREFIX_BYTES + state.len());
    payload.extend_from_slice(&generation.to_le_bytes());
    payload.extend_from_slice(&next_lsn.to_le_bytes());
    payload.extend_from_slice(state);
    payload
}

/// Decodes a checkpoint file's bytes; `None` for anything but exactly one
/// clean frame whose payload generation matches `expect_generation`.
fn decode(bytes: &[u8], expect_generation: u64) -> Option<Checkpoint> {
    let scan = scan_frames(bytes);
    if scan.tail != Tail::Clean || scan.records.len() != 1 {
        return None;
    }
    let payload = scan.records.first()?;
    let generation = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let next_lsn = u64::from_le_bytes(payload.get(8..PAYLOAD_PREFIX_BYTES)?.try_into().ok()?);
    if generation != expect_generation {
        return None;
    }
    Some(Checkpoint {
        generation,
        next_lsn,
        state: payload.get(PAYLOAD_PREFIX_BYTES..)?.to_vec(),
    })
}

impl CheckpointStore {
    /// Opens (creating if absent) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// Sorted (ascending) generations of the checkpoint files on disk.
    fn generations(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(generation) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
                out.push(generation);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Writes checkpoint `generation` atomically (temp + fsync + rename).
    ///
    /// # Errors
    ///
    /// Any I/O failure (including the injected `io-error` fault); the
    /// previous checkpoint generation is untouched either way.
    pub fn write(&self, generation: u64, next_lsn: u64, state: &[u8]) -> io::Result<()> {
        let bytes = encode_frame(&encode_payload(generation, next_lsn, state));
        let path = checkpoint_path(&self.dir, generation);
        match faults::fire(FAULT_SITE_CHECKPOINT) {
            Some(faults::Fault::IoError) => {
                return Err(io::Error::other("injected fault: io-error"));
            }
            Some(faults::Fault::TornWrite) => {
                // Simulate a checkpoint that lands torn despite the rename
                // (e.g. a filesystem that reorders data past the rename):
                // recovery must quarantine it and fall back a generation.
                let cut = bytes.len() / 2;
                // lint: allow(panic-path) cut <= bytes.len() by construction
                std::fs::write(&path, &bytes[..cut])?;
                return Err(io::Error::other("injected fault: torn-write"));
            }
            Some(faults::Fault::CrashAtPoint) => {
                // The checkpoint is durable but nobody hears about it;
                // restart recovery simply adopts the newer generation.
                let _ = atomic_write(&path, &bytes);
                std::process::abort();
            }
            _ => {}
        }
        atomic_write(&path, &bytes)
    }

    /// Scans for the newest valid checkpoint, quarantining invalid files
    /// (torn frame, CRC mismatch, name/payload generation disagreement)
    /// and falling back to older generations.
    ///
    /// # Errors
    ///
    /// Propagates scan/rename I/O failures.
    pub fn latest(&self) -> io::Result<CheckpointScan> {
        let mut scan = CheckpointScan::default();
        let mut generations = self.generations()?;
        generations.reverse();
        for generation in generations {
            let path = checkpoint_path(&self.dir, generation);
            let bytes = std::fs::read(&path)?;
            if let Some(checkpoint) = decode(&bytes, generation) {
                scan.checkpoint = Some(checkpoint);
                break;
            }
            let mut target = path.as_os_str().to_owned();
            target.push(".corrupt");
            let target = PathBuf::from(target);
            std::fs::rename(&path, &target)?;
            scan.quarantined.push(target);
        }
        if !scan.quarantined.is_empty() {
            sync_dir(&self.dir)?;
        }
        Ok(scan)
    }

    /// Deletes all but the newest `keep` checkpoint files and returns the
    /// `next_lsn` of the **oldest retained** valid checkpoint — the safe
    /// WAL prune horizon (segments below it are covered by every survivor).
    ///
    /// # Errors
    ///
    /// Propagates unlink/read failures.
    pub fn retain(&self, keep: usize) -> io::Result<Option<u64>> {
        let generations = self.generations()?;
        let split = generations.len().saturating_sub(keep);
        let (drop, hold) = generations.split_at(split);
        for generation in drop {
            std::fs::remove_file(checkpoint_path(&self.dir, *generation))?;
        }
        if !drop.is_empty() {
            sync_dir(&self.dir)?;
        }
        let mut horizon = None;
        for generation in hold {
            let bytes = std::fs::read(checkpoint_path(&self.dir, *generation))?;
            if let Some(checkpoint) = decode(&bytes, *generation) {
                horizon = Some(checkpoint.next_lsn);
                break;
            }
        }
        Ok(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ghosts-durable-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn newest_valid_generation_wins() {
        let dir = tmp("newest");
        let store = CheckpointStore::open(&dir).expect("open");
        store.write(1, 10, b"old state").expect("gen 1");
        store.write(2, 25, b"new state").expect("gen 2");
        let scan = store.latest().expect("latest");
        let ckpt = scan.checkpoint.expect("a checkpoint");
        assert_eq!(ckpt.generation, 2);
        assert_eq!(ckpt.next_lsn, 25);
        assert_eq!(ckpt.state, b"new state");
        assert!(scan.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_generation() {
        let dir = tmp("fallback");
        let store = CheckpointStore::open(&dir).expect("open");
        store.write(7, 70, b"good").expect("gen 7");
        store.write(8, 80, b"doomed").expect("gen 8");
        let newest = checkpoint_path(&dir, 8);
        let mut bytes = std::fs::read(&newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&newest, &bytes).expect("flip a bit");
        let scan = store.latest().expect("latest");
        let ckpt = scan.checkpoint.expect("fallback checkpoint");
        assert_eq!(ckpt.generation, 7);
        assert_eq!(ckpt.next_lsn, 70);
        assert_eq!(scan.quarantined.len(), 1);
        assert!(scan.quarantined[0].to_string_lossy().ends_with(".corrupt"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_in_renamed_file_is_rejected() {
        let dir = tmp("stale-gen");
        let store = CheckpointStore::open(&dir).expect("open");
        store.write(3, 30, b"real gen 3").expect("gen 3");
        // An operator "restores" gen 3's bytes under gen 9's name: the
        // payload generation disagrees with the file name, so the scan
        // must quarantine it rather than serve stale state as newest.
        std::fs::copy(checkpoint_path(&dir, 3), checkpoint_path(&dir, 9)).expect("copy");
        let scan = store.latest().expect("latest");
        let ckpt = scan.checkpoint.expect("genuine checkpoint survives");
        assert_eq!(ckpt.generation, 3);
        assert_eq!(scan.quarantined.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_file_is_quarantined() {
        let dir = tmp("torn");
        let store = CheckpointStore::open(&dir).expect("open");
        store.write(1, 5, b"intact").expect("gen 1");
        store.write(2, 9, b"will tear").expect("gen 2");
        let newest = checkpoint_path(&dir, 2);
        let bytes = std::fs::read(&newest).expect("read");
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("tear");
        let scan = store.latest().expect("latest");
        assert_eq!(scan.checkpoint.expect("fallback").generation, 1);
        assert_eq!(scan.quarantined.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_keeps_last_two_and_reports_prune_horizon() {
        let dir = tmp("retain");
        let store = CheckpointStore::open(&dir).expect("open");
        for generation in 1..=5u64 {
            store
                .write(generation, generation * 10, b"s")
                .expect("write");
        }
        let horizon = store.retain(2).expect("retain");
        assert_eq!(horizon, Some(40), "oldest survivor is gen 4 at lsn 40");
        assert_eq!(store.generations().expect("list"), vec![4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_has_no_checkpoint() {
        let dir = tmp("empty");
        let store = CheckpointStore::open(&dir).expect("open");
        assert!(store.latest().expect("latest").checkpoint.is_none());
        assert_eq!(store.retain(2).expect("retain"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
