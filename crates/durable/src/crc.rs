//! CRC-32 (IEEE 802.3, the polynomial of zlib/Ethernet/`cksum -o 3`),
//! hand-rolled so the durable layer stays dependency-free.
//!
//! The table is built at compile time from the reflected polynomial
//! `0xEDB88320`; [`crc32`] matches the reference check value
//! `crc32(b"123456789") == 0xCBF4_3926`, so frames written here can be
//! verified by any standard CRC-32 implementation (and vice versa).

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final XOR-out).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        // lint: allow(panic-path) idx is masked to 0..=255 and TABLE has 256 entries
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical CRC-32 check value plus a few fixed points.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"observation batch 42";
        let good = crc32(payload);
        let mut flipped = payload.to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8u8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
