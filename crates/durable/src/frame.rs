//! The WAL frame codec: length-prefixed, CRC-framed records.
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! A frame stream has exactly three terminal states when scanned from the
//! front, and recovery treats them very differently:
//!
//! * **clean** — the stream ends on a frame boundary;
//! * **torn** — the stream ends mid-frame (header or payload cut short).
//!   This is what a crash between `write(2)` and completion leaves behind;
//!   the torn bytes carry no acknowledged record and are safe to truncate;
//! * **corrupt** — a *complete* frame whose CRC does not match, or a
//!   length field that no writer could have produced. Truncation cannot
//!   cause this (cutting a valid stream only shortens it), so it means
//!   bit rot or foreign bytes: the segment must be quarantined, never
//!   silently truncated.

use crate::crc::crc32;

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Hard cap on a single record's payload. A length above this is treated
/// as corruption: the serve layer's bodies are capped at 1 MiB, so an
/// 8 MiB frame cannot have been written by us.
pub const MAX_PAYLOAD_BYTES: usize = 8 * 1024 * 1024;

/// Appends one encoded frame for `payload` onto `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One encoded frame for `payload`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    encode_frame_into(&mut out, payload);
    out
}

/// The encoded size of a frame carrying `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_BYTES + payload_len
}

/// How a frame-stream scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// The stream ends exactly on a frame boundary.
    Clean,
    /// The stream ends mid-frame: `valid_bytes..` is a torn tail left by
    /// an interrupted write and can be truncated away safely.
    Torn,
    /// A complete frame failed its CRC (or declared an impossible
    /// length): the stream is corrupt from `valid_bytes` on and must be
    /// quarantined, not truncated.
    Corrupt,
}

/// Result of scanning a byte stream for frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// The decoded payloads of every valid frame, in order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the longest valid frame prefix.
    pub valid_bytes: usize,
    /// What follows the valid prefix.
    pub tail: Tail,
}

/// Scans `bytes` from the front, decoding frames until the stream ends,
/// tears or corrupts. Never panics on arbitrary input.
pub fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = bytes.get(offset..).unwrap_or_default();
        if rest.is_empty() {
            return ScanOutcome {
                records,
                valid_bytes: offset,
                tail: Tail::Clean,
            };
        }
        if rest.len() < FRAME_HEADER_BYTES {
            return ScanOutcome {
                records,
                valid_bytes: offset,
                tail: Tail::Torn,
            };
        }
        // lint: allow(panic-path) rest.len() >= FRAME_HEADER_BYTES == 8 checked above
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        // lint: allow(panic-path) same 8-byte bound as the length field
        let want = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_PAYLOAD_BYTES {
            return ScanOutcome {
                records,
                valid_bytes: offset,
                tail: Tail::Corrupt,
            };
        }
        let Some(payload) = rest.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
            return ScanOutcome {
                records,
                valid_bytes: offset,
                tail: Tail::Torn,
            };
        };
        if crc32(payload) != want {
            return ScanOutcome {
                records,
                valid_bytes: offset,
                tail: Tail::Corrupt,
            };
        }
        records.push(payload.to_vec());
        offset += frame_len(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            encode_frame_into(&mut out, p);
        }
        out
    }

    #[test]
    fn round_trips_multiple_frames() {
        let bytes = stream(&[b"alpha", b"", b"gamma rays"]);
        let scan = scan_frames(&bytes);
        assert_eq!(scan.tail, Tail::Clean);
        assert_eq!(scan.valid_bytes, bytes.len());
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma rays".to_vec()]
        );
    }

    #[test]
    fn truncation_anywhere_is_torn_never_corrupt() {
        let bytes = stream(&[b"one", b"two22", b"three333"]);
        for cut in 0..bytes.len() {
            let scan = scan_frames(&bytes[..cut]);
            assert_ne!(scan.tail, Tail::Corrupt, "cut at {cut} misread as corrupt");
            assert!(scan.valid_bytes <= cut);
        }
    }

    #[test]
    fn bit_flip_in_a_complete_frame_is_corrupt() {
        let mut bytes = stream(&[b"first", b"second"]);
        let first_len = frame_len(5);
        bytes[first_len + FRAME_HEADER_BYTES] ^= 0x01; // payload byte of frame 2
        let scan = scan_frames(&bytes);
        assert_eq!(scan.tail, Tail::Corrupt);
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert_eq!(scan.valid_bytes, first_len);
    }

    #[test]
    fn absurd_length_field_is_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_frames(&bytes);
        assert_eq!(scan.tail, Tail::Corrupt);
        assert!(scan.records.is_empty());
    }
}
