//! Crash-safe storage primitives for the ghosts state plane
//! (DESIGN.md §16).
//!
//! The crate is dependency-free (std only) and provides four layers,
//! each usable on its own:
//!
//! * [`crc`] — compile-time-tabled CRC-32 (IEEE), the integrity check
//!   every frame carries;
//! * [`frame`] — the `[len][crc][payload]` codec and the three-way tail
//!   classification (clean / torn / corrupt) recovery decisions hang on;
//! * [`atomic`] — [`atomic_write`]: temp file + fsync + rename + parent
//!   fsync, the only sanctioned whole-file writer in the workspace (the
//!   ghost-lint `fs-discipline` rule confines raw `File::create` here);
//! * [`wal`] / [`checkpoint`] / [`log`] — the segmented write-ahead log,
//!   generation-numbered checkpoints, and the [`DurableLog`] facade that
//!   runs the recovery protocol on open.
//!
//! # The durability contract
//!
//! An append is **acknowledged** only after its frame is fsynced
//! (append → fsync → ack). After `kill -9` at any instant,
//! [`DurableLog::open`] recovers a state containing *every acknowledged
//! record*: torn tails (crashes mid-write carry no acked record) are
//! truncated at the last valid frame, corrupt files are quarantined to
//! `*.corrupt` with the previous checkpoint generation as fallback, and
//! replay is deterministic — the same surviving bytes produce the same
//! record sequence regardless of thread count.
//!
//! Fault probes at [`FAULT_SITE_WAL_APPEND`] and
//! [`FAULT_SITE_CHECKPOINT`] (kinds `io-error`, `torn-write`,
//! `crash-at-point`) let the chaos harness exercise each failure edge
//! deterministically; see `ghosts_faultinject`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod checkpoint;
pub mod crc;
pub mod frame;
pub mod log;
pub mod wal;

pub use atomic::{atomic_write, sync_dir};
pub use checkpoint::{Checkpoint, CheckpointScan, CheckpointStore, FAULT_SITE_CHECKPOINT};
pub use crc::crc32;
pub use frame::{
    encode_frame, encode_frame_into, frame_len, scan_frames, ScanOutcome, Tail, FRAME_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
};
pub use log::{DurableLog, Recovery, RecoveryReport, WalConfigOverride, RETAIN_CHECKPOINTS};
pub use wal::{Wal, WalConfig, WalError, WalRecovery, FAULT_SITE_WAL_APPEND};
