//! [`DurableLog`]: the checkpoint + WAL pair an application actually
//! holds.
//!
//! Layout under the state directory:
//!
//! ```text
//! <dir>/ckpt-<generation>.ckpt   newest-wins atomic snapshots
//! <dir>/wal/seg-<first-lsn>.wal  bounded CRC-framed segments
//! ```
//!
//! [`DurableLog::open`] performs the full recovery protocol — load the
//! newest valid checkpoint, replay the WAL suffix at or past its
//! `next_lsn`, truncate any torn tail, quarantine anything corrupt — and
//! hands back a [`Recovery`] the application folds into its state.
//! [`DurableLog::checkpoint`] snapshots state under the next generation,
//! retains the last two generations and prunes WAL segments the oldest
//! survivor already covers, keeping disk usage bounded.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::wal::{Wal, WalConfig, WalError};
use std::path::{Path, PathBuf};

/// Checkpoint generations kept on disk (newest + one fallback).
pub const RETAIN_CHECKPOINTS: usize = 2;

/// Counters describing what recovery had to do — surfaced through
/// `/metrics` and the `wal_recovered` event so operators can see crash
/// damage instead of guessing.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the checkpoint that was loaded (`None`: cold start).
    pub checkpoint_generation: Option<u64>,
    /// Checkpoint files quarantined while finding a valid one.
    pub checkpoints_quarantined: u64,
    /// WAL records scanned across all segments.
    pub wal_records_scanned: u64,
    /// WAL records replayed (at or past the checkpoint's `next_lsn`).
    pub wal_records_replayed: u64,
    /// Torn-tail bytes truncated from the final segment.
    pub torn_tail_bytes: u64,
    /// WAL segments quarantined to `*.corrupt`.
    pub segments_quarantined: u64,
}

/// Everything [`DurableLog::open`] salvaged from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// WAL records to re-apply on top of the checkpoint state, in LSN
    /// order, each `(lsn, payload)` with `lsn >= checkpoint.next_lsn`.
    pub replay: Vec<(u64, Vec<u8>)>,
    /// What the scan found and fixed.
    pub report: RecoveryReport,
}

/// An open durable state plane: append records, snapshot checkpoints.
pub struct DurableLog {
    wal: Wal,
    checkpoints: CheckpointStore,
    generation: u64,
}

impl DurableLog {
    /// Opens (or initialises) the state directory and runs recovery.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from either store's scan.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(DurableLog, Recovery), WalError> {
        Self::open_with(dir, WalConfigOverride::default())
    }

    /// [`DurableLog::open`] with WAL tuning (segment size, fsync policy).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from either store's scan.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        tuning: WalConfigOverride,
    ) -> Result<(DurableLog, Recovery), WalError> {
        let dir = dir.into();
        let checkpoints = CheckpointStore::open(&dir)?;
        let scan = checkpoints.latest()?;
        let mut wal_config = WalConfig::new(dir.join("wal"));
        if let Some(segment_bytes) = tuning.segment_bytes {
            wal_config.segment_bytes = segment_bytes;
        }
        if let Some(fsync) = tuning.fsync {
            wal_config.fsync = fsync;
        }
        let (wal, wal_recovery) = Wal::open(wal_config)?;

        let next_lsn = scan.checkpoint.as_ref().map_or(0, |c| c.next_lsn);
        let scanned = wal_recovery.records.len() as u64;
        let replay: Vec<(u64, Vec<u8>)> = wal_recovery
            .records
            .into_iter()
            .filter(|(lsn, _)| *lsn >= next_lsn)
            .collect();
        let report = RecoveryReport {
            checkpoint_generation: scan.checkpoint.as_ref().map(|c| c.generation),
            checkpoints_quarantined: scan.quarantined.len() as u64,
            wal_records_scanned: scanned,
            wal_records_replayed: replay.len() as u64,
            torn_tail_bytes: wal_recovery.torn_tail_bytes,
            segments_quarantined: wal_recovery.quarantined.len() as u64,
        };
        let generation = scan.checkpoint.as_ref().map_or(0, |c| c.generation);
        Ok((
            DurableLog {
                wal,
                checkpoints,
                generation,
            },
            Recovery {
                checkpoint: scan.checkpoint,
                replay,
                report,
            },
        ))
    }

    /// Appends one record durably (append → fsync → ack) and returns its
    /// LSN. Only records whose append returned `Ok` are acknowledged.
    ///
    /// # Errors
    ///
    /// See [`Wal::append`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        self.wal.append(payload)
    }

    /// The LSN the next append will return.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// The generation of the most recent checkpoint (0: none yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Snapshots `state` as the next checkpoint generation covering every
    /// record appended so far, retains the last [`RETAIN_CHECKPOINTS`]
    /// generations, and prunes WAL segments the survivors cover. Returns
    /// the new generation.
    ///
    /// # Errors
    ///
    /// Propagates the checkpoint write (including injected faults at
    /// `durable.checkpoint`); on error no generation is consumed and the
    /// previous checkpoint remains authoritative.
    pub fn checkpoint(&mut self, state: &[u8]) -> Result<u64, WalError> {
        let generation = self.generation + 1;
        self.checkpoints
            .write(generation, self.wal.next_lsn(), state)
            .map_err(WalError::Io)?;
        self.generation = generation;
        if let Some(horizon) = self.checkpoints.retain(RETAIN_CHECKPOINTS)? {
            self.wal.prune_up_to(horizon)?;
        }
        Ok(generation)
    }

    /// Number of WAL segment files on disk (for `/metrics`).
    ///
    /// # Errors
    ///
    /// Propagates the directory scan failure.
    pub fn wal_segments(&self) -> Result<u64, WalError> {
        self.wal.segment_count()
    }
}

/// Optional WAL tuning for [`DurableLog::open_with`].
#[derive(Debug, Default, Clone)]
pub struct WalConfigOverride {
    /// Segment rotation bound, if overriding the 1 MiB default.
    pub segment_bytes: Option<u64>,
    /// Fsync policy, if overriding the always-fsync default.
    pub fsync: Option<bool>,
}

/// Convenience for tests and tools: the checkpoint file path for `dir`.
pub fn checkpoint_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:020}.ckpt"))
}

/// Convenience for tests and tools: the WAL segment path for `dir`.
pub fn wal_segment_file(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join("wal").join(format!("seg-{first_lsn:020}.wal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ghosts-durable-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_start_then_replay_everything() {
        let dir = tmp("cold");
        let (mut log, recovery) = DurableLog::open(&dir).expect("open");
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.replay.is_empty());
        for i in 0..5u64 {
            assert_eq!(log.append(format!("r{i}").as_bytes()).expect("append"), i);
        }
        drop(log);
        let (_, recovery) = DurableLog::open(&dir).expect("reopen");
        assert_eq!(recovery.report.wal_records_replayed, 5);
        assert_eq!(recovery.replay[3].1, b"r3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_trims_replay_to_the_suffix() {
        let dir = tmp("suffix");
        let (mut log, _) = DurableLog::open(&dir).expect("open");
        for i in 0..4u64 {
            log.append(format!("pre{i}").as_bytes()).expect("append");
        }
        assert_eq!(log.checkpoint(b"state-after-4").expect("checkpoint"), 1);
        for i in 0..3u64 {
            log.append(format!("post{i}").as_bytes()).expect("append");
        }
        drop(log);
        let (log2, recovery) = DurableLog::open(&dir).expect("reopen");
        let checkpoint = recovery.checkpoint.expect("checkpoint");
        assert_eq!(checkpoint.state, b"state-after-4");
        assert_eq!(checkpoint.next_lsn, 4);
        let payloads: Vec<&[u8]> = recovery.replay.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"post0"[..], b"post1", b"post2"]);
        assert_eq!(recovery.report.checkpoint_generation, Some(1));
        assert_eq!(log2.generation(), 1);
        assert_eq!(log2.next_lsn(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_checkpoints_bound_disk_and_keep_a_fallback() {
        let dir = tmp("bound");
        let (mut log, _) = DurableLog::open_with(
            &dir,
            WalConfigOverride {
                segment_bytes: Some(64),
                fsync: Some(true),
            },
        )
        .expect("open");
        for round in 0..6u64 {
            for i in 0..4u64 {
                log.append(format!("round{round}-{i}").as_bytes())
                    .expect("append");
            }
            log.checkpoint(format!("state@{round}").as_bytes())
                .expect("checkpoint");
        }
        // Only 2 checkpoint files survive; pruned WAL stays replayable.
        let ckpts = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
            .count();
        assert_eq!(ckpts, 2);
        drop(log);
        let (log2, recovery) = DurableLog::open(&dir).expect("reopen");
        assert_eq!(recovery.checkpoint.expect("newest").state, b"state@5");
        assert!(recovery.replay.is_empty(), "checkpoint covered everything");
        assert_eq!(log2.next_lsn(), 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_and_replays_more_wal() {
        let dir = tmp("ckpt-fallback");
        let (mut log, _) = DurableLog::open(&dir).expect("open");
        log.append(b"a").expect("append");
        log.append(b"b").expect("append");
        log.checkpoint(b"gen1@2").expect("gen 1");
        log.append(b"c").expect("append");
        log.checkpoint(b"gen2@3").expect("gen 2");
        log.append(b"d").expect("append");
        drop(log);
        let newest = checkpoint_file(&dir, 2);
        let mut bytes = std::fs::read(&newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&newest, &bytes).expect("corrupt gen 2");

        let (_, recovery) = DurableLog::open(&dir).expect("recover");
        let checkpoint = recovery.checkpoint.expect("gen 1 fallback");
        assert_eq!(checkpoint.state, b"gen1@2");
        assert_eq!(recovery.report.checkpoints_quarantined, 1);
        // Replay resumes from gen 1's horizon: records c and d.
        let payloads: Vec<&[u8]> = recovery.replay.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"c"[..], b"d"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
