//! The segmented write-ahead log.
//!
//! Records live in bounded segment files named after the LSN of their
//! first record (`seg-<first-lsn>.wal`, zero-padded so lexicographic
//! order is LSN order). The append path is **append → fsync → ack**: an
//! LSN is returned only after the frame's bytes have reached the device,
//! so a record whose append returned `Ok` survives `kill -9` by
//! construction.
//!
//! Recovery ([`Wal::open`]) replays segments in LSN order and resolves
//! the three tail states of [`crate::frame`]: a clean end appends in
//! place, a torn tail (crash mid-write) is truncated back to the last
//! valid frame, and a corrupt segment (CRC mismatch on a complete frame)
//! is quarantined — renamed to `<name>.corrupt` together with every later
//! segment, because the LSN chain is broken from that point on. A torn
//! tail in a non-final segment breaks the chain the same way.

use crate::frame::{encode_frame, scan_frames, Tail, FRAME_HEADER_BYTES, MAX_PAYLOAD_BYTES};
use ghosts_faultinject as faults;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Fault-probe site on the WAL append path. Honours `io-error` (fail
/// before writing), `torn-write` (write a partial frame, then fail) and
/// `crash-at-point` (abort the process after fsync, before the ack).
pub const FAULT_SITE_WAL_APPEND: &str = "durable.wal.append";

/// Default segment size bound.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1024 * 1024;

/// Tuning for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Fsync every append before acknowledging (the durability contract;
    /// only benches measuring raw throughput turn this off).
    pub fsync: bool,
}

impl WalConfig {
    /// Defaults: 1 MiB segments, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: true,
        }
    }
}

/// Why an append failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying I/O failed (includes injected `io-error` /
    /// `torn-write` faults). The record was **not** acknowledged.
    Io(io::Error),
    /// The payload exceeds [`MAX_PAYLOAD_BYTES`].
    TooLarge(usize),
    /// A previous append failed mid-write, so the segment tail is in an
    /// unknown state; the WAL refuses further appends until reopened
    /// (recovery truncates the torn tail).
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o failure: {e}"),
            WalError::TooLarge(n) => {
                write!(
                    f,
                    "record of {n} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte frame cap"
                )
            }
            WalError::Poisoned => {
                f.write_str("wal poisoned by an earlier torn write; reopen to recover")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Every surviving record, `(lsn, payload)`, in LSN order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes of torn tail truncated away (0 on a clean shutdown).
    pub torn_tail_bytes: u64,
    /// Segments renamed to `*.corrupt` (CRC failure or a broken LSN
    /// chain). Their surviving prefix records, if any, are in `records`.
    pub quarantined: Vec<PathBuf>,
}

/// An open, appendable write-ahead log.
pub struct Wal {
    config: WalConfig,
    file: File,
    segment_base: u64,
    segment_len: u64,
    next_lsn: u64,
    poisoned: bool,
}

fn segment_path(dir: &Path, base_lsn: u64) -> PathBuf {
    dir.join(format!("seg-{base_lsn:020}.wal"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".wal")?
        .parse::<u64>()
        .ok()
}

/// Sorted `(base_lsn, path)` list of the segment files in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(base) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((base, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(base, _)| *base);
    Ok(out)
}

/// Renames `path` to `<path>.corrupt` (replacing any previous quarantine
/// of the same name) and records it in `recovery`.
fn quarantine(path: &Path, recovery: &mut WalRecovery) -> io::Result<()> {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    let target = PathBuf::from(target);
    std::fs::rename(path, &target)?;
    recovery.quarantined.push(target);
    Ok(())
}

impl Wal {
    /// Opens (or creates) the log in `config.dir`, scanning every
    /// segment: valid records are returned for replay, a torn tail is
    /// truncated, corrupt or chain-breaking segments are quarantined.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the scan or the segment open.
    pub fn open(config: WalConfig) -> Result<(Wal, WalRecovery), WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let segments = list_segments(&config.dir)?;
        let mut recovery = WalRecovery::default();
        let mut next_lsn = segments.first().map_or(0, |(base, _)| *base);
        // The chain breaks at the first corrupt frame, torn middle segment
        // or LSN gap; everything after it is quarantined wholesale.
        let mut broken = false;
        let mut live_segment: Option<(u64, PathBuf, u64)> = None; // (base, path, len)
        let last_index = segments.len().saturating_sub(1);
        for (index, (base, path)) in segments.iter().enumerate() {
            if broken || *base != next_lsn {
                quarantine(path, &mut recovery)?;
                broken = true;
                continue;
            }
            let bytes = std::fs::read(path)?;
            let scan = scan_frames(&bytes);
            for payload in scan.records {
                recovery.records.push((next_lsn, payload));
                next_lsn += 1;
            }
            match scan.tail {
                Tail::Clean => {
                    live_segment = Some((*base, path.clone(), scan.valid_bytes as u64));
                }
                Tail::Torn => {
                    recovery.torn_tail_bytes += (bytes.len() - scan.valid_bytes) as u64;
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(scan.valid_bytes as u64)?;
                    file.sync_all()?;
                    if index == last_index {
                        live_segment = Some((*base, path.clone(), scan.valid_bytes as u64));
                    } else {
                        // A torn middle segment means later LSNs are gone.
                        broken = true;
                        live_segment = None;
                    }
                }
                Tail::Corrupt => {
                    quarantine(path, &mut recovery)?;
                    broken = true;
                    live_segment = None;
                }
            }
        }
        if !recovery.quarantined.is_empty() {
            crate::atomic::sync_dir(&config.dir)?;
        }

        // Append into the surviving final segment if it has room,
        // otherwise start a fresh one at the recovered LSN.
        let (segment_base, path, segment_len) = match live_segment {
            Some((base, path, len)) if len < config.segment_bytes => (base, path, len),
            _ => (next_lsn, segment_path(&config.dir, next_lsn), 0),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        crate::atomic::sync_dir(&config.dir)?;
        Ok((
            Wal {
                config,
                file,
                segment_base,
                segment_len,
                next_lsn,
                poisoned: false,
            },
            recovery,
        ))
    }

    /// The LSN the next successful append will return.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends one record and returns its LSN **after** the bytes are on
    /// the device (append → fsync → ack).
    ///
    /// # Errors
    ///
    /// [`WalError::TooLarge`] for oversized payloads; [`WalError::Io`]
    /// when the write or fsync fails (nothing was acknowledged; the WAL
    /// poisons itself if bytes may have been partially written);
    /// [`WalError::Poisoned`] after such a failure until reopened.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(WalError::TooLarge(payload.len()));
        }
        let frame = encode_frame(payload);
        if self.segment_len > 0 && self.segment_len + frame.len() as u64 > self.config.segment_bytes
        {
            self.rotate()?;
        }
        match faults::fire(FAULT_SITE_WAL_APPEND) {
            Some(faults::Fault::IoError) => {
                // Fails before any byte reaches the file: clean, no ack.
                return Err(WalError::Io(io::Error::other("injected fault: io-error")));
            }
            Some(faults::Fault::TornWrite) => {
                // A power cut mid-write(2): a frame prefix lands on disk
                // and the process never acks. The tail is now garbage, so
                // the WAL poisons itself; reopening truncates the tear.
                let cut = FRAME_HEADER_BYTES + payload.len() / 2;
                // lint: allow(panic-path) cut <= header + payload == frame.len() by construction
                let _ = self.file.write_all(&frame[..cut]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(WalError::Io(io::Error::other("injected fault: torn-write")));
            }
            Some(faults::Fault::CrashAtPoint) => {
                // kill -9 between durability and the ack: the record is on
                // disk, the client never hears Ok. Recovery replays it;
                // idempotency keys make the client's retry a duplicate.
                if self.file.write_all(&frame).is_ok() {
                    let _ = self.file.sync_data();
                }
                std::process::abort();
            }
            _ => {}
        }
        if let Err(e) = self.file.write_all(&frame) {
            // Partial bytes may be on disk; refuse further appends.
            self.poisoned = true;
            return Err(WalError::Io(e));
        }
        if self.config.fsync {
            if let Err(e) = self.file.sync_data() {
                self.poisoned = true;
                return Err(WalError::Io(e));
            }
        }
        self.segment_len += frame.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        let path = segment_path(&self.config.dir, self.next_lsn);
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        crate::atomic::sync_dir(&self.config.dir)?;
        self.segment_base = self.next_lsn;
        self.segment_len = 0;
        Ok(())
    }

    /// Deletes every segment whose records are all below `lsn` (they are
    /// covered by a checkpoint). The active segment is never deleted.
    /// Returns how many segments were removed.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan or unlink failures.
    pub fn prune_up_to(&mut self, lsn: u64) -> Result<u64, WalError> {
        let segments = list_segments(&self.config.dir)?;
        let mut removed = 0u64;
        for window in segments.windows(2) {
            let [(base, path), (next_base, _)] = window else {
                continue;
            };
            if *next_base <= lsn && *base != self.segment_base {
                std::fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            crate::atomic::sync_dir(&self.config.dir)?;
        }
        Ok(removed)
    }

    /// Number of segment files currently on disk.
    ///
    /// # Errors
    ///
    /// Propagates the directory scan failure.
    pub fn segment_count(&self) -> Result<u64, WalError> {
        Ok(list_segments(&self.config.dir)?.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ghosts-durable-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 64,
            fsync: true,
        }
    }

    #[test]
    fn appends_rotate_and_replay_in_lsn_order() {
        let dir = tmp("rotate");
        let (mut wal, rec) = Wal::open(small_config(&dir)).expect("open");
        assert!(rec.records.is_empty());
        for i in 0..10u64 {
            let lsn = wal
                .append(format!("record-{i:02}").as_bytes())
                .expect("append");
            assert_eq!(lsn, i);
        }
        assert!(
            wal.segment_count().expect("count") > 1,
            "64-byte segments must rotate"
        );
        drop(wal);
        let (wal2, rec2) = Wal::open(small_config(&dir)).expect("reopen");
        assert_eq!(wal2.next_lsn(), 10);
        let lsns: Vec<u64> = rec2.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (0..10).collect::<Vec<_>>());
        assert_eq!(rec2.records[7].1, b"record-07");
        assert_eq!(rec2.torn_tail_bytes, 0);
        assert!(rec2.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_drops_fully_covered_segments_only() {
        let dir = tmp("prune");
        let (mut wal, _) = Wal::open(small_config(&dir)).expect("open");
        for i in 0..12u64 {
            wal.append(format!("record-{i:02}").as_bytes())
                .expect("append");
        }
        let before = wal.segment_count().expect("count");
        let removed = wal.prune_up_to(wal.next_lsn()).expect("prune");
        assert!(removed > 0 && removed < before);
        // Everything still replayable chains from the surviving base.
        drop(wal);
        let (wal2, rec) = Wal::open(small_config(&dir)).expect("reopen");
        assert_eq!(wal2.next_lsn(), 12);
        assert!(rec.quarantined.is_empty());
        for (lsn, payload) in &rec.records {
            assert_eq!(payload, format!("record-{lsn:02}").as_bytes());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp("torn");
        let config = WalConfig::new(&dir);
        let (mut wal, _) = Wal::open(config.clone()).expect("open");
        wal.append(b"kept").expect("append");
        wal.append(b"also kept").expect("append");
        drop(wal);
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).expect("read segment");
        bytes.extend_from_slice(&[7, 0, 0, 0, 0xAA]); // header + 1 of 7 payload bytes missing
        std::fs::write(&seg, &bytes).expect("tear the tail");

        let (mut wal2, rec) = Wal::open(config.clone()).expect("recover");
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.torn_tail_bytes, 5);
        assert!(rec.quarantined.is_empty());
        assert_eq!(wal2.append(b"after recovery").expect("append resumes"), 2);
        drop(wal2);
        let (_, rec2) = Wal::open(config).expect("reopen");
        assert_eq!(rec2.records.len(), 3);
        assert_eq!(rec2.records[2].1, b"after recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_is_quarantined_with_its_successors() {
        let dir = tmp("corrupt");
        let config = small_config(&dir);
        let (mut wal, _) = Wal::open(config.clone()).expect("open");
        for i in 0..12u64 {
            wal.append(format!("record-{i:02}").as_bytes())
                .expect("append");
        }
        let segments = list_segments(&dir).expect("list");
        assert!(segments.len() >= 3, "need a middle segment to corrupt");
        let (victim_base, victim) = segments[1].clone();
        let mut bytes = std::fs::read(&victim).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80; // flip a payload bit in a complete frame
        std::fs::write(&victim, &bytes).expect("corrupt");
        drop(wal);

        let (wal2, rec) = Wal::open(config).expect("recover");
        // Records before the corrupt segment survive; the chain stops there.
        assert!(!rec.records.is_empty());
        assert!(rec.records.iter().all(|(l, _)| *l < victim_base + 2));
        assert_eq!(
            rec.quarantined.len(),
            segments.len() - 1,
            "victim + successors"
        );
        assert!(rec
            .quarantined
            .iter()
            .all(|p| { p.extension().is_some_and(|e| e == "corrupt") }));
        assert_eq!(wal2.next_lsn() as usize, rec.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payloads_are_refused_without_poisoning() {
        let dir = tmp("oversize");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
        let huge = vec![0u8; MAX_PAYLOAD_BYTES + 1];
        assert!(matches!(wal.append(&huge), Err(WalError::TooLarge(_))));
        assert_eq!(wal.append(b"still fine").expect("append"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
