//! Recovery-protocol integration tests (PR 9, satellite 3): the WAL
//! truncation property at *every* byte boundary, bit-flipped CRC
//! quarantine, stale-generation checkpoint fixtures and injected storage
//! faults on the append and checkpoint paths.
//!
//! The fault plan is process-global, so every test that installs one
//! takes `PLAN_LOCK`, installs, and clears before releasing the lock
//! (the same discipline as `ghosts-core`'s fault ladder tests).

use ghosts_durable::log::{checkpoint_file, wal_segment_file};
use ghosts_durable::{encode_frame_into, scan_frames, DurableLog, Tail, Wal, WalConfig, WalError};
use ghosts_faultinject::{clear, install, FaultPlan};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghosts-durable-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The central property: truncating a WAL segment at **every** byte
/// boundary and replaying yields exactly the longest valid frame prefix —
/// never a corrupt verdict, never a record the full log did not contain,
/// and always every record whose final byte survived the cut.
#[test]
fn truncation_at_every_byte_boundary_replays_longest_valid_prefix() {
    let dir = tmp("every-byte");
    let config = WalConfig::new(dir.join("wal"));
    let (mut wal, _) = Wal::open(config).expect("open");
    // Varied payload sizes (including empty) so cuts land in headers,
    // payload bodies and exactly on boundaries.
    let payloads: Vec<Vec<u8>> = [0usize, 1, 3, 8, 13, 21, 34, 55, 2]
        .iter()
        .enumerate()
        .map(|(i, len)| {
            (0..*len)
                .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
                .collect()
        })
        .collect();
    for p in &payloads {
        wal.append(p).expect("append");
    }
    drop(wal);
    let segment = wal_segment_file(&dir, 0);
    let full = std::fs::read(&segment).expect("read segment");

    // Frame boundaries from the layout math alone, independent of the
    // codec under test.
    let mut boundaries = vec![0usize];
    for p in &payloads {
        let last = *boundaries.last().expect("non-empty");
        boundaries.push(last + 8 + p.len());
    }
    assert_eq!(*boundaries.last().expect("non-empty"), full.len());

    for cut in 0..=full.len() {
        let scratch = tmp("every-byte-scratch");
        std::fs::create_dir_all(scratch.join("wal")).expect("scratch wal dir");
        std::fs::write(wal_segment_file(&scratch, 0), &full[..cut]).expect("plant cut");
        let (wal, recovery) =
            Wal::open(WalConfig::new(scratch.join("wal"))).expect("recover from cut");
        let expect_records = boundaries.iter().filter(|b| **b > 0 && **b <= cut).count();
        assert_eq!(
            recovery.records.len(),
            expect_records,
            "cut at byte {cut}: wrong record count"
        );
        for (lsn, payload) in &recovery.records {
            assert_eq!(
                payload, &payloads[*lsn as usize],
                "cut at byte {cut}: lsn {lsn} replayed wrong bytes"
            );
        }
        assert!(
            recovery.quarantined.is_empty(),
            "cut at {cut} misread as corrupt"
        );
        // The recovered WAL accepts appends at the next free LSN.
        assert_eq!(wal.next_lsn(), expect_records as u64);
        drop(wal);
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scanning is pure: the same truncated bytes always classify the same
/// way, and a cut of a valid stream is never `Corrupt`.
#[test]
fn scan_classification_is_stable_across_cuts() {
    let mut stream = Vec::new();
    for i in 0..6u8 {
        encode_frame_into(&mut stream, &vec![i; usize::from(i) * 5]);
    }
    for cut in 0..=stream.len() {
        let a = scan_frames(&stream[..cut]);
        let b = scan_frames(&stream[..cut]);
        assert_eq!(a, b);
        assert_ne!(a.tail, Tail::Corrupt);
    }
}

#[test]
fn bit_flipped_crc_quarantines_the_segment_but_keeps_the_prefix() {
    let dir = tmp("bitflip");
    let (mut log, _) = DurableLog::open(&dir).expect("open");
    for i in 0..4u64 {
        log.append(format!("acked-{i}").as_bytes()).expect("append");
    }
    drop(log);
    let segment = wal_segment_file(&dir, 0);
    let mut bytes = std::fs::read(&segment).expect("read");
    // Flip one bit inside the CRC field of the final (complete) frame.
    let final_frame_start = bytes.len() - (8 + "acked-3".len());
    bytes[final_frame_start + 4] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("flip");

    let (_, recovery) = DurableLog::open(&dir).expect("recover");
    assert_eq!(recovery.report.segments_quarantined, 1);
    assert_eq!(recovery.report.wal_records_replayed, 3, "prefix survives");
    let mut quarantined = segment.into_os_string();
    quarantined.push(".corrupt");
    assert!(PathBuf::from(quarantined).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stale checkpoint restored under a newer generation's file name must
/// not shadow genuine state (the payload carries its own generation).
#[test]
fn stale_generation_checkpoint_is_quarantined_not_loaded() {
    let dir = tmp("stale-ckpt");
    let (mut log, _) = DurableLog::open(&dir).expect("open");
    log.append(b"one").expect("append");
    log.checkpoint(b"genuine@1").expect("checkpoint");
    drop(log);
    std::fs::copy(checkpoint_file(&dir, 1), checkpoint_file(&dir, 999)).expect("plant stale copy");
    let (log2, recovery) = DurableLog::open(&dir).expect("recover");
    let checkpoint = recovery.checkpoint.expect("genuine survives");
    assert_eq!(checkpoint.generation, 1);
    assert_eq!(checkpoint.state, b"genuine@1");
    assert_eq!(recovery.report.checkpoints_quarantined, 1);
    // The next checkpoint continues from the genuine generation.
    assert_eq!(log2.generation(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `io-error` at `durable.wal.append` (zero-based hit 0: the first probe)
/// fails the append cleanly: nothing acked, nothing on disk, no LSN
/// consumed, and the very next append succeeds.
#[test]
fn injected_io_error_fails_without_acknowledging() {
    let _g = lock();
    let dir = tmp("io-error");
    let plan = FaultPlan::parse("site=durable.wal.append kind=io-error hit=0").expect("plan");
    install(plan).expect("feature is armed in tests");
    let (mut log, _) = DurableLog::open(&dir).expect("open");
    let first = log.append(b"doomed");
    let second = log.append(b"fine");
    clear();
    assert!(
        matches!(first, Err(WalError::Io(_))),
        "first append must fail with the injected error"
    );
    assert_eq!(second.expect("second append"), 0, "no LSN was consumed");
    drop(log);
    let (_, recovery) = DurableLog::open(&dir).expect("recover");
    assert_eq!(recovery.report.wal_records_replayed, 1);
    assert_eq!(recovery.replay[0].1, b"fine");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `torn-write` (hit 1: the second append) leaves a half frame and
/// poisons the WAL; reopening truncates the tear and appends resume at
/// the unconsumed LSN.
#[test]
fn injected_torn_write_poisons_then_recovery_truncates() {
    let _g = lock();
    let dir = tmp("torn-fault");
    let plan = FaultPlan::parse("site=durable.wal.append kind=torn-write hit=1").expect("plan");
    install(plan).expect("feature is armed in tests");
    let (mut log, _) = DurableLog::open(&dir).expect("open");
    log.append(b"acked before the tear").expect("append");
    let torn = log.append(b"torn away");
    let poisoned = log.append(b"refused");
    clear();
    drop(log);
    assert!(matches!(torn, Err(WalError::Io(_))));
    assert!(matches!(poisoned, Err(WalError::Poisoned)));

    let (mut log, recovery) = DurableLog::open(&dir).expect("recover");
    assert_eq!(
        recovery.report.wal_records_replayed, 1,
        "only the acked record"
    );
    assert_eq!(recovery.replay[0].1, b"acked before the tear");
    assert!(recovery.report.torn_tail_bytes > 0, "the tear was measured");
    assert_eq!(recovery.report.segments_quarantined, 0, "torn != corrupt");
    assert_eq!(log.append(b"after recovery").expect("append"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `io-error` at `durable.checkpoint` (hit 1: the second checkpoint)
/// leaves the previous generation authoritative and consumes no
/// generation number.
#[test]
fn injected_checkpoint_error_preserves_previous_generation() {
    let _g = lock();
    let dir = tmp("ckpt-fault");
    let plan = FaultPlan::parse("site=durable.checkpoint kind=io-error hit=1").expect("plan");
    install(plan).expect("feature is armed in tests");
    let (mut log, _) = DurableLog::open(&dir).expect("open");
    log.append(b"a").expect("append");
    let first = log.checkpoint(b"good@1");
    log.append(b"b").expect("append");
    let failed = log.checkpoint(b"never lands");
    let retried = log.checkpoint(b"good@2");
    clear();
    drop(log);
    assert_eq!(first.expect("first checkpoint"), 1);
    assert!(failed.is_err(), "second checkpoint write must fail");
    assert_eq!(retried.expect("retry"), 2, "no generation was consumed");
    let (_, recovery) = DurableLog::open(&dir).expect("recover");
    assert_eq!(recovery.checkpoint.expect("newest").state, b"good@2");
    let _ = std::fs::remove_dir_all(&dir);
}
