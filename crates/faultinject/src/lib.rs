//! # ghosts-faultinject — deterministic, plan-driven fault injection
//!
//! The estimation pipeline runs hundreds of independent fits per `repro`
//! invocation. To prove that the graceful-degradation ladder (DESIGN.md §11)
//! actually catches every failure class, this crate plants *fault points* in
//! the library code (`glm::fit`, `select_model`, `profile_interval_traced`,
//! the pipeline loaders, `par_map`) that a [`FaultPlan`] can trigger on
//! demand — forcing a non-finite fit, exhausting the Newton budget,
//! poisoning a cell with NaN, dropping a source from a window, or panicking
//! inside a worker. The serving layer adds two sites of its own
//! (DESIGN.md §12): `serve.handler` (worker-panic — the request handler
//! panics mid-estimate and must answer 500 with a trace while its worker
//! survives) and `serve.cache` (drop-source — the result cache vanishes
//! for one request, which must then compute fresh without storing). The
//! server wraps each estimate in `task_scope(request_id)`, so `scope=N`
//! pins a rule to the N-th estimate request. The durable state plane
//! (DESIGN.md §16) adds the storage fault classes — `io-error` (the
//! operation fails before writing), `torn-write` (a frame is cut
//! mid-record, the way a power cut tears a `write(2)`) and
//! `crash-at-point` (the process aborts at the armed site, a deterministic
//! `kill -9`) — probed at `durable.wal.append` and `durable.checkpoint`.
//!
//! ## Determinism
//!
//! A fired fault must hit the *same logical unit of work* regardless of the
//! thread count, so faults are addressed structurally, never temporally:
//!
//! * **site** — a static string naming the fault point (`"glm.fit"`).
//! * **scope** — the `/`-joined stack of work-item indices pushed by
//!   [`task_scope`] (the stratum/window/candidate index in `par_map`).
//!   `ghosts_core::parallel::par_map` pushes one frame per item and installs
//!   the spawning thread's stack as a prefix in each worker via
//!   [`current_scope`]/[`with_scope`], so scopes render identically at any
//!   thread count.
//! * **hit** — how many times this site already fired *within the current
//!   task frame*. Each [`task_scope`] entry starts a fresh per-site counter
//!   map, so hit indices are a pure function of the work item, not of
//!   scheduling order.
//!
//! A rule without a scope matches the site/hit pair in *every* task — still
//! deterministic, just broader. Every triggered rule is appended to a global
//! fire log; [`drain_fires`] returns it sorted by (site, scope, fault, hit)
//! so downstream trace events do not depend on completion order.
//!
//! ## Zero cost when disabled
//!
//! Without the `fault-inject` cargo feature every probe compiles to a no-op
//! (`fire` returns `None`, `task_scope` calls straight through) and
//! [`install`] reports [`InstallError::Disabled`]. With the feature on but
//! no plan installed, the fast path is a single relaxed atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A fault class that a plan can inject at a matching site.
///
/// Each site only honours the kinds it knows how to apply (for example
/// `glm.fit` applies [`Fault::NonFiniteFit`], [`Fault::BudgetExhaustion`]
/// and [`Fault::NanCell`]); a mismatched kind is recorded in the fire log
/// but otherwise ignored, so a misdirected plan degrades to a visible no-op
/// instead of undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// Force the GLM fit to report `GlmError::NonFiniteFit`.
    NonFiniteFit,
    /// Exhaust the Newton iteration budget (`GlmError::BudgetExhausted`).
    BudgetExhaustion,
    /// Poison one response cell with NaN before validation.
    NanCell,
    /// Drop one source's observations from a window during loading.
    DropSource,
    /// Panic inside a `par_map` worker while processing an item.
    WorkerPanic,
    /// Fail a storage operation with an I/O error before any bytes are
    /// written (the durable layer must refuse to acknowledge).
    IoError,
    /// Write only a prefix of a WAL frame, then fail — the torn tail a
    /// power cut mid-`write(2)` leaves behind. Recovery must truncate it.
    TornWrite,
    /// Abort the whole process (`std::process::abort`) at the armed site,
    /// simulating `kill -9` at an exact point in the durability protocol.
    CrashAtPoint,
}

impl Fault {
    /// The stable plan-file / trace-event spelling of this fault kind.
    pub fn name(self) -> &'static str {
        match self {
            Fault::NonFiniteFit => "non-finite-fit",
            Fault::BudgetExhaustion => "budget-exhaustion",
            Fault::NanCell => "nan-cell",
            Fault::DropSource => "drop-source",
            Fault::WorkerPanic => "worker-panic",
            Fault::IoError => "io-error",
            Fault::TornWrite => "torn-write",
            Fault::CrashAtPoint => "crash-at-point",
        }
    }

    fn parse(text: &str) -> Option<Fault> {
        match text {
            "non-finite-fit" => Some(Fault::NonFiniteFit),
            "budget-exhaustion" => Some(Fault::BudgetExhaustion),
            "nan-cell" => Some(Fault::NanCell),
            "drop-source" => Some(Fault::DropSource),
            "worker-panic" => Some(Fault::WorkerPanic),
            "io-error" => Some(Fault::IoError),
            "torn-write" => Some(Fault::TornWrite),
            "crash-at-point" => Some(Fault::CrashAtPoint),
            _ => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One trigger: fire `fault` at `site` on its `hit`-th probe within a task,
/// optionally restricted to one rendered `scope`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Static name of the fault point, e.g. `"glm.fit"`.
    pub site: String,
    /// Exact rendered task scope (`"2"` or `"1/3"`); `None` matches any.
    pub scope: Option<String>,
    /// Zero-based probe index within the task frame.
    pub hit: u64,
    /// The fault to inject when the rule matches.
    pub fault: Fault,
}

/// A parsed fault plan: the full set of rules for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Rules in file order; every matching rule fires (first match wins
    /// when several rules match the same probe).
    pub rules: Vec<FaultRule>,
}

/// A parse failure in a fault-plan file, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// Parses the line-based plan format. Each non-blank, non-comment line
    /// is a rule of whitespace-separated `key=value` pairs:
    ///
    /// ```text
    /// # degrade the first fit of stratum 2, then panic a worker
    /// site=glm.fit kind=non-finite-fit scope=2 hit=0
    /// site=parallel.worker kind=worker-panic hit=0
    /// ```
    ///
    /// `site` and `kind` are required; `scope` and `hit` (default 0) are
    /// optional. `#` starts a comment anywhere on a line.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                // lint: allow(panic-path) find() returns an in-bounds ASCII byte offset
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut site: Option<String> = None;
            let mut scope: Option<String> = None;
            let mut hit: Option<u64> = None;
            let mut fault: Option<Fault> = None;
            for token in line.split_whitespace() {
                let (key, value) = token.split_once('=').ok_or_else(|| PlanError {
                    line: line_no,
                    message: format!("expected key=value, found {token:?}"),
                })?;
                let duplicate = |key: &str| PlanError {
                    line: line_no,
                    message: format!("duplicate key {key:?}"),
                };
                match key {
                    "site" => {
                        if site.replace(value.to_string()).is_some() {
                            return Err(duplicate(key));
                        }
                    }
                    "scope" => {
                        if scope.replace(value.to_string()).is_some() {
                            return Err(duplicate(key));
                        }
                    }
                    "hit" => {
                        let parsed = value.parse::<u64>().map_err(|_| PlanError {
                            line: line_no,
                            message: format!("hit must be a non-negative integer, found {value:?}"),
                        })?;
                        if hit.replace(parsed).is_some() {
                            return Err(duplicate(key));
                        }
                    }
                    "kind" => {
                        let parsed = Fault::parse(value).ok_or_else(|| PlanError {
                            line: line_no,
                            message: format!(
                                "unknown fault kind {value:?} (expected one of: non-finite-fit, \
                                 budget-exhaustion, nan-cell, drop-source, worker-panic, \
                                 io-error, torn-write, crash-at-point)"
                            ),
                        })?;
                        if fault.replace(parsed).is_some() {
                            return Err(duplicate(key));
                        }
                    }
                    other => {
                        return Err(PlanError {
                            line: line_no,
                            message: format!("unknown key {other:?}"),
                        });
                    }
                }
            }
            let site = site.ok_or_else(|| PlanError {
                line: line_no,
                message: "missing required key `site`".to_string(),
            })?;
            let fault = fault.ok_or_else(|| PlanError {
                line: line_no,
                message: "missing required key `kind`".to_string(),
            })?;
            rules.push(FaultRule {
                site,
                scope,
                hit: hit.unwrap_or(0),
                fault,
            });
        }
        Ok(FaultPlan { rules })
    }
}

/// One triggered rule, as recorded in the global fire log.
///
/// The derived `Ord` (site, then scope, then fault, then hit) is the order
/// [`drain_fires`] returns records in, independent of completion order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FireRecord {
    /// The fault point that fired.
    pub site: String,
    /// The rendered task scope at the time of the probe (`""` outside tasks).
    pub scope: String,
    /// The injected fault kind.
    pub fault: Fault,
    /// The per-task hit index that matched.
    pub hit: u64,
}

/// [`install`] failed because injection support is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// The crate was built without the `fault-inject` feature, so every
    /// probe is compiled out and no plan can take effect.
    Disabled,
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Disabled => f.write_str(
                "fault injection was compiled out (build with the `fault-inject` feature)",
            ),
        }
    }
}

impl std::error::Error for InstallError {}

#[cfg(feature = "fault-inject")]
mod runtime {
    use super::{Fault, FaultPlan, FireRecord, InstallError};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Fast-path flag: true iff a plan is installed.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<Shared>> = Mutex::new(None);

    struct Shared {
        plan: FaultPlan,
        fires: Vec<FireRecord>,
    }

    thread_local! {
        /// Stack of work-item indices pushed by `task_scope`.
        static SCOPE: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        /// Per-site probe counters, one frame per `task_scope` entry plus a
        /// base frame for probes outside any task.
        static COUNTERS: RefCell<Vec<BTreeMap<String, u64>>> =
            RefCell::new(vec![BTreeMap::new()]);
    }

    fn lock_state() -> MutexGuard<'static, Option<Shared>> {
        // A poisoned lock only means another thread panicked between lock
        // and unlock; the state itself is always left consistent.
        match STATE.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Installs `plan` process-wide and arms every fault point. Resets the
    /// calling thread's scope stack and probe counters so back-to-back
    /// installs in one thread start from a clean slate.
    pub fn install(plan: FaultPlan) -> Result<(), InstallError> {
        let mut state = lock_state();
        *state = Some(Shared {
            plan,
            fires: Vec::new(),
        });
        SCOPE.with(|s| s.borrow_mut().clear());
        COUNTERS.with(|c| {
            let mut stack = c.borrow_mut();
            stack.clear();
            stack.push(BTreeMap::new());
        });
        ARMED.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Disarms every fault point and discards the plan and fire log.
    pub fn clear() {
        ARMED.store(false, Ordering::SeqCst);
        *lock_state() = None;
    }

    /// True iff a plan is currently installed.
    pub fn is_armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Probes the fault point `site`: returns the fault to inject if a plan
    /// rule matches the current (site, scope, hit) triple. Every probe
    /// advances the site's per-task hit counter; every match is appended to
    /// the fire log.
    pub fn fire(site: &str) -> Option<Fault> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let scope = SCOPE.with(|s| render_scope(&s.borrow()));
        let hit = COUNTERS.with(|c| {
            let mut stack = c.borrow_mut();
            match stack.last_mut() {
                Some(frame) => {
                    let counter = frame.entry(site.to_string()).or_insert(0);
                    let hit = *counter;
                    *counter += 1;
                    hit
                }
                None => 0,
            }
        });
        let mut state = lock_state();
        let shared = state.as_mut()?;
        let fault = shared
            .plan
            .rules
            .iter()
            .find(|rule| {
                rule.site == site
                    && rule.hit == hit
                    && rule.scope.as_deref().is_none_or(|want| want == scope)
            })
            .map(|rule| rule.fault)?;
        shared.fires.push(FireRecord {
            site: site.to_string(),
            scope,
            fault,
            hit,
        });
        Some(fault)
    }

    fn render_scope(stack: &[u64]) -> String {
        let mut out = String::new();
        for (i, idx) in stack.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(&idx.to_string());
        }
        out
    }

    /// Pops one scope frame and its counter frame on scope exit, including
    /// exit by unwinding (injected worker panics must not corrupt the
    /// sibling items' scopes).
    struct FrameGuard;

    impl Drop for FrameGuard {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
            COUNTERS.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }

    /// Runs `f` inside a new task frame identified by `index`: the index is
    /// pushed onto the scope stack and a fresh per-site counter frame is
    /// started, so probes inside `f` are addressed deterministically.
    pub fn task_scope<R>(index: usize, f: impl FnOnce() -> R) -> R {
        if !ARMED.load(Ordering::Relaxed) {
            return f();
        }
        SCOPE.with(|s| s.borrow_mut().push(index as u64));
        COUNTERS.with(|c| c.borrow_mut().push(BTreeMap::new()));
        let _guard = FrameGuard;
        f()
    }

    /// A captured scope stack, used to re-home worker threads under the
    /// scope of the thread that spawned them.
    #[derive(Debug, Clone, Default)]
    pub struct ScopeToken(Vec<u64>);

    /// Captures the calling thread's scope stack.
    pub fn current_scope() -> ScopeToken {
        if !ARMED.load(Ordering::Relaxed) {
            return ScopeToken(Vec::new());
        }
        ScopeToken(SCOPE.with(|s| s.borrow().clone()))
    }

    /// Restores the previous scope stack on exit, including by unwinding.
    struct RestoreGuard(Option<Vec<u64>>);

    impl Drop for RestoreGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                SCOPE.with(|s| *s.borrow_mut() = prev);
            }
        }
    }

    /// Runs `f` with the calling thread's scope stack replaced by `token`
    /// (captured by [`current_scope`] on the spawning thread), so items
    /// processed by a worker render the same scope as in sequential mode.
    pub fn with_scope<R>(token: &ScopeToken, f: impl FnOnce() -> R) -> R {
        if !ARMED.load(Ordering::Relaxed) {
            return f();
        }
        let prev = SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), token.0.clone()));
        let _guard = RestoreGuard(Some(prev));
        f()
    }

    /// Takes the accumulated fire log, sorted by (site, scope, fault, hit)
    /// so the result is independent of thread scheduling.
    pub fn drain_fires() -> Vec<FireRecord> {
        let mut state = lock_state();
        let mut fires = match state.as_mut() {
            Some(shared) => std::mem::take(&mut shared.fires),
            None => Vec::new(),
        };
        fires.sort();
        fires
    }
}

#[cfg(not(feature = "fault-inject"))]
mod runtime {
    use super::{Fault, FaultPlan, FireRecord, InstallError};

    /// No-op: injection support is compiled out.
    pub fn install(_plan: FaultPlan) -> Result<(), InstallError> {
        Err(InstallError::Disabled)
    }

    /// No-op: injection support is compiled out.
    pub fn clear() {}

    /// Always false: injection support is compiled out.
    pub fn is_armed() -> bool {
        false
    }

    /// Always `None`: injection support is compiled out.
    #[inline(always)]
    pub fn fire(_site: &str) -> Option<Fault> {
        None
    }

    /// Calls straight through: injection support is compiled out.
    #[inline(always)]
    pub fn task_scope<R>(_index: usize, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Empty token: injection support is compiled out.
    #[derive(Debug, Clone, Default)]
    pub struct ScopeToken;

    /// Empty token: injection support is compiled out.
    #[inline(always)]
    pub fn current_scope() -> ScopeToken {
        ScopeToken
    }

    /// Calls straight through: injection support is compiled out.
    #[inline(always)]
    pub fn with_scope<R>(_token: &ScopeToken, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Always empty: injection support is compiled out.
    pub fn drain_fires() -> Vec<FireRecord> {
        Vec::new()
    }
}

pub use runtime::{
    clear, current_scope, drain_fires, fire, install, is_armed, task_scope, with_scope, ScopeToken,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let plan = FaultPlan::parse(
            "# header comment\n\
             site=glm.fit kind=non-finite-fit scope=2 hit=1\n\
             \n\
             site=parallel.worker kind=worker-panic # trailing comment\n",
        )
        .expect("plan parses");
        assert_eq!(
            plan.rules,
            vec![
                FaultRule {
                    site: "glm.fit".to_string(),
                    scope: Some("2".to_string()),
                    hit: 1,
                    fault: Fault::NonFiniteFit,
                },
                FaultRule {
                    site: "parallel.worker".to_string(),
                    scope: None,
                    hit: 0,
                    fault: Fault::WorkerPanic,
                },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, needle) in [
            ("site=glm.fit", "missing required key `kind`"),
            ("kind=nan-cell", "missing required key `site`"),
            ("site=a kind=bogus", "unknown fault kind"),
            ("site=a kind=nan-cell hit=x", "non-negative integer"),
            ("site=a kind=nan-cell site=b", "duplicate key"),
            ("site=a kind=nan-cell flavor=mild", "unknown key"),
            ("just-words", "expected key=value"),
        ] {
            let err = FaultPlan::parse(text).expect_err("must fail");
            assert_eq!(err.line, 1, "line number for {text:?}");
            assert!(
                err.message.contains(needle),
                "error {:?} should mention {:?}",
                err.message,
                needle
            );
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in [
            Fault::NonFiniteFit,
            Fault::BudgetExhaustion,
            Fault::NanCell,
            Fault::DropSource,
            Fault::WorkerPanic,
            Fault::IoError,
            Fault::TornWrite,
            Fault::CrashAtPoint,
        ] {
            assert_eq!(Fault::parse(fault.name()), Some(fault));
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn firing_is_scoped_and_counted() {
        // This test owns the process-global plan for its duration; it is the
        // only test in this crate that installs one.
        let plan = FaultPlan::parse(
            "site=demo.site kind=nan-cell scope=1 hit=1\n\
             site=demo.site kind=nan-cell scope=3/1 hit=1\n\
             site=demo.other kind=worker-panic\n",
        )
        .expect("plan parses");
        install(plan).expect("feature is on");

        // Outside any task scope: rule for demo.other has no scope filter.
        assert_eq!(fire("demo.other"), Some(Fault::WorkerPanic));
        assert_eq!(fire("demo.other"), None, "hit 1 does not match hit=0 rule");

        // Task 0: scope "0" does not match the scope=1 rule.
        task_scope(0, || {
            assert_eq!(fire("demo.site"), None);
            assert_eq!(fire("demo.site"), None);
        });
        // Task 1: second probe (hit=1) matches.
        task_scope(1, || {
            assert_eq!(fire("demo.site"), None);
            assert_eq!(fire("demo.site"), Some(Fault::NanCell));
        });
        // Fresh counters per task entry: re-entering scope 1 matches again.
        task_scope(1, || {
            assert_eq!(fire("demo.site"), None);
            assert_eq!(fire("demo.site"), Some(Fault::NanCell));
        });

        // Worker threads inherit the spawning thread's scope as a prefix.
        task_scope(3, || {
            let token = current_scope();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    with_scope(&token, || {
                        task_scope(1, || {
                            fire("demo.site");
                            assert_eq!(fire("demo.site"), Some(Fault::NanCell));
                        });
                    });
                });
            });
        });

        let fires = drain_fires();
        assert_eq!(fires.len(), 4);
        assert_eq!(
            fires[0],
            FireRecord {
                site: "demo.other".to_string(),
                scope: String::new(),
                fault: Fault::WorkerPanic,
                hit: 0,
            }
        );
        assert_eq!(fires[1].scope, "1");
        assert_eq!(fires[2].scope, "1");
        assert_eq!(fires[3].scope, "3/1");
        clear();
        assert_eq!(fire("demo.other"), None, "cleared plans never fire");
    }
}
