//! # ghosts — capturing the unobserved IPv4 space
//!
//! A full reproduction of *Capturing Ghosts: Predicting the Used IPv4
//! Space by Inferring Unobserved Addresses* (Zander, Andrew & Armitage,
//! ACM IMC 2014) as a Rust workspace. This facade crate re-exports the
//! public API of every layer:
//!
//! | crate | contents |
//! |---|---|
//! | [`stats`] | distributions (incl. right-truncated Poisson), GLM/IRLS fitting, linalg, optimisation |
//! | [`net`] | IPv4 prefixes, bitmap address sets, prefix trie, routed table, registry, free-block census |
//! | [`core`] | log-linear capture–recapture: contingency tables, model selection, profile ranges, L-P/Chao baselines |
//! | [`sim`] | synthetic Internet + the nine measurement sources + spoofing (the data substitute) |
//! | [`pipeline`] | time windows, routed/bogon filtering, the §4.5 spoof filter |
//! | [`analysis`] | growth trends, cross-validation, unused-space model, supply projection |
//! | [`reliability`] | parametric bootstrap, batched leave-one-source-out CV, CI coverage curves |
//!
//! ## Quickstart
//!
//! ```
//! use ghosts::prelude::*;
//!
//! // Two overlapping observation sets of one population…
//! let lp = lincoln_petersen(900, 500, 300).unwrap();
//! assert_eq!(lp.n_hat, 1500.0);
//!
//! // …or the full log-linear machinery over many sources:
//! let table = ContingencyTable::from_histories(
//!     3,
//!     std::iter::repeat(0b001u16).take(300)
//!         .chain(std::iter::repeat(0b010).take(200))
//!         .chain(std::iter::repeat(0b100).take(250))
//!         .chain(std::iter::repeat(0b011).take(60))
//!         .chain(std::iter::repeat(0b101).take(80))
//!         .chain(std::iter::repeat(0b110).take(50))
//!         .chain(std::iter::repeat(0b111).take(20)),
//! );
//! let cfg = CrConfig { truncated: false, ..CrConfig::paper() };
//! let est = estimate_table(&table, None, &cfg).unwrap();
//! assert!(est.unseen > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/repro.rs` for the harness that regenerates every
//! table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ghosts_analysis as analysis;
pub use ghosts_core as core;
pub use ghosts_net as net;
pub use ghosts_obs as obs;
pub use ghosts_pipeline as pipeline;
pub use ghosts_reliability as reliability;
pub use ghosts_sim as sim;
pub use ghosts_stats as stats;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ghosts_analysis::{
        aggregate_errors, cross_validate_window, Granularity, Series, TextTable,
    };
    pub use ghosts_core::{
        chao_lower_bound, estimate_stratified, estimate_table, estimate_table_with_range, fit_llm,
        lincoln_petersen, CellModel, ContingencyTable, CrConfig, DivisorRule, IcKind,
        LogLinearModel, Parallelism, SelectionOptions,
    };
    pub use ghosts_net::{addr_from_str, addr_to_string, AddrSet, Prefix, RoutedTable, SubnetSet};
    pub use ghosts_pipeline::{
        filter_spoofed, filter_to_routed, paper_windows, Quarter, SpoofFilterConfig, TimeWindow,
        WindowData,
    };
    pub use ghosts_reliability::{
        bootstrap_table, coverage_curves, cross_validate_batch, BootstrapConfig, BootstrapSummary,
        CiMethod, CoverageConfig, CoveragePoint, CvReport, Regime, TruthModel,
    };
    pub use ghosts_sim::{ProbeEngine, Scenario, SimConfig};
}
