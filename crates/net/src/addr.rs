//! IPv4 address and prefix primitives.
//!
//! Addresses are plain `u32`s in host byte order throughout the workspace —
//! the estimation machinery only ever treats an address as an identifier —
//! with conversion helpers to and from dotted-quad text and
//! [`std::net::Ipv4Addr`]. A [`Prefix`] is a CIDR block with the usual
//! algebra (containment, parent, children, splitting).

use std::fmt;
use std::str::FromStr;

/// Converts an address to dotted-quad text.
pub fn addr_to_string(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        addr >> 24,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parses a dotted-quad address.
pub fn addr_from_str(s: &str) -> Result<u32, PrefixParseError> {
    let mut parts = s.split('.');
    let mut addr: u32 = 0;
    for i in 0..4 {
        let part = parts.next().ok_or(PrefixParseError::BadAddress)?;
        let octet: u32 = part.parse().map_err(|_| PrefixParseError::BadAddress)?;
        if octet > 255 {
            return Err(PrefixParseError::BadAddress);
        }
        addr |= octet << (24 - 8 * i);
    }
    if parts.next().is_some() {
        return Err(PrefixParseError::BadAddress);
    }
    Ok(addr)
}

/// The /24 subnet identifier of an address (its top 24 bits).
///
/// The paper studies used /24 subnets alongside used addresses; a /24 is
/// "used" if any of its 256 addresses is (§4).
pub fn subnet24_of(addr: u32) -> u32 {
    addr >> 8
}

/// The /8 index of an address (its top octet).
pub fn octet_of(addr: u32) -> u8 {
    (addr >> 24) as u8
}

/// Errors parsing a prefix or address from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The address part is not a valid dotted quad.
    BadAddress,
    /// The mask length is missing or not in `0..=32`.
    BadLength,
    /// The base address has bits set beyond the mask length.
    HostBitsSet,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadAddress => write!(f, "invalid IPv4 address"),
            PrefixParseError::BadLength => write!(f, "invalid prefix length"),
            PrefixParseError::HostBitsSet => write!(f, "host bits set below prefix mask"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// A CIDR prefix: a base address and a mask length in `0..=32`.
///
/// Invariant: all bits of `base` below the mask are zero.
///
/// ```
/// use ghosts_net::Prefix;
///
/// let p: Prefix = "10.0.0.0/8".parse().unwrap();
/// assert_eq!(p.num_addresses(), 1 << 24);
/// assert!(p.contains(ghosts_net::addr_from_str("10.9.8.7").unwrap()));
/// let (lo, hi) = p.children().unwrap();
/// assert_eq!(lo.to_string(), "10.0.0.0/9");
/// assert_eq!(hi.to_string(), "10.128.0.0/9");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, masking `base` down to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "Prefix: length {len} > 32");
        Self {
            base: base & Self::mask(len),
            len,
        }
    }

    /// The netmask for a given length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The whole IPv4 space, `0.0.0.0/0`.
    pub fn whole_space() -> Self {
        Self { base: 0, len: 0 }
    }

    /// The base (network) address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The mask length.
    #[allow(clippy::len_without_is_empty)] // a prefix is never empty
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered, as `u64` (a /0 holds 2³²).
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Number of /24 subnets covered (0 for prefixes longer than /24 —
    /// they cover only part of one).
    pub fn num_subnets24(&self) -> u64 {
        if self.len <= 24 {
            1u64 << (24 - self.len)
        } else {
            0
        }
    }

    /// The last address in the prefix.
    pub fn last_address(&self) -> u32 {
        self.base | !Self::mask(self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.base
    }

    /// Whether `other` is fully inside this prefix (equal counts as inside).
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.base)
    }

    /// The enclosing prefix one bit shorter; `None` for /0.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.base, self.len - 1))
        }
    }

    /// The two halves of this prefix; `None` for /32.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Prefix {
            base: self.base,
            len: self.len + 1,
        };
        let right = Prefix {
            base: self.base | (1u32 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The sibling prefix sharing this prefix's parent; `None` for /0.
    pub fn sibling(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix {
                base: self.base ^ (1u32 << (32 - self.len)),
                len: self.len,
            })
        }
    }

    /// Splits this prefix into all sub-prefixes of length `target_len`.
    ///
    /// # Panics
    ///
    /// Panics if `target_len < self.len()` or `target_len > 32`.
    pub fn split_into(&self, target_len: u8) -> impl Iterator<Item = Prefix> + '_ {
        assert!(
            target_len >= self.len && target_len <= 32,
            "split_into: bad target length {target_len} for /{}",
            self.len
        );
        let count = 1u64 << (target_len - self.len);
        let step = 1u64 << (32 - target_len);
        let base = self.base as u64;
        (0..count).map(move |i| Prefix::new((base + i * step) as u32, target_len))
    }

    /// Iterates all addresses in the prefix (careful with short prefixes).
    pub fn addresses(&self) -> impl Iterator<Item = u32> + '_ {
        let base = self.base as u64;
        (0..self.num_addresses()).map(move |i| (base + i) as u32)
    }

    /// The bit of `addr` that selects between this prefix's two children
    /// (0 = left/low, 1 = right/high). Only meaningful when
    /// `self.contains(addr)` and `self.len() < 32`.
    pub fn child_bit(&self, addr: u32) -> u8 {
        ((addr >> (31 - self.len)) & 1) as u8
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", addr_to_string(self.base), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    /// Parses `a.b.c.d/len`, rejecting host bits set below the mask.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s.split_once('/').ok_or(PrefixParseError::BadLength)?;
        let base = addr_from_str(addr_part)?;
        let len: u8 = len_part.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        if base & !Prefix::mask(len) != 0 {
            return Err(PrefixParseError::HostBitsSet);
        }
        Ok(Prefix { base, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_quad_round_trip() {
        for &s in &["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"] {
            assert_eq!(addr_to_string(addr_from_str(s).unwrap()), s);
        }
        assert!(addr_from_str("256.0.0.0").is_err());
        assert!(addr_from_str("1.2.3").is_err());
        assert!(addr_from_str("1.2.3.4.5").is_err());
    }

    #[test]
    fn prefix_parsing() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.base(), 10 << 24);
        assert_eq!(p.len(), 8);
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(
            "10.0.0.1/8".parse::<Prefix>().unwrap_err(),
            PrefixParseError::HostBitsSet
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>().unwrap_err(),
            PrefixParseError::BadLength
        );
        assert_eq!(
            "10.0.0.0".parse::<Prefix>().unwrap_err(),
            PrefixParseError::BadLength
        );
    }

    #[test]
    fn new_masks_host_bits() {
        let p = Prefix::new(0x0a01_0203, 8);
        assert_eq!(p.base(), 0x0a00_0000);
    }

    #[test]
    fn sizes() {
        assert_eq!(Prefix::whole_space().num_addresses(), 1u64 << 32);
        let p24: Prefix = "1.2.3.0/24".parse().unwrap();
        assert_eq!(p24.num_addresses(), 256);
        assert_eq!(p24.num_subnets24(), 1);
        let p8: Prefix = "1.0.0.0/8".parse().unwrap();
        assert_eq!(p8.num_subnets24(), 65536);
        let p32: Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(p32.num_addresses(), 1);
        assert_eq!(p32.num_subnets24(), 0);
    }

    #[test]
    fn containment() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(addr_from_str("10.255.1.2").unwrap()));
        assert!(!p.contains(addr_from_str("11.0.0.0").unwrap()));
        let q: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains_prefix(&q));
        assert!(!q.contains_prefix(&p));
        assert!(p.contains_prefix(&p));
    }

    #[test]
    fn parent_child_sibling() {
        let p: Prefix = "10.0.0.0/9".parse().unwrap();
        assert_eq!(p.parent().unwrap().to_string(), "10.0.0.0/8");
        assert_eq!(p.sibling().unwrap().to_string(), "10.128.0.0/9");
        let (l, r) = "10.0.0.0/8".parse::<Prefix>().unwrap().children().unwrap();
        assert_eq!(l, p);
        assert_eq!(r.to_string(), "10.128.0.0/9");
        assert!(Prefix::whole_space().parent().is_none());
        assert!("1.2.3.4/32".parse::<Prefix>().unwrap().children().is_none());
        assert!(Prefix::whole_space().sibling().is_none());
    }

    #[test]
    fn child_bit_selects_halves() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.child_bit(addr_from_str("10.1.0.0").unwrap()), 0);
        assert_eq!(p.child_bit(addr_from_str("10.200.0.0").unwrap()), 1);
    }

    #[test]
    fn split_into_covers_exactly() {
        let p: Prefix = "192.168.0.0/22".parse().unwrap();
        let subs: Vec<Prefix> = p.split_into(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "192.168.0.0/24");
        assert_eq!(subs[3].to_string(), "192.168.3.0/24");
        // Splitting to the same length yields the prefix itself.
        let same: Vec<Prefix> = p.split_into(22).collect();
        assert_eq!(same, vec![p]);
    }

    #[test]
    fn last_address_and_iteration() {
        let p: Prefix = "1.2.3.0/30".parse().unwrap();
        assert_eq!(addr_to_string(p.last_address()), "1.2.3.3");
        let addrs: Vec<u32> = p.addresses().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addr_to_string(addrs[2]), "1.2.3.2");
    }

    #[test]
    fn ordering_is_by_base_then_len() {
        let a: Prefix = "1.0.0.0/8".parse().unwrap();
        let b: Prefix = "1.0.0.0/16".parse().unwrap();
        let c: Prefix = "2.0.0.0/8".parse().unwrap();
        assert!(a < b && b < c);
    }
}
