//! Reserved ("bogon") IPv4 space.
//!
//! The pipeline filters multicast and private addresses and everything in
//! unallocated or unrouted space out of the passive datasets (§4.4), and the
//! unused-space model excludes "all private, multicast, experimental and
//! reserved prefixes, such as 224.0.0.0/3 or 10.0.0.0/8" before computing
//! remaining free prefixes (§7.1).

use crate::addr::Prefix;

/// The prefixes that can never be publicly used, as the paper treats them:
/// RFC 1918 private space, loopback, link-local, "this network", TEST-NETs,
/// benchmarking space, and everything from 224.0.0.0 up (multicast +
/// experimental + broadcast, i.e. 224.0.0.0/3).
pub fn reserved_prefixes() -> Vec<Prefix> {
    [
        "0.0.0.0/8",       // "this network" (RFC 1122)
        "10.0.0.0/8",      // private (RFC 1918)
        "100.64.0.0/10",   // CGN shared space (RFC 6598)
        "127.0.0.0/8",     // loopback
        "169.254.0.0/16",  // link local
        "172.16.0.0/12",   // private (RFC 1918)
        "192.0.0.0/24",    // IETF protocol assignments
        "192.0.2.0/24",    // TEST-NET-1
        "192.88.99.0/24",  // 6to4 relay anycast (deprecated)
        "192.168.0.0/16",  // private (RFC 1918)
        "198.18.0.0/15",   // benchmarking
        "198.51.100.0/24", // TEST-NET-2
        "203.0.113.0/24",  // TEST-NET-3
        "224.0.0.0/3",     // multicast + experimental + broadcast
    ]
    .iter()
    .map(|s| s.parse().expect("static prefix literal")) // lint: allow(no-unwrap) compile-time constants
    .collect()
}

/// Whether `addr` lies in reserved space.
pub fn is_reserved(addr: u32) -> bool {
    let top = addr >> 24;
    // Fast paths on the first octet.
    match top {
        0 | 10 | 127 => return true,
        224..=255 => return true,
        _ => {}
    }
    // Remaining, less common ranges (the fast-path octets above are a
    // subset of these, so re-checking them is harmless).
    reserved_prefixes().iter().any(|p| p.contains(addr))
}

/// Total number of addresses in reserved space (the reserved prefixes are
/// pairwise disjoint, so a plain sum is exact).
pub fn reserved_address_count() -> u64 {
    reserved_prefixes().iter().map(|p| p.num_addresses()).sum()
}

/// The "allocatable universe": the maximal set of prefixes that could ever
/// hold publicly used addresses — the complement of the reserved space,
/// expressed as a minimal list of CIDR blocks. Used as the outer universe of
/// the free-block census (§7.1).
pub fn allocatable_universe() -> Vec<Prefix> {
    complement_of(&reserved_prefixes())
}

/// Computes the complement of a set of pairwise-disjoint prefixes within
/// the whole IPv4 space, as a minimal list of maximal CIDR blocks.
pub fn complement_of(excluded: &[Prefix]) -> Vec<Prefix> {
    let mut out = Vec::new();
    fn walk(block: Prefix, excluded: &[Prefix], out: &mut Vec<Prefix>) {
        if excluded.iter().any(|e| e.contains_prefix(&block)) {
            return; // fully excluded
        }
        if !excluded.iter().any(|e| block.contains_prefix(e)) {
            out.push(block); // fully free
            return;
        }
        let (l, r) = block
            .children()
            .expect("a /32 cannot strictly contain another prefix"); // lint: allow(no-unwrap) len < 32 on this path
        walk(l, excluded, out);
        walk(r, excluded, out);
    }
    walk(Prefix::whole_space(), excluded, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn classic_reserved_addresses() {
        for &s in &[
            "10.1.2.3",
            "192.168.1.1",
            "172.16.0.1",
            "172.31.255.255",
            "127.0.0.1",
            "224.0.0.1",
            "255.255.255.255",
            "240.0.0.1",
            "169.254.10.10",
            "0.1.2.3",
            "100.64.0.1",
        ] {
            assert!(is_reserved(a(s)), "{s} should be reserved");
        }
    }

    #[test]
    fn public_addresses_not_reserved() {
        for &s in &[
            "8.8.8.8",
            "1.1.1.1",
            "172.15.0.1",
            "172.32.0.1",
            "100.63.0.1",
            "100.128.0.1",
            "223.255.255.255",
            "11.0.0.0",
            "128.0.0.1",
        ] {
            assert!(!is_reserved(a(s)), "{s} should be public");
        }
    }

    #[test]
    fn prefix_list_agrees_with_predicate() {
        let prefixes = reserved_prefixes();
        // Spot-check a grid of addresses against both representations.
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(1_048_583); // coprime stride over u32
            let in_list = prefixes.iter().any(|p| p.contains(addr));
            assert_eq!(in_list, is_reserved(addr), "mismatch at {addr:#x}");
        }
    }

    #[test]
    fn reserved_count_matches_prefix_sizes() {
        // 3×/8 + /10 + 2×/16 + /12 + 5×/24 + /15 + /3.
        let want: u64 =
            3 * (1 << 24) + (1 << 22) + 2 * (1 << 16) + (1 << 20) + 5 * 256 + (1 << 17) + (1 << 29);
        assert_eq!(reserved_address_count(), want);
    }

    #[test]
    fn complement_partitions_space() {
        let reserved = reserved_prefixes();
        let universe = allocatable_universe();
        let total: u64 = universe.iter().map(|p| p.num_addresses()).sum();
        assert_eq!(total + reserved_address_count(), 1u64 << 32);
        // No overlap between universe blocks and reserved blocks.
        for u in &universe {
            for r in &reserved {
                assert!(!u.contains_prefix(r) && !r.contains_prefix(u));
            }
        }
    }

    #[test]
    fn complement_of_empty_is_whole_space() {
        let c = complement_of(&[]);
        assert_eq!(c, vec![Prefix::whole_space()]);
    }

    #[test]
    fn complement_of_half() {
        let c = complement_of(&["0.0.0.0/1".parse().unwrap()]);
        assert_eq!(c, vec!["128.0.0.0/1".parse().unwrap()]);
    }
}
