//! Maximal-free-block accounting for the unused-space model (§7).
//!
//! The paper reasons about how many *vacant* /i blocks exist for each
//! prefix length i, and how adding newly discovered addresses changes those
//! counts: "adding an address to a vacant /i will reduce the number of
//! vacant /i blocks by 1, but increase by one the number of /j blocks for
//! each j > i, regardless of where within the /i the address is added."
//!
//! That statement holds exactly for **maximal** free blocks: a free /i whose
//! enclosing /(i−1) is not free. This module computes the maximal-free-block
//! census `x` of a used set within a universe of disjoint prefixes, and the
//! linear relation `x' − x = A·n` (with `A` as in §7.1) that recovers `n`,
//! the number of additions that landed in vacant blocks of each size.

use crate::addr::Prefix;

/// Per-prefix-length block counts, indexed by mask length `0..=32`.
pub type BlockCounts = [u64; 33];

/// Computes the maximal-free-block census of a used set within `universe`.
///
/// * `universe` — disjoint prefixes delimiting the space under study (e.g.
///   the allocatable universe of §7.1, or the routed prefixes). A universe
///   prefix that is entirely free contributes one maximal free block of its
///   own length.
/// * `count_used` — returns the number of used elements inside a prefix
///   (addresses for the /32-deep census, /24 subnets for the subnet view).
/// * `max_depth` — granularity of the census: 32 for addresses, 24 for /24
///   subnets. A free block is recorded at any length `<= max_depth`.
///
/// # Panics
///
/// Panics if a universe prefix is longer than `max_depth`.
pub fn free_block_census<F>(universe: &[Prefix], count_used: &F, max_depth: u8) -> BlockCounts
where
    F: Fn(Prefix) -> u64,
{
    let mut x = [0u64; 33];
    for &p in universe {
        assert!(
            p.len() <= max_depth,
            "universe prefix {p} below census granularity /{max_depth}"
        );
        census_block(p, count_used, max_depth, &mut x);
    }
    x
}

/// Capacity of `block` in census elements at granularity `max_depth`.
fn capacity(block: Prefix, max_depth: u8) -> u64 {
    1u64 << (max_depth - block.len())
}

fn census_block<F>(block: Prefix, count_used: &F, max_depth: u8, x: &mut BlockCounts)
where
    F: Fn(Prefix) -> u64,
{
    let used = count_used(block);
    if used == 0 {
        // Entirely free: a maximal free block (its parent, if inside the
        // universe, was not free or we would not have recursed here).
        x[block.len() as usize] += 1;
        return;
    }
    if block.len() == max_depth || used >= capacity(block, max_depth) {
        // Fully used (or single element): no free blocks inside.
        return;
    }
    let (l, r) = block
        .children()
        .expect("len < max_depth <= 32 so children exist"); // lint: allow(no-unwrap) bounded by the guard above
    census_block(l, count_used, max_depth, x);
    census_block(r, count_used, max_depth, x);
}

/// Recovers `n` — additions that landed in vacant blocks of each size —
/// from the census before and after a merge: `x_after − x_before = A·n`.
///
/// The relation inverts in closed form by a forward pass: the change in the
/// count of free /L blocks is `−n_L` (vacancies consumed at /L) plus one
/// new /L for every addition to a vacant shorter block, so
/// `n_L = Σ_{j<L} n_j − d_L`.
///
/// Returns `n` as `f64` (entries are integral when the inputs come from
/// real censuses, but downstream ratio models work in floats).
#[allow(clippy::needless_range_loop)] // parallel prefix-sum over two arrays
pub fn additions_by_block_size(before: &BlockCounts, after: &BlockCounts) -> [f64; 33] {
    let mut n = [0.0f64; 33];
    let mut prefix_sum = 0.0;
    for len in 0..=32 {
        let d = after[len] as f64 - before[len] as f64;
        n[len] = prefix_sum - d;
        prefix_sum += n[len];
    }
    n
}

/// Applies the forward relation: given `before` and `n`, predicts the
/// census after the additions (`after_L = before_L − n_L + Σ_{j<L} n_j`).
/// Useful for round-trip testing and for the fluid prediction model.
#[allow(clippy::needless_range_loop)] // parallel prefix-sum over two arrays
pub fn apply_additions(before: &BlockCounts, n: &[f64; 33]) -> [f64; 33] {
    let mut out = [0.0f64; 33];
    let mut prefix_sum = 0.0;
    for len in 0..=32 {
        out[len] = before[len] as f64 - n[len] + prefix_sum;
        prefix_sum += n[len];
    }
    out
}

/// Total number of addresses covered by free blocks of each census,
/// i.e. `Σ x_L · 2^(32−L)`.
pub fn free_addresses(x: &BlockCounts) -> u64 {
    x.iter()
        .enumerate()
        .map(|(len, &c)| c * (1u64 << (32 - len)))
        .sum()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use crate::set::AddrSet;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn census_of(universe: &[Prefix], used: &AddrSet) -> BlockCounts {
        free_block_census(universe, &|b| used.count_in_prefix(b), 32)
    }

    #[test]
    fn empty_universe_prefix_is_one_maximal_block() {
        let used = AddrSet::new();
        let x = census_of(&[p("10.0.0.0/8")], &used);
        assert_eq!(x[8], 1);
        assert_eq!(x.iter().sum::<u64>(), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn single_address_splits_into_chain() {
        // One used address in an empty /8 leaves exactly one maximal free
        // /9, /10, …, /32 (the sibling chain of the used address).
        let mut used = AddrSet::new();
        used.insert(crate::addr::addr_from_str("10.123.45.67").unwrap());
        let x = census_of(&[p("10.0.0.0/8")], &used);
        assert_eq!(x[8], 0);
        for len in 9..=32 {
            assert_eq!(x[len], 1, "length {len}");
        }
        // Free addresses = 2^24 - 1.
        assert_eq!(free_addresses(&x), (1 << 24) - 1);
    }

    #[test]
    fn fully_used_block_has_no_free_blocks() {
        let mut used = AddrSet::new();
        for a in p("10.0.0.0/28").addresses() {
            used.insert(a);
        }
        let x = census_of(&[p("10.0.0.0/28")], &used);
        assert_eq!(x.iter().sum::<u64>(), 0);
    }

    #[test]
    fn two_addresses_same_vacant_block() {
        // Universe /30 = {.0 .1 .2 .3}; use .0 and .1 → the right /31 is the
        // single maximal free block.
        let mut used = AddrSet::new();
        used.insert(crate::addr::addr_from_str("10.0.0.0").unwrap());
        used.insert(crate::addr::addr_from_str("10.0.0.1").unwrap());
        let x = census_of(&[p("10.0.0.0/30")], &used);
        assert_eq!(x[31], 1);
        assert_eq!(x.iter().sum::<u64>(), 1);
    }

    #[test]
    fn multiple_universe_prefixes_sum() {
        let used = AddrSet::new();
        let x = census_of(&[p("10.0.0.0/8"), p("11.0.0.0/8"), p("12.0.0.0/16")], &used);
        assert_eq!(x[8], 2);
        assert_eq!(x[16], 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn subnet_granularity_census() {
        // Census at /24 granularity using a SubnetSet.
        let mut subs = crate::set::SubnetSet::new();
        subs.insert_addr(crate::addr::addr_from_str("10.0.0.0").unwrap());
        let x = free_block_census(
            &[p("10.0.0.0/8")],
            &|b| {
                if b.len() <= 24 {
                    subs.count_in_prefix(b)
                } else {
                    unreachable!("census must not descend below max_depth")
                }
            },
            24,
        );
        assert_eq!(x[8], 0);
        for len in 9..=24 {
            assert_eq!(x[len], 1, "length {len}");
        }
        assert_eq!(x[25..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn additions_recovered_from_census_delta() {
        // Start with an empty /8; add one address; the recovered n must be
        // exactly one addition to a vacant /8.
        let universe = [p("10.0.0.0/8")];
        let before = census_of(&universe, &AddrSet::new());
        let mut used = AddrSet::new();
        used.insert(crate::addr::addr_from_str("10.5.5.5").unwrap());
        let after = census_of(&universe, &used);
        let n = additions_by_block_size(&before, &after);
        assert_eq!(n[8], 1.0);
        for (len, &v) in n.iter().enumerate() {
            if len != 8 {
                assert_eq!(v, 0.0, "length {len}");
            }
        }
    }

    #[test]
    fn additions_two_stage_merge() {
        // Add two addresses in different /9 halves: first consumes the
        // vacant /8, second consumes the vacant /9 it lands in.
        let universe = [p("10.0.0.0/8")];
        let before = census_of(&universe, &AddrSet::new());
        let mut used = AddrSet::new();
        used.insert(crate::addr::addr_from_str("10.0.0.1").unwrap());
        used.insert(crate::addr::addr_from_str("10.200.0.1").unwrap());
        let after = census_of(&universe, &used);
        let n = additions_by_block_size(&before, &after);
        assert_eq!(n[8], 1.0);
        assert_eq!(n[9], 1.0);
        assert_eq!(n.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn apply_additions_round_trips() {
        let universe = [p("10.0.0.0/8")];
        let before = census_of(&universe, &AddrSet::new());
        let mut used = AddrSet::new();
        for &a in &["10.0.0.1", "10.200.0.1", "10.64.3.9", "10.64.3.10"] {
            used.insert(crate::addr::addr_from_str(a).unwrap());
        }
        let after = census_of(&universe, &used);
        let n = additions_by_block_size(&before, &after);
        let predicted = apply_additions(&before, &n);
        for len in 0..=32 {
            assert!(
                (predicted[len] - after[len] as f64).abs() < 1e-9,
                "length {len}: {} vs {}",
                predicted[len],
                after[len]
            );
        }
    }

    #[test]
    fn closed_form_matches_matrix_solve() {
        // The forward pass must agree with explicitly solving A·n = d using
        // the dense LU solver, with A_{L,j} = -1 if j == L, +1 if j < L.
        let before: BlockCounts = {
            let mut b = [0u64; 33];
            b[8] = 3;
            b[16] = 5;
            b
        };
        let after: BlockCounts = {
            let mut a = [0u64; 33];
            a[8] = 2;
            a[16] = 6;
            a[20] = 1;
            a[24] = 1;
            a
        };
        let n = additions_by_block_size(&before, &after);

        let mut a_mat = ghosts_stats::Matrix::zeros(33, 33);
        for l in 0..33 {
            a_mat[(l, l)] = -1.0;
            for j in 0..l {
                a_mat[(l, j)] = 1.0;
            }
        }
        let d: Vec<f64> = (0..33)
            .map(|l| after[l] as f64 - before[l] as f64)
            .collect();
        let n_lu = ghosts_stats::linalg::solve::lu_solve(&a_mat, &d).unwrap();
        for l in 0..33 {
            assert!((n[l] - n_lu[l]).abs() < 1e-9, "length {l}");
        }
    }

    #[test]
    #[should_panic]
    fn universe_below_granularity_panics() {
        free_block_census(&[p("10.0.0.0/25")], &|_| 0, 24);
    }
}
