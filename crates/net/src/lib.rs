//! # ghosts-net
//!
//! IPv4 address-space substrate for the *Capturing Ghosts* reproduction
//! (Zander, Andrew & Armitage, IMC 2014):
//!
//! * [`addr`] — addresses as `u32`, CIDR [`Prefix`] algebra.
//! * [`set`] — compact [`AddrSet`] / [`SubnetSet`] bitmaps holding per-source
//!   observations at Internet scale, backed by the full-2^32 segmented
//!   address plane (`ghosts_addrplane`).
//! * [`trie`] — a generic binary prefix trie with per-prefix payloads
//!   (the registry's address → allocation index).
//! * [`routed`] — the aggregated publicly routed table (§4.4, §6.1),
//!   backed by the compact `ghosts_addrplane::PrefixPlane` trie.
//! * [`registry`] — RIR delegations with country/industry/age attributes for
//!   stratification (§3.4).
//! * [`bogons`] — reserved space and the allocatable universe (§7.1).
//! * [`freeblocks`] — maximal-free-block census and the §7.1 `A`-matrix
//!   relation between censuses and additions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bogons;
pub mod freeblocks;
pub mod registry;
pub mod routed;
pub mod set;
pub mod trie;

pub use addr::{addr_from_str, addr_to_string, Prefix};
pub use registry::{Allocation, AllocationId, CountryCode, Industry, Registry, Rir};
pub use routed::RoutedTable;
pub use set::{AddrSet, SubnetSet};
pub use trie::PrefixTrie;
