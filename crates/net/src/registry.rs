//! The allocation registry: who was delegated which prefix, when.
//!
//! The paper stratifies by RIR, country, prefix size, industry and
//! allocation age (§3.4), using RIR delegation files and whois data. This
//! module models those records: an [`Allocation`] carries the stratification
//! attributes, and a [`Registry`] indexes allocations in a prefix trie for
//! O(32) address→allocation lookup.

use crate::addr::Prefix;
use crate::trie::PrefixTrie;
use std::fmt;

/// The five Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rir {
    /// AfriNIC (Africa).
    AfriNic,
    /// APNIC (Asia–Pacific).
    Apnic,
    /// ARIN (North America).
    Arin,
    /// LACNIC (Latin America and the Caribbean).
    LacNic,
    /// RIPE NCC (Europe, Middle East, Central Asia).
    Ripe,
}

impl Rir {
    /// All five RIRs in the paper's display order.
    pub const ALL: [Rir; 5] = [Rir::AfriNic, Rir::Apnic, Rir::Arin, Rir::LacNic, Rir::Ripe];

    /// The display name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Rir::AfriNic => "AfriNIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::LacNic => "LACNIC",
            Rir::Ripe => "RIPE",
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Industry classification from whois data (§3.4, footnote 1): "whether
/// address space is education, military, government, corporate, or ISP".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Industry {
    /// Education and research networks.
    Education,
    /// Military networks.
    Military,
    /// Government (civil) networks.
    Government,
    /// Corporate / enterprise networks.
    Corporate,
    /// Internet service providers (incl. access and hosting).
    Isp,
    /// Unclassifiable from whois (the paper classified 88% of space).
    Unknown,
}

impl Industry {
    /// All classes in display order.
    pub const ALL: [Industry; 6] = [
        Industry::Education,
        Industry::Military,
        Industry::Government,
        Industry::Corporate,
        Industry::Isp,
        Industry::Unknown,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Industry::Education => "education",
            Industry::Military => "military",
            Industry::Government => "government",
            Industry::Corporate => "corporate",
            Industry::Isp => "ISP",
            Industry::Unknown => "unknown",
        }
    }
}

impl fmt::Display for Industry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A two-letter ISO country code, stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Creates a country code from a two-ASCII-letter string.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not exactly two ASCII alphabetic characters.
    pub fn new(s: &str) -> Self {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(u8::is_ascii_alphabetic),
            "CountryCode: expected two ASCII letters, got {s:?}"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("invariant: ASCII letters") // lint: allow(no-unwrap) bytes checked in new()
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One delegated block of address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// The delegated prefix.
    pub prefix: Prefix,
    /// Responsible RIR.
    pub rir: Rir,
    /// Country of the registrant.
    pub country: CountryCode,
    /// Industry classification.
    pub industry: Industry,
    /// Year the delegation was made (for allocation-age stratification).
    pub alloc_year: u16,
}

/// Identifier of an allocation within its registry (index into
/// [`Registry::allocations`]).
pub type AllocationId = u32;

/// An indexed collection of allocations.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    allocations: Vec<Allocation>,
    index: PrefixTrie<AllocationId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an allocation, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the exact prefix is already registered (delegations are
    /// unique per prefix; nested delegations of different lengths are fine).
    pub fn add(&mut self, alloc: Allocation) -> AllocationId {
        let id = self.allocations.len() as AllocationId;
        let prev = self.index.insert(alloc.prefix, id);
        assert!(
            prev.is_none(),
            "Registry: duplicate allocation for {}",
            alloc.prefix
        );
        self.allocations.push(alloc);
        id
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// All allocations in insertion order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// The allocation with the given id.
    pub fn get(&self, id: AllocationId) -> &Allocation {
        &self.allocations[id as usize]
    }

    /// The most specific allocation containing `addr`, if any.
    pub fn lookup(&self, addr: u32) -> Option<(AllocationId, &Allocation)> {
        let (_, &id) = self.index.longest_match(addr)?;
        Some((id, &self.allocations[id as usize]))
    }

    /// Total allocated address count (union, nested delegations deduped).
    pub fn allocated_address_count(&self) -> u64 {
        self.index.union_address_count()
    }

    /// Iterates allocations whose `alloc_year` is at most `year` — the
    /// registry as it stood at the end of that year.
    pub fn allocated_by(&self, year: u16) -> impl Iterator<Item = &Allocation> {
        self.allocations
            .iter()
            .filter(move |a| a.alloc_year <= year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn alloc(prefix: &str, rir: Rir, cc: &str, year: u16) -> Allocation {
        Allocation {
            prefix: prefix.parse().unwrap(),
            rir,
            country: CountryCode::new(cc),
            industry: Industry::Isp,
            alloc_year: year,
        }
    }

    #[test]
    fn country_code_normalises_case() {
        assert_eq!(CountryCode::new("us").as_str(), "US");
        assert_eq!(CountryCode::new("Cn"), CountryCode::new("CN"));
    }

    #[test]
    #[should_panic]
    fn bad_country_code_panics() {
        CountryCode::new("U1");
    }

    #[test]
    fn lookup_most_specific() {
        let mut r = Registry::new();
        let outer = r.add(alloc("10.0.0.0/8", Rir::Arin, "US", 1990));
        let inner = r.add(alloc("10.1.0.0/16", Rir::Apnic, "CN", 2010));
        let (id, a) = r.lookup(addr_from_str("10.1.2.3").unwrap()).unwrap();
        assert_eq!(id, inner);
        assert_eq!(a.country.as_str(), "CN");
        let (id, _) = r.lookup(addr_from_str("10.200.0.0").unwrap()).unwrap();
        assert_eq!(id, outer);
        assert!(r.lookup(addr_from_str("11.0.0.0").unwrap()).is_none());
    }

    #[test]
    fn allocated_count_dedupes_nesting() {
        let mut r = Registry::new();
        r.add(alloc("10.0.0.0/8", Rir::Arin, "US", 1990));
        r.add(alloc("10.1.0.0/16", Rir::Apnic, "CN", 2010));
        r.add(alloc("20.0.0.0/16", Rir::Ripe, "DE", 2005));
        assert_eq!(r.allocated_address_count(), (1 << 24) + (1 << 16));
    }

    #[test]
    fn allocated_by_year_filters() {
        let mut r = Registry::new();
        r.add(alloc("10.0.0.0/8", Rir::Arin, "US", 1990));
        r.add(alloc("20.0.0.0/16", Rir::Ripe, "DE", 2005));
        r.add(alloc("30.0.0.0/16", Rir::Apnic, "CN", 2012));
        assert_eq!(r.allocated_by(2005).count(), 2);
        assert_eq!(r.allocated_by(1989).count(), 0);
        assert_eq!(r.allocated_by(2014).count(), 3);
    }

    #[test]
    #[should_panic]
    fn duplicate_prefix_panics() {
        let mut r = Registry::new();
        r.add(alloc("10.0.0.0/8", Rir::Arin, "US", 1990));
        r.add(alloc("10.0.0.0/8", Rir::Ripe, "DE", 2000));
    }

    #[test]
    fn rir_and_industry_display() {
        assert_eq!(Rir::Apnic.to_string(), "APNIC");
        assert_eq!(Industry::Isp.to_string(), "ISP");
        assert_eq!(Rir::ALL.len(), 5);
        assert_eq!(Industry::ALL.len(), 6);
    }
}
