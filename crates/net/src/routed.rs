//! The publicly routed table.
//!
//! The paper identifies routed space from aggregated weekly RouteViews
//! snapshots per time window (§4.4, §6.1), and all CR estimates are for the
//! routed space only (§3.1: addresses outside it have zero sample
//! probability). [`RoutedTable`] models one such aggregate: a set of
//! advertised prefixes with membership tests and size totals; snapshots are
//! aggregated with [`RoutedTable::merge`].
//!
//! The table is backed by the compact index-based trie
//! ([`ghosts_addrplane::PrefixPlane`]): longest-prefix match, union
//! sizes, and covered-address counts are all single trie walks — no
//! prefix-list scans anywhere.

use crate::addr::Prefix;
use ghosts_addrplane::PrefixPlane;

/// An aggregated set of publicly routed prefixes.
#[derive(Debug, Clone, Default)]
pub struct RoutedTable {
    plane: PrefixPlane,
}

impl RoutedTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from a prefix list.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(prefixes: I) -> Self {
        let mut t = Self::new();
        for p in prefixes {
            t.announce(p);
        }
        t
    }

    /// Adds an advertised prefix (idempotent).
    pub fn announce(&mut self, prefix: Prefix) {
        self.plane.insert(prefix.base(), prefix.len());
    }

    /// Number of distinct advertised prefixes (nested prefixes counted
    /// individually, as in a real FIB).
    pub fn prefix_count(&self) -> usize {
        self.plane.len()
    }

    /// Whether `addr` is covered by any advertised prefix — one trie
    /// descent.
    pub fn is_routed(&self, addr: u32) -> bool {
        self.plane.contains_addr(addr)
    }

    /// The most specific advertised prefix covering `addr`, if any — the
    /// entry a FIB would forward on, and what `/v1/membership` reports.
    pub fn longest_match(&self, addr: u32) -> Option<Prefix> {
        self.plane
            .longest_match(addr)
            .map(|(base, len)| Prefix::new(base, len))
    }

    /// Total routed addresses (union of advertisements).
    pub fn address_count(&self) -> u64 {
        self.plane.union_address_count()
    }

    /// Total routed /24 subnets (union, partial covers count once).
    pub fn subnet24_count(&self) -> u64 {
        self.plane.union_subnet24_count()
    }

    /// All advertised prefixes, in lexicographic order.
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::with_capacity(self.plane.len());
        self.plane
            .for_each(|base, len| out.push(Prefix::new(base, len)));
        out
    }

    /// Aggregates another snapshot into this table (the paper aggregates
    /// all weekly snapshots within each 12-month window).
    pub fn merge(&mut self, other: &RoutedTable) {
        other.plane.for_each(|base, len| {
            self.plane.insert(base, len);
        });
    }

    /// Number of addresses of `prefix` that are covered by the table.
    /// Exact: one descent along the prefix path (an ancestor
    /// advertisement covers the whole block), then a subtree walk.
    pub fn covered_addresses_in(&self, prefix: Prefix) -> u64 {
        self.plane.covered_in(prefix.base(), prefix.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn membership_and_sizes() {
        let t = RoutedTable::from_prefixes([p("8.0.0.0/8"), p("1.2.0.0/16")]);
        assert!(t.is_routed(a("8.1.2.3")));
        assert!(t.is_routed(a("1.2.200.1")));
        assert!(!t.is_routed(a("9.0.0.0")));
        assert_eq!(t.address_count(), (1 << 24) + (1 << 16));
        assert_eq!(t.subnet24_count(), 65536 + 256);
        assert_eq!(t.prefix_count(), 2);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let t = RoutedTable::from_prefixes([p("8.0.0.0/8"), p("8.1.0.0/16")]);
        assert_eq!(t.longest_match(a("8.1.2.3")), Some(p("8.1.0.0/16")));
        assert_eq!(t.longest_match(a("8.200.0.1")), Some(p("8.0.0.0/8")));
        assert_eq!(t.longest_match(a("9.0.0.1")), None);
    }

    #[test]
    fn announce_idempotent() {
        let mut t = RoutedTable::new();
        t.announce(p("8.0.0.0/8"));
        t.announce(p("8.0.0.0/8"));
        assert_eq!(t.prefix_count(), 1);
    }

    #[test]
    fn merge_aggregates_snapshots() {
        let mut a1 = RoutedTable::from_prefixes([p("8.0.0.0/8")]);
        let a2 = RoutedTable::from_prefixes([p("8.0.0.0/8"), p("9.0.0.0/9")]);
        a1.merge(&a2);
        assert_eq!(a1.prefix_count(), 2);
        assert_eq!(a1.address_count(), (1 << 24) + (1 << 23));
    }

    #[test]
    fn nested_announcements_dedupe_in_size() {
        let t = RoutedTable::from_prefixes([p("8.0.0.0/8"), p("8.1.0.0/16")]);
        assert_eq!(t.prefix_count(), 2); // FIB view: two entries
        assert_eq!(t.address_count(), 1 << 24); // address view: union
    }

    #[test]
    fn covered_addresses_partial_overlap() {
        let t = RoutedTable::from_prefixes([p("8.0.0.0/9")]);
        assert_eq!(t.covered_addresses_in(p("8.0.0.0/8")), 1 << 23);
        assert_eq!(t.covered_addresses_in(p("8.0.0.0/9")), 1 << 23);
        assert_eq!(t.covered_addresses_in(p("8.128.0.0/9")), 0);
        assert_eq!(t.covered_addresses_in(p("8.0.1.0/24")), 256);
    }

    #[test]
    fn prefixes_enumerate_in_order() {
        let t = RoutedTable::from_prefixes([p("192.0.0.0/8"), p("10.0.0.0/8"), p("10.1.0.0/16")]);
        assert_eq!(
            t.prefixes(),
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.0.0.0/8")]
        );
    }
}
