//! A two-level bitmap set of IPv4 addresses.

use crate::addr::Prefix;
use std::collections::BTreeMap;

/// Bits per chunk: one /16 of address space.
const CHUNK_BITS: usize = 1 << 16;
const CHUNK_WORDS: usize = CHUNK_BITS / 64;

#[derive(Clone)]
struct Chunk {
    bits: Box<[u64; CHUNK_WORDS]>,
    count: u32,
}

impl Chunk {
    fn new() -> Self {
        Chunk {
            bits: Box::new([0u64; CHUNK_WORDS]),
            count: 0,
        }
    }
}

/// A set of IPv4 addresses stored as a bitmap per populated /16.
///
/// Memory: 8 KiB per /16 that holds at least one address; O(log chunks)
/// membership and insertion; set-algebra operations run a word at a time.
/// Chunks live in a `BTreeMap` so every iteration over the set is in
/// ascending address order by construction — no iteration-order
/// nondeterminism can reach derived output.
///
/// ```
/// use ghosts_net::{addr_from_str, AddrSet};
///
/// let mut seen = AddrSet::new();
/// seen.insert(addr_from_str("192.0.2.1").unwrap());
/// seen.insert(addr_from_str("192.0.2.200").unwrap());
/// assert_eq!(seen.len(), 2);
/// assert_eq!(seen.to_subnet24().len(), 1); // same /24
/// assert_eq!(seen.count_in_prefix("192.0.2.0/24".parse().unwrap()), 2);
/// ```
#[derive(Clone, Default)]
pub struct AddrSet {
    chunks: BTreeMap<u16, Chunk>,
    len: u64,
}

impl AddrSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key(addr: u32) -> u16 {
        (addr >> 16) as u16
    }

    fn offset(addr: u32) -> usize {
        (addr & 0xffff) as usize
    }

    /// Inserts an address; returns `true` if it was not already present.
    pub fn insert(&mut self, addr: u32) -> bool {
        let chunk = self
            .chunks
            .entry(Self::key(addr))
            .or_insert_with(Chunk::new);
        let off = Self::offset(addr);
        let word = &mut chunk.bits[off / 64];
        let mask = 1u64 << (off % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        chunk.count += 1;
        self.len += 1;
        true
    }

    /// Removes an address; returns `true` if it was present.
    pub fn remove(&mut self, addr: u32) -> bool {
        let Some(chunk) = self.chunks.get_mut(&Self::key(addr)) else {
            return false;
        };
        let off = Self::offset(addr);
        let word = &mut chunk.bits[off / 64];
        let mask = 1u64 << (off % 64);
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        chunk.count -= 1;
        self.len -= 1;
        if chunk.count == 0 {
            self.chunks.remove(&Self::key(addr));
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, addr: u32) -> bool {
        match self.chunks.get(&Self::key(addr)) {
            Some(chunk) => {
                let off = Self::offset(addr);
                chunk.bits[off / 64] & (1u64 << (off % 64)) != 0
            }
            None => false,
        }
    }

    /// Merges `other` into `self` (set union).
    pub fn union_with(&mut self, other: &AddrSet) {
        for (&key, ochunk) in &other.chunks {
            let chunk = self.chunks.entry(key).or_insert_with(Chunk::new);
            let mut count = 0u32;
            for (w, ow) in chunk.bits.iter_mut().zip(ochunk.bits.iter()) {
                *w |= *ow;
                count += w.count_ones();
            }
            self.len += u64::from(count) - u64::from(chunk.count);
            chunk.count = count;
        }
    }

    /// Number of addresses present in both sets.
    pub fn intersection_count(&self, other: &AddrSet) -> u64 {
        // Iterate the smaller map.
        let (small, big) = if self.chunks.len() <= other.chunks.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut total = 0u64;
        for (key, schunk) in &small.chunks {
            if let Some(bchunk) = big.chunks.get(key) {
                for (a, b) in schunk.bits.iter().zip(bchunk.bits.iter()) {
                    total += u64::from((a & b).count_ones());
                }
            }
        }
        total
    }

    /// The intersection of two sets as a new set.
    pub fn intersect(&self, other: &AddrSet) -> AddrSet {
        let (small, big) = if self.chunks.len() <= other.chunks.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = AddrSet::new();
        for (key, schunk) in &small.chunks {
            let Some(bchunk) = big.chunks.get(key) else {
                continue;
            };
            let mut chunk = Chunk::new();
            let mut count = 0u32;
            for (w, (a, b)) in chunk
                .bits
                .iter_mut()
                .zip(schunk.bits.iter().zip(bchunk.bits.iter()))
            {
                *w = a & b;
                count += w.count_ones();
            }
            if count > 0 {
                chunk.count = count;
                out.len += u64::from(count);
                out.chunks.insert(*key, chunk);
            }
        }
        out
    }

    /// Removes from `self` every address present in `other`.
    pub fn subtract(&mut self, other: &AddrSet) {
        let keys: Vec<u16> = self
            .chunks
            .keys()
            .filter(|k| other.chunks.contains_key(k))
            .copied()
            .collect();
        for key in keys {
            let ochunk = &other.chunks[&key];
            let chunk = self.chunks.get_mut(&key).expect("key just observed"); // lint: allow(no-unwrap) key from self.chunks
            let mut count = 0u32;
            for (w, ow) in chunk.bits.iter_mut().zip(ochunk.bits.iter()) {
                *w &= !*ow;
                count += w.count_ones();
            }
            self.len -= u64::from(chunk.count) - u64::from(count);
            chunk.count = count;
            if count == 0 {
                self.chunks.remove(&key);
            }
        }
    }

    /// Number of set addresses inside `prefix`.
    pub fn count_in_prefix(&self, prefix: Prefix) -> u64 {
        if prefix.len() <= 16 {
            // Whole chunks: sum maintained counts over the key range.
            let lo = (prefix.base() >> 16) as u16;
            let hi = (prefix.last_address() >> 16) as u16;
            if prefix.len() == 0 {
                return self.len;
            }
            // The sorted map visits exactly the populated chunks in range.
            self.chunks
                .range(lo..=hi)
                .map(|(_, c)| u64::from(c.count))
                .sum()
        } else {
            let Some(chunk) = self.chunks.get(&Self::key(prefix.base())) else {
                return 0;
            };
            let start = Self::offset(prefix.base());
            let end = Self::offset(prefix.last_address());
            count_bit_range(&chunk.bits[..], start, end)
        }
    }

    /// Iterates addresses in ascending order (chunks are kept sorted).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|(&key, chunk)| {
            let base = u32::from(key) << 16;
            chunk
                .bits
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != 0)
                .flat_map(move |(wi, &w)| BitIter::new(w).map(move |b| base + (wi as u32) * 64 + b))
        })
    }

    /// Keeps only addresses satisfying the predicate.
    pub fn retain<F: FnMut(u32) -> bool>(&mut self, mut f: F) {
        let doomed: Vec<u32> = self.iter().filter(|&a| !f(a)).collect();
        for a in doomed {
            self.remove(a);
        }
    }

    /// Projects to the set of /24 subnets containing at least one address.
    pub fn to_subnet24(&self) -> super::SubnetSet {
        let mut out = super::SubnetSet::new();
        for (&key, chunk) in &self.chunks {
            let base = u32::from(key) << 16;
            // Each /24 covers 4 consecutive words.
            for s in 0..256u32 {
                let w0 = (s as usize) * 4;
                if chunk.bits[w0] | chunk.bits[w0 + 1] | chunk.bits[w0 + 2] | chunk.bits[w0 + 3]
                    != 0
                {
                    out.insert((base + (s << 8)) >> 8);
                }
            }
        }
        out
    }

    /// Per-/8 address counts (index = first octet).
    pub fn per_octet_counts(&self) -> [u64; 256] {
        let mut out = [0u64; 256];
        for (&key, chunk) in &self.chunks {
            out[(key >> 8) as usize] += u64::from(chunk.count);
        }
        out
    }
}

/// Counts set bits in positions `start..=end` of a word array.
fn count_bit_range(words: &[u64], start: usize, end: usize) -> u64 {
    let (sw, sb) = (start / 64, start % 64);
    let (ew, eb) = (end / 64, end % 64);
    if sw == ew {
        let mask = (u64::MAX << sb) & (u64::MAX >> (63 - eb));
        return u64::from((words[sw] & mask).count_ones());
    }
    let mut total = u64::from((words[sw] & (u64::MAX << sb)).count_ones());
    for w in &words[sw + 1..ew] {
        total += u64::from(w.count_ones());
    }
    total + u64::from((words[ew] & (u64::MAX >> (63 - eb))).count_ones())
}

/// Iterates the set bit positions of a word.
struct BitIter {
    word: u64,
}

impl BitIter {
    fn new(word: u64) -> Self {
        BitIter { word }
    }
}

impl Iterator for BitIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(b)
    }
}

impl FromIterator<u32> for AddrSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = AddrSet::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl Extend<u32> for AddrSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl std::fmt::Debug for AddrSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddrSet {{ len: {}, chunks: {} }}",
            self.len,
            self.chunks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AddrSet::new();
        assert!(s.insert(a("10.0.0.1")));
        assert!(!s.insert(a("10.0.0.1")));
        assert!(s.contains(a("10.0.0.1")));
        assert!(!s.contains(a("10.0.0.2")));
        assert_eq!(s.len(), 1);
        assert!(s.remove(a("10.0.0.1")));
        assert!(!s.remove(a("10.0.0.1")));
        assert!(s.is_empty());
    }

    #[test]
    fn boundary_addresses() {
        let mut s = AddrSet::new();
        s.insert(0);
        s.insert(u32::MAX);
        s.insert(a("0.0.255.255"));
        s.insert(a("0.1.0.0")); // chunk boundary
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(u32::MAX));
        let all: Vec<u32> = s.iter().collect();
        assert_eq!(all, vec![0, 65535, 65536, u32::MAX]);
    }

    #[test]
    fn union_and_intersection() {
        let s1: AddrSet = [1u32, 2, 3, 100_000].into_iter().collect();
        let s2: AddrSet = [3u32, 4, 100_000, 9_000_000].into_iter().collect();
        assert_eq!(s1.intersection_count(&s2), 2);
        assert_eq!(s2.intersection_count(&s1), 2);
        let mut u = s1.clone();
        u.union_with(&s2);
        assert_eq!(u.len(), 6);
        for &x in &[1u32, 2, 3, 4, 100_000, 9_000_000] {
            assert!(u.contains(x));
        }
    }

    #[test]
    fn intersect_builds_common_set() {
        let s1: AddrSet = [1u32, 2, 3, 100_000].into_iter().collect();
        let s2: AddrSet = [2u32, 3, 100_000, 9_000_000].into_iter().collect();
        let i = s1.intersect(&s2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 100_000]);
        assert_eq!(i.len(), s1.intersection_count(&s2));
        // Intersection with an empty set is empty.
        assert!(s1.intersect(&AddrSet::new()).is_empty());
    }

    #[test]
    fn subtract_removes_and_prunes() {
        let mut s: AddrSet = [1u32, 2, 3].into_iter().collect();
        let t: AddrSet = [2u32, 3, 4].into_iter().collect();
        s.subtract(&t);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
        // Subtracting everything empties the set.
        let t2: AddrSet = [1u32].into_iter().collect();
        s.subtract(&t2);
        assert!(s.is_empty());
        assert_eq!(s.chunks.len(), 0, "empty chunks must be pruned");
    }

    #[test]
    fn count_in_prefix_various_lengths() {
        let mut s = AddrSet::new();
        for &addr in &[
            "10.0.0.1",
            "10.0.0.200",
            "10.0.1.7",
            "10.128.0.1",
            "11.0.0.1",
        ] {
            s.insert(a(addr));
        }
        assert_eq!(s.count_in_prefix("10.0.0.0/8".parse().unwrap()), 4);
        assert_eq!(s.count_in_prefix("10.0.0.0/24".parse().unwrap()), 2);
        assert_eq!(s.count_in_prefix("10.0.0.0/16".parse().unwrap()), 3);
        assert_eq!(s.count_in_prefix("10.0.0.0/31".parse().unwrap()), 1);
        assert_eq!(s.count_in_prefix("10.0.0.1/32".parse().unwrap()), 1);
        assert_eq!(s.count_in_prefix("10.0.0.2/32".parse().unwrap()), 0);
        assert_eq!(s.count_in_prefix(Prefix::whole_space()), 5);
        assert_eq!(s.count_in_prefix("12.0.0.0/8".parse().unwrap()), 0);
    }

    #[test]
    fn projection_to_subnets() {
        let mut s = AddrSet::new();
        s.insert(a("10.0.0.1"));
        s.insert(a("10.0.0.200")); // same /24
        s.insert(a("10.0.1.1"));
        s.insert(a("172.16.5.9"));
        let subs = s.to_subnet24();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(a("10.0.0.0") >> 8));
        assert!(subs.contains(a("172.16.5.0") >> 8));
    }

    #[test]
    fn retain_filters() {
        let mut s: AddrSet = (0u32..100).collect();
        s.retain(|x| x % 2 == 0);
        assert_eq!(s.len(), 50);
        assert!(s.contains(42) && !s.contains(43));
    }

    #[test]
    fn per_octet_counts_bucketize() {
        let mut s = AddrSet::new();
        s.insert(a("10.1.2.3"));
        s.insert(a("10.200.2.3"));
        s.insert(a("53.0.0.1"));
        let counts = s.per_octet_counts();
        assert_eq!(counts[10], 2);
        assert_eq!(counts[53], 1);
        assert_eq!(counts[11], 0);
    }

    #[test]
    fn iter_sorted_and_complete() {
        let addrs = [9u32, 5, 70_000, 3, u32::MAX, 65_536];
        let s: AddrSet = addrs.iter().copied().collect();
        let got: Vec<u32> = s.iter().collect();
        let mut want = addrs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_with_overlapping_chunks_maintains_len() {
        let mut s1: AddrSet = (0u32..1000).collect();
        let s2: AddrSet = (500u32..1500).collect();
        s1.union_with(&s2);
        assert_eq!(s1.len(), 1500);
        assert_eq!(s1.iter().count() as u64, s1.len());
    }
}
