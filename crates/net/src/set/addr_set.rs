//! A full-2^32 bitmap set of IPv4 addresses, backed by the segmented
//! address plane ([`ghosts_addrplane::AddrPlane`]).

use crate::addr::Prefix;
use ghosts_addrplane::AddrPlane;

/// A set of IPv4 addresses stored as one bit per address in lazily
/// allocated 2 MiB segments (one per populated /8).
///
/// Membership is a single word load; set algebra (union, intersection,
/// subtraction) and popcounts run a word at a time over the touched
/// word ranges only. The segment directory is a `BTreeMap`, so every
/// iteration over the set is in ascending address order by construction
/// — no iteration-order nondeterminism can reach derived output.
///
/// ```
/// use ghosts_net::{addr_from_str, AddrSet};
///
/// let mut seen = AddrSet::new();
/// seen.insert(addr_from_str("192.0.2.1").unwrap());
/// seen.insert(addr_from_str("192.0.2.200").unwrap());
/// assert_eq!(seen.len(), 2);
/// assert_eq!(seen.to_subnet24().len(), 1); // same /24
/// assert_eq!(seen.count_in_prefix("192.0.2.0/24".parse().unwrap()), 2);
/// ```
#[derive(Clone, Default)]
pub struct AddrSet {
    plane: AddrPlane,
}

impl AddrSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing address plane as a set.
    pub fn from_plane(plane: AddrPlane) -> Self {
        AddrSet { plane }
    }

    /// The backing bitmap plane (for word-wise kernels — e.g. the
    /// bitwise contingency build in `ghosts_core`).
    pub fn plane(&self) -> &AddrPlane {
        &self.plane
    }

    /// Mutable access to the backing plane (bulk ingest via
    /// `AddrPlane::or_word` / `AddrPlane::fill_prefix`).
    pub fn plane_mut(&mut self) -> &mut AddrPlane {
        &mut self.plane
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> u64 {
        self.plane.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.plane.is_empty()
    }

    /// Inserts an address; returns `true` if it was not already present.
    pub fn insert(&mut self, addr: u32) -> bool {
        self.plane.insert(addr)
    }

    /// Removes an address; returns `true` if it was present.
    pub fn remove(&mut self, addr: u32) -> bool {
        self.plane.remove(addr)
    }

    /// Membership test.
    pub fn contains(&self, addr: u32) -> bool {
        self.plane.contains(addr)
    }

    /// Merges `other` into `self` (set union).
    pub fn union_with(&mut self, other: &AddrSet) {
        self.plane.union_with(&other.plane);
    }

    /// Number of addresses present in both sets.
    pub fn intersection_count(&self, other: &AddrSet) -> u64 {
        self.plane.intersection_count(&other.plane)
    }

    /// The intersection of two sets as a new set.
    pub fn intersect(&self, other: &AddrSet) -> AddrSet {
        AddrSet {
            plane: self.plane.intersect(&other.plane),
        }
    }

    /// Removes from `self` every address present in `other`.
    pub fn subtract(&mut self, other: &AddrSet) {
        self.plane.subtract(&other.plane);
    }

    /// Number of set addresses inside `prefix` — a popcount over the
    /// prefix's word range (whole populated segments use their
    /// maintained counts).
    pub fn count_in_prefix(&self, prefix: Prefix) -> u64 {
        self.plane.count_in_prefix(prefix.base(), prefix.len())
    }

    /// Iterates addresses in ascending order (segments are kept sorted).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.plane.iter()
    }

    /// Keeps only addresses satisfying the predicate.
    pub fn retain<F: FnMut(u32) -> bool>(&mut self, f: F) {
        self.plane.retain(f);
    }

    /// Projects to the set of /24 subnets containing at least one
    /// address, by walking nonzero words (each word sits inside one /24).
    pub fn to_subnet24(&self) -> super::SubnetSet {
        let mut out = super::SubnetSet::new();
        self.plane.for_each_word(|word_base, _| {
            out.insert(word_base >> 8);
        });
        out
    }

    /// Per-/8 address counts (index = first octet).
    pub fn per_octet_counts(&self) -> [u64; 256] {
        self.plane.per_octet_counts()
    }
}

impl FromIterator<u32> for AddrSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        AddrSet {
            plane: iter.into_iter().collect(),
        }
    }
}

impl Extend<u32> for AddrSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        self.plane.extend(iter);
    }
}

impl std::fmt::Debug for AddrSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddrSet {{ len: {}, segments: {} }}",
            self.plane.len(),
            self.plane.segment_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AddrSet::new();
        assert!(s.insert(a("10.0.0.1")));
        assert!(!s.insert(a("10.0.0.1")));
        assert!(s.contains(a("10.0.0.1")));
        assert!(!s.contains(a("10.0.0.2")));
        assert_eq!(s.len(), 1);
        assert!(s.remove(a("10.0.0.1")));
        assert!(!s.remove(a("10.0.0.1")));
        assert!(s.is_empty());
    }

    #[test]
    fn boundary_addresses() {
        let mut s = AddrSet::new();
        s.insert(0);
        s.insert(u32::MAX);
        s.insert(a("0.0.255.255"));
        s.insert(a("0.1.0.0"));
        s.insert(a("0.255.255.255")); // segment boundary
        s.insert(a("1.0.0.0"));
        assert_eq!(s.len(), 6);
        assert!(s.contains(0) && s.contains(u32::MAX));
        let all: Vec<u32> = s.iter().collect();
        assert_eq!(all, vec![0, 65535, 65536, (1 << 24) - 1, 1 << 24, u32::MAX]);
    }

    #[test]
    fn union_and_intersection() {
        let s1: AddrSet = [1u32, 2, 3, 100_000].into_iter().collect();
        let s2: AddrSet = [3u32, 4, 100_000, 9_000_000].into_iter().collect();
        assert_eq!(s1.intersection_count(&s2), 2);
        assert_eq!(s2.intersection_count(&s1), 2);
        let mut u = s1.clone();
        u.union_with(&s2);
        assert_eq!(u.len(), 6);
        for &x in &[1u32, 2, 3, 4, 100_000, 9_000_000] {
            assert!(u.contains(x));
        }
    }

    #[test]
    fn intersect_builds_common_set() {
        let s1: AddrSet = [1u32, 2, 3, 100_000].into_iter().collect();
        let s2: AddrSet = [2u32, 3, 100_000, 9_000_000].into_iter().collect();
        let i = s1.intersect(&s2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 100_000]);
        assert_eq!(i.len(), s1.intersection_count(&s2));
        // Intersection with an empty set is empty.
        assert!(s1.intersect(&AddrSet::new()).is_empty());
    }

    #[test]
    fn subtract_removes_and_prunes() {
        let mut s: AddrSet = [1u32, 2, 3].into_iter().collect();
        let t: AddrSet = [2u32, 3, 4].into_iter().collect();
        s.subtract(&t);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
        // Subtracting everything empties the set.
        let t2: AddrSet = [1u32].into_iter().collect();
        s.subtract(&t2);
        assert!(s.is_empty());
        assert_eq!(
            s.plane().segment_count(),
            0,
            "empty segments must be pruned"
        );
    }

    #[test]
    fn count_in_prefix_various_lengths() {
        let mut s = AddrSet::new();
        for &addr in &[
            "10.0.0.1",
            "10.0.0.200",
            "10.0.1.7",
            "10.128.0.1",
            "11.0.0.1",
        ] {
            s.insert(a(addr));
        }
        assert_eq!(s.count_in_prefix("10.0.0.0/8".parse().unwrap()), 4);
        assert_eq!(s.count_in_prefix("10.0.0.0/24".parse().unwrap()), 2);
        assert_eq!(s.count_in_prefix("10.0.0.0/16".parse().unwrap()), 3);
        assert_eq!(s.count_in_prefix("10.0.0.0/31".parse().unwrap()), 1);
        assert_eq!(s.count_in_prefix("10.0.0.1/32".parse().unwrap()), 1);
        assert_eq!(s.count_in_prefix("10.0.0.2/32".parse().unwrap()), 0);
        assert_eq!(s.count_in_prefix(Prefix::whole_space()), 5);
        assert_eq!(s.count_in_prefix("12.0.0.0/8".parse().unwrap()), 0);
        // Wider than one /8: the count spans segments.
        assert_eq!(s.count_in_prefix("10.0.0.0/7".parse().unwrap()), 5);
    }

    #[test]
    fn projection_to_subnets() {
        let mut s = AddrSet::new();
        s.insert(a("10.0.0.1"));
        s.insert(a("10.0.0.200")); // same /24
        s.insert(a("10.0.1.1"));
        s.insert(a("172.16.5.9"));
        let subs = s.to_subnet24();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(a("10.0.0.0") >> 8));
        assert!(subs.contains(a("172.16.5.0") >> 8));
    }

    #[test]
    fn retain_filters() {
        let mut s: AddrSet = (0u32..100).collect();
        s.retain(|x| x % 2 == 0);
        assert_eq!(s.len(), 50);
        assert!(s.contains(42) && !s.contains(43));
    }

    #[test]
    fn per_octet_counts_bucketize() {
        let mut s = AddrSet::new();
        s.insert(a("10.1.2.3"));
        s.insert(a("10.200.2.3"));
        s.insert(a("53.0.0.1"));
        let counts = s.per_octet_counts();
        assert_eq!(counts[10], 2);
        assert_eq!(counts[53], 1);
        assert_eq!(counts[11], 0);
    }

    #[test]
    fn iter_sorted_and_complete() {
        let addrs = [9u32, 5, 70_000, 3, u32::MAX, 65_536];
        let s: AddrSet = addrs.iter().copied().collect();
        let got: Vec<u32> = s.iter().collect();
        let mut want = addrs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_with_overlapping_chunks_maintains_len() {
        let mut s1: AddrSet = (0u32..1000).collect();
        let s2: AddrSet = (500u32..1500).collect();
        s1.union_with(&s2);
        assert_eq!(s1.len(), 1500);
        assert_eq!(s1.iter().count() as u64, s1.len());
    }

    #[test]
    fn plane_round_trip() {
        let s: AddrSet = [1u32, 2, 0x0a00_0000].into_iter().collect();
        let t = AddrSet::from_plane(s.plane().clone());
        assert_eq!(t.iter().collect::<Vec<_>>(), s.iter().collect::<Vec<_>>());
    }
}
