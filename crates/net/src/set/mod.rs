//! Compact sets of IPv4 addresses and /24 subnets.
//!
//! Capture–recapture consumes, per source and time window, the *set* of
//! observed identifiers. At Internet scale a `HashSet<u32>` costs tens of
//! bytes per element; measurement sources observe hundreds of millions of
//! addresses, so the workspace uses bitmaps instead:
//!
//! * [`AddrSet`] — a view over the full-2^32 segmented bitmap plane
//!   (`ghosts_addrplane::AddrPlane`): one bit per address in lazily
//!   allocated 2 MiB segments, one per populated /8. Densely used space
//!   costs one bit per address; completely unused /8s cost nothing, and
//!   untouched pages inside a segment stay copy-on-write zero pages.
//! * [`SubnetSet`] — a flat 2 MiB bitmap over all 2²⁴ possible /24
//!   subnets (a /24 is "used" if any of its addresses is, §4).

mod addr_set;
mod subnet_set;

pub use addr_set::AddrSet;
pub use subnet_set::SubnetSet;
