//! Compact sets of IPv4 addresses and /24 subnets.
//!
//! Capture–recapture consumes, per source and time window, the *set* of
//! observed identifiers. At Internet scale a `HashSet<u32>` costs tens of
//! bytes per element; measurement sources observe hundreds of millions of
//! addresses, so the workspace uses bitmaps instead:
//!
//! * [`AddrSet`] — a two-level bitmap keyed by /16 chunk, 8 KiB per
//!   populated /16. Densely used space costs one bit per address;
//!   completely unused /16s cost nothing.
//! * [`SubnetSet`] — a flat 2 MiB bitmap over all 2²⁴ possible /24
//!   subnets (a /24 is "used" if any of its addresses is, §4).

mod addr_set;
mod subnet_set;

pub use addr_set::AddrSet;
pub use subnet_set::SubnetSet;
