//! A flat bitmap set over all 2²⁴ possible /24 subnets.

use crate::addr::Prefix;

const TOTAL_SUBNETS: usize = 1 << 24;
const WORDS: usize = TOTAL_SUBNETS / 64;

/// A set of /24 subnets, identified by the top 24 bits of an address
/// (`addr >> 8`). Backed by one flat 2 MiB bitmap — small enough to
/// allocate eagerly, large enough to hold the entire IPv4 /24 space.
#[derive(Clone)]
pub struct SubnetSet {
    bits: Vec<u64>,
    len: u64,
}

impl Default for SubnetSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SubnetSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            bits: vec![0u64; WORDS],
            len: 0,
        }
    }

    /// Number of subnets in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts subnet id `sub` (must be `< 2²⁴`); returns `true` if new.
    ///
    /// # Panics
    ///
    /// Panics if `sub >= 2²⁴`.
    pub fn insert(&mut self, sub: u32) -> bool {
        assert!(
            (sub as usize) < TOTAL_SUBNETS,
            "subnet id {sub} out of range"
        );
        let word = &mut self.bits[(sub / 64) as usize];
        let mask = 1u64 << (sub % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.len += 1;
        true
    }

    /// Inserts the /24 containing `addr`.
    pub fn insert_addr(&mut self, addr: u32) -> bool {
        self.insert(addr >> 8)
    }

    /// Removes subnet id `sub`; returns `true` if it was present.
    pub fn remove(&mut self, sub: u32) -> bool {
        if (sub as usize) >= TOTAL_SUBNETS {
            return false;
        }
        let word = &mut self.bits[(sub / 64) as usize];
        let mask = 1u64 << (sub % 64);
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.len -= 1;
        true
    }

    /// Membership test by subnet id.
    pub fn contains(&self, sub: u32) -> bool {
        (sub as usize) < TOTAL_SUBNETS && self.bits[(sub / 64) as usize] & (1u64 << (sub % 64)) != 0
    }

    /// Membership test by address.
    pub fn contains_addr(&self, addr: u32) -> bool {
        self.contains(addr >> 8)
    }

    /// Merges `other` into `self` (set union).
    pub fn union_with(&mut self, other: &SubnetSet) {
        let mut len = 0u64;
        for (w, ow) in self.bits.iter_mut().zip(&other.bits) {
            *w |= *ow;
            len += u64::from(w.count_ones());
        }
        self.len = len;
    }

    /// Number of subnets present in both sets.
    pub fn intersection_count(&self, other: &SubnetSet) -> u64 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// The intersection of two sets as a new set.
    pub fn intersect(&self, other: &SubnetSet) -> SubnetSet {
        let mut out = SubnetSet::new();
        let mut len = 0u64;
        for (w, (a, b)) in out
            .bits
            .iter_mut()
            .zip(self.bits.iter().zip(other.bits.iter()))
        {
            *w = a & b;
            len += u64::from(w.count_ones());
        }
        out.len = len;
        out
    }

    /// Removes from `self` every subnet present in `other`.
    pub fn subtract(&mut self, other: &SubnetSet) {
        let mut len = 0u64;
        for (w, ow) in self.bits.iter_mut().zip(&other.bits) {
            *w &= !*ow;
            len += u64::from(w.count_ones());
        }
        self.len = len;
    }

    /// Number of set subnets inside an address prefix (`len <= 24`).
    ///
    /// # Panics
    ///
    /// Panics if `prefix.len() > 24` — such a prefix covers only part of
    /// one /24 and subnet counting is not meaningful for it.
    pub fn count_in_prefix(&self, prefix: Prefix) -> u64 {
        assert!(
            prefix.len() <= 24,
            "count_in_prefix: /{} is below subnet granularity",
            prefix.len()
        );
        let start = (prefix.base() >> 8) as usize;
        let end = (prefix.last_address() >> 8) as usize;
        count_bit_range(&self.bits, start, end)
    }

    /// Iterates subnet ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0)
            .flat_map(|(wi, &w)| {
                let mut word = w;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let b = word.trailing_zeros();
                    word &= word - 1;
                    Some((wi as u32) * 64 + b)
                })
            })
    }

    /// The base address of subnet id `sub` (i.e. `sub << 8`).
    pub fn subnet_base(sub: u32) -> u32 {
        sub << 8
    }
}

fn count_bit_range(words: &[u64], start: usize, end: usize) -> u64 {
    let (sw, sb) = (start / 64, start % 64);
    let (ew, eb) = (end / 64, end % 64);
    if sw == ew {
        let mask = (u64::MAX << sb) & (u64::MAX >> (63 - eb));
        return u64::from((words[sw] & mask).count_ones());
    }
    let mut total = u64::from((words[sw] & (u64::MAX << sb)).count_ones());
    for w in &words[sw + 1..ew] {
        total += u64::from(w.count_ones());
    }
    total + u64::from((words[ew] & (u64::MAX >> (63 - eb))).count_ones())
}

impl FromIterator<u32> for SubnetSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = SubnetSet::new();
        for sub in iter {
            s.insert(sub);
        }
        s
    }
}

impl std::fmt::Debug for SubnetSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubnetSet {{ len: {} }}", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = SubnetSet::new();
        assert!(s.insert_addr(a("10.0.0.5")));
        assert!(!s.insert_addr(a("10.0.0.99"))); // same /24
        assert!(s.contains_addr(a("10.0.0.200")));
        assert!(!s.contains_addr(a("10.0.1.0")));
        assert_eq!(s.len(), 1);
        assert!(s.remove(a("10.0.0.0") >> 8));
        assert!(s.is_empty());
    }

    #[test]
    fn extreme_ids() {
        let mut s = SubnetSet::new();
        s.insert(0);
        s.insert((1 << 24) - 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, (1 << 24) - 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        SubnetSet::new().insert(1 << 24);
    }

    #[test]
    fn union_intersection_subtract() {
        let s1: SubnetSet = [1u32, 2, 3].into_iter().collect();
        let s2: SubnetSet = [3u32, 4].into_iter().collect();
        assert_eq!(s1.intersection_count(&s2), 1);
        let mut u = s1.clone();
        u.union_with(&s2);
        assert_eq!(u.len(), 4);
        u.subtract(&s2);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn intersect_builds_common_set() {
        let s1: SubnetSet = [1u32, 2, 3].into_iter().collect();
        let s2: SubnetSet = [2u32, 4].into_iter().collect();
        let i = s1.intersect(&s2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn count_in_prefix_subnet_granularity() {
        let mut s = SubnetSet::new();
        s.insert_addr(a("10.0.0.0"));
        s.insert_addr(a("10.0.1.0"));
        s.insert_addr(a("10.1.0.0"));
        s.insert_addr(a("11.0.0.0"));
        assert_eq!(s.count_in_prefix("10.0.0.0/8".parse().unwrap()), 3);
        assert_eq!(s.count_in_prefix("10.0.0.0/16".parse().unwrap()), 2);
        assert_eq!(s.count_in_prefix("10.0.0.0/24".parse().unwrap()), 1);
        assert_eq!(s.count_in_prefix("10.0.2.0/24".parse().unwrap()), 0);
        assert_eq!(s.count_in_prefix(Prefix::whole_space()), 4);
    }

    #[test]
    #[should_panic]
    fn count_below_granularity_panics() {
        SubnetSet::new().count_in_prefix("10.0.0.0/25".parse().unwrap());
    }

    #[test]
    fn subnet_base_round_trip() {
        let sub = a("172.16.5.0") >> 8;
        assert_eq!(SubnetSet::subnet_base(sub), a("172.16.5.0"));
    }
}
