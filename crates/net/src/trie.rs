//! A binary radix trie over IPv4 prefixes with per-prefix payloads.
//!
//! Backs the routed table (longest-prefix membership tests against
//! aggregated RouteViews-style snapshots, §4.4/§6.1) and the allocation
//! registry (address → allocation lookup for stratification, §3.4).
//!
//! The trie is a plain pointer-based binary tree: simplicity and robustness
//! over cleverness. Lookups walk at most 32 nodes; the tables it holds (a
//! few hundred thousand prefixes) comfortably fit the cache-unfriendly
//! layout.

use crate::addr::Prefix;

#[derive(Debug, Clone, Default)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from prefixes to values with longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let bit = ((prefix.base() >> (31 - depth)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value at exactly `prefix`, if present.
    pub fn get_exact(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let bit = ((prefix.base() >> (31 - depth)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match: the value of the most specific stored prefix
    /// containing `addr`, together with that prefix.
    pub fn longest_match(&self, addr: u32) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &T)> = None;
        for depth in 0..=32u8 {
            if let Some(v) = node.value.as_ref() {
                best = Some((Prefix::new(addr, depth), v));
            }
            if depth == 32 {
                break;
            }
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// Whether any stored prefix contains `addr`.
    pub fn contains_addr(&self, addr: u32) -> bool {
        self.longest_match(addr).is_some()
    }

    /// Visits every stored `(prefix, value)` in lexicographic prefix order.
    pub fn for_each<F: FnMut(Prefix, &T)>(&self, mut f: F) {
        fn walk<T, F: FnMut(Prefix, &T)>(node: &Node<T>, base: u32, depth: u8, f: &mut F) {
            if let Some(v) = node.value.as_ref() {
                f(Prefix::new(base, depth), v);
            }
            if depth == 32 {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                walk(child, base, depth + 1, f);
            }
            if let Some(child) = node.children[1].as_deref() {
                walk(child, base | (1u32 << (31 - depth)), depth + 1, f);
            }
        }
        walk(&self.root, 0, 0, &mut f);
    }

    /// Collects all stored prefixes.
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|p, _| out.push(p));
        out
    }

    /// Total number of distinct addresses covered by the union of all
    /// stored prefixes (nested prefixes are not double counted).
    pub fn union_address_count(&self) -> u64 {
        fn walk<T>(node: &Node<T>, depth: u8) -> u64 {
            if node.value.is_some() {
                return 1u64 << (32 - depth);
            }
            if depth == 32 {
                return 0;
            }
            let mut total = 0;
            for child in node.children.iter().flatten() {
                total += walk(child, depth + 1);
            }
            total
        }
        walk(&self.root, 0)
    }

    /// Number of /24 subnets fully or partially covered by the union of all
    /// stored prefixes. A stored /25–/32 counts the single /24 it sits in
    /// (deduplicated).
    pub fn union_subnet24_count(&self) -> u64 {
        fn walk<T>(node: &Node<T>, depth: u8) -> u64 {
            if node.value.is_some() {
                return if depth <= 24 { 1u64 << (24 - depth) } else { 1 };
            }
            if depth >= 24 {
                // Below /24: any covered prefix marks this single /24.
                let mut any = node.value.is_some();
                if !any {
                    fn has_any<T>(n: &Node<T>) -> bool {
                        n.value.is_some() || n.children.iter().flatten().any(|c| has_any(c))
                    }
                    any = node.children.iter().flatten().any(|c| has_any(c));
                }
                return u64::from(any);
            }
            let mut total = 0;
            for child in node.children.iter().flatten() {
                total += walk(child, depth + 1);
            }
            total
        }
        walk(&self.root, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> u32 {
        crate::addr::addr_from_str(s).unwrap()
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), "ten"), None);
        assert_eq!(t.insert(p("10.1.0.0/16"), "ten-one"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_exact(p("10.0.0.0/8")), Some(&"ten"));
        assert_eq!(t.get_exact(p("10.0.0.0/9")), None);
        // Replacement returns the old value and keeps len.
        assert_eq!(t.insert(p("10.0.0.0/8"), "TEN"), Some("ten"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let (pref, v) = t.longest_match(a("10.1.2.3")).unwrap();
        assert_eq!((pref, *v), (p("10.1.2.0/24"), 24));
        let (pref, v) = t.longest_match(a("10.1.9.9")).unwrap();
        assert_eq!((pref, *v), (p("10.1.0.0/16"), 16));
        let (pref, v) = t.longest_match(a("10.200.0.1")).unwrap();
        assert_eq!((pref, *v), (p("10.0.0.0/8"), 8));
        assert!(t.longest_match(a("11.0.0.0")).is_none());
        assert!(t.contains_addr(a("10.7.7.7")));
        assert!(!t.contains_addr(a("9.9.9.9")));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::whole_space(), ());
        assert!(t.contains_addr(0));
        assert!(t.contains_addr(u32::MAX));
    }

    #[test]
    fn host_route_exactness() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), ());
        assert!(t.contains_addr(a("1.2.3.4")));
        assert!(!t.contains_addr(a("1.2.3.5")));
    }

    #[test]
    fn iteration_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.0.0/8"), ());
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ());
        let got = t.prefixes();
        assert_eq!(
            got,
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.0.0.0/8")]
        );
    }

    #[test]
    fn union_counts_dedupe_nesting() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ()); // nested — must not double count
        t.insert(p("192.168.0.0/24"), ());
        assert_eq!(t.union_address_count(), (1 << 24) + 256);
        assert_eq!(t.union_subnet24_count(), 65536 + 1);
    }

    #[test]
    fn union_counts_subnet_partial_cover() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.128/25"), ());
        t.insert(p("1.2.3.0/26"), ()); // both halves of the same /24
        assert_eq!(t.union_subnet24_count(), 1);
        assert_eq!(t.union_address_count(), 128 + 64);
    }

    #[test]
    fn union_counts_disjoint_32s() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), ());
        t.insert(p("1.2.3.5/32"), ());
        t.insert(p("9.9.9.9/32"), ());
        assert_eq!(t.union_address_count(), 3);
        assert_eq!(t.union_subnet24_count(), 2);
    }
}
