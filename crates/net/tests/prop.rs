//! Property-based tests for the IPv4 substrate: the bitmap sets against a
//! `HashSet` reference model, prefix algebra laws, and the free-block
//! census identity `x' − x = A·n`.

// The reference model deliberately uses HashSet: its semantics (not its
// iteration order) are what AddrSet is checked against.
#![allow(clippy::disallowed_types)]

use ghosts_net::freeblocks::{additions_by_block_size, apply_additions, free_block_census};
use ghosts_net::{AddrSet, Prefix, SubnetSet};
use proptest::prelude::*;
use std::collections::HashSet;

/// Operations for the set-model property.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Contains(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Cluster addresses into a narrow range so collisions happen.
    let addr = 0x0a000000u32..0x0a000400u32;
    prop_oneof![
        addr.clone().prop_map(Op::Insert),
        addr.clone().prop_map(Op::Remove),
        addr.prop_map(Op::Contains),
    ]
}

proptest! {
    #[test]
    fn addrset_matches_hashset_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut set = AddrSet::new();
        let mut model: HashSet<u32> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(a) => prop_assert_eq!(set.insert(a), model.insert(a)),
                Op::Remove(a) => prop_assert_eq!(set.remove(a), model.remove(&a)),
                Op::Contains(a) => prop_assert_eq!(set.contains(a), model.contains(&a)),
            }
            prop_assert_eq!(set.len(), model.len() as u64);
        }
        // Final iteration agrees with the model, sorted.
        let mut want: Vec<u32> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), want);
    }

    #[test]
    fn addrset_algebra_laws(
        a in proptest::collection::hash_set(0u32..5000, 0..300),
        b in proptest::collection::hash_set(0u32..5000, 0..300),
    ) {
        let sa: AddrSet = a.iter().copied().collect();
        let sb: AddrSet = b.iter().copied().collect();
        // |A ∪ B| = |A| + |B| − |A ∩ B|
        let mut u = sa.clone();
        u.union_with(&sb);
        let inter = sa.intersection_count(&sb);
        prop_assert_eq!(u.len(), sa.len() + sb.len() - inter);
        // intersect() materialises exactly intersection_count elements.
        let i = sa.intersect(&sb);
        prop_assert_eq!(i.len(), inter);
        for addr in i.iter() {
            prop_assert!(sa.contains(addr) && sb.contains(addr));
        }
        // A \ B ∪ (A ∩ B) = A
        let mut diff = sa.clone();
        diff.subtract(&sb);
        prop_assert_eq!(diff.len() + inter, sa.len());
    }

    #[test]
    fn subnet_projection_counts(addrs in proptest::collection::hash_set(0u32..2_000_000, 0..400)) {
        let set: AddrSet = addrs.iter().copied().collect();
        let subs: SubnetSet = set.to_subnet24();
        let want: HashSet<u32> = addrs.iter().map(|a| a >> 8).collect();
        prop_assert_eq!(subs.len(), want.len() as u64);
        for s in want {
            prop_assert!(subs.contains(s));
        }
    }

    #[test]
    fn count_in_prefix_matches_filter(
        addrs in proptest::collection::hash_set(0u32..100_000, 0..300),
        base in 0u32..100_000,
        len in 12u8..=32,
    ) {
        let set: AddrSet = addrs.iter().copied().collect();
        let prefix = Prefix::new(base, len);
        let want = addrs.iter().filter(|&&a| prefix.contains(a)).count() as u64;
        prop_assert_eq!(set.count_in_prefix(prefix), want);
    }

    #[test]
    fn prefix_parent_child_roundtrip(base in any::<u32>(), len in 1u8..=32) {
        let p = Prefix::new(base, len);
        let parent = p.parent().unwrap();
        prop_assert!(parent.contains_prefix(&p));
        let (l, r) = parent.children().unwrap();
        prop_assert!(l == p || r == p);
        prop_assert_eq!(l.num_addresses() + r.num_addresses(), parent.num_addresses());
        // Sibling relation is an involution.
        if let Some(s) = p.sibling() {
            prop_assert_eq!(s.sibling().unwrap(), p);
            prop_assert_ne!(s, p);
            prop_assert_eq!(s.parent(), p.parent());
        }
    }

    #[test]
    fn prefix_split_partitions(base in any::<u32>(), len in 8u8..=20, extra in 0u8..=6) {
        let p = Prefix::new(base, len);
        let target = len + extra;
        let parts: Vec<Prefix> = p.split_into(target).collect();
        prop_assert_eq!(parts.len(), 1usize << extra);
        let total: u64 = parts.iter().map(|q| q.num_addresses()).sum();
        prop_assert_eq!(total, p.num_addresses());
        for q in &parts {
            prop_assert!(p.contains_prefix(q));
        }
        // Disjoint and ordered.
        for w in parts.windows(2) {
            prop_assert!(w[0].last_address() < w[1].base());
        }
    }

    /// The free-block census obeys the §7.1 relation under random growth:
    /// recovering n from the census delta and replaying it reproduces the
    /// after-census exactly, and the total additions equal the number of
    /// *newly used maximal-vacancy fills* (each insert fills exactly one).
    #[test]
    fn freeblock_census_identity(
        first in proptest::collection::hash_set(0u32..65_536, 1..60),
        second in proptest::collection::hash_set(0u32..65_536, 1..60),
    ) {
        let universe = [Prefix::new(0x0b000000, 16)];
        let base = 0x0b000000u32;
        let s1: AddrSet = first.iter().map(|o| base + o).collect();
        let mut s2 = s1.clone();
        for o in &second {
            s2.insert(base + o);
        }
        let x1 = free_block_census(&universe, &|p| s1.count_in_prefix(p), 32);
        let x2 = free_block_census(&universe, &|p| s2.count_in_prefix(p), 32);
        let n = additions_by_block_size(&x1, &x2);
        // Replay matches exactly.
        let replayed = apply_additions(&x1, &n);
        for (len, (r, want)) in replayed.iter().zip(x2.iter()).enumerate() {
            prop_assert!((r - *want as f64).abs() < 1e-6,
                "len {}: {} vs {}", len, r, want);
        }
        // Total additions = number of genuinely new addresses.
        let new_addrs = s2.len() - s1.len();
        let placed: f64 = n.iter().sum();
        prop_assert!((placed - new_addrs as f64).abs() < 1e-6,
            "placed {} of {}", placed, new_addrs);
        // All counts non-negative.
        for (len, v) in n.iter().enumerate() {
            prop_assert!(*v >= -1e-9, "negative n at {}", len);
        }
    }
}
