//! The [`Clock`] capability and its deterministic implementation.
//!
//! Library code that wants to time or order anything must go through a
//! `&dyn Clock` (usually the one carried by a
//! [`Recorder`](crate::Recorder)). The ghost-lint `obs-clock` rule forbids
//! touching `std::time::Instant`/`SystemTime` anywhere else, so the only
//! way for wall time to enter the system is the explicitly-constructed
//! [`WallClock`](crate::wall::WallClock) — and even then its readings only
//! ever reach the volatile lane of the recorder, never the deterministic
//! event log.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic time source.
///
/// Readings are `u64` in a clock-specific unit: microseconds for wall
/// clocks, event ticks for logical clocks. Readings never decrease.
pub trait Clock: Send + Sync {
    /// The current reading.
    fn now(&self) -> u64;

    /// Whether readings are wall-clock microseconds (`true`) or logical
    /// ticks (`false`). Wall readings are runtime facts and must stay in
    /// the volatile lane.
    fn is_wall(&self) -> bool;
}

/// A deterministic clock: a process-wide monotonic event counter.
///
/// Every [`now`](Clock::now) call advances the counter by one, so readings
/// measure "how many clock reads happened before this one" — a causal
/// ordering, not a duration. That is exactly what deterministic library
/// code is allowed to observe.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A fresh counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    fn is_wall(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_strictly_monotonic() {
        let c = LogicalClock::new();
        let a = c.now();
        let b = c.now();
        let d = c.now();
        assert!(a < b && b < d);
        assert!(!c.is_wall());
    }

    #[test]
    fn logical_clock_counts_reads() {
        let c = LogicalClock::new();
        for want in 0..100 {
            assert_eq!(c.now(), want);
        }
    }
}
