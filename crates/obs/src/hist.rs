//! Fixed-bucket histograms over non-negative integers.
//!
//! All instrumented quantities that need a distribution — GLM iteration
//! counts, profile-CI bisection steps, per-stage drop counts — are integer
//! valued, so the histogram stores only `u64`s: bucket counts, an exact
//! sum, and min/max. Every accumulator is commutative, which is what makes
//! concurrent recording deterministic: the same multiset of observations
//! yields the same snapshot regardless of arrival order or thread count.

/// Number of buckets (the last one is the `> BUCKET_BOUNDS[last-1]`
/// overflow bucket).
pub const NUM_BUCKETS: usize = 12;

/// Inclusive upper bounds of the first `NUM_BUCKETS − 1` buckets (powers of
/// two); the final bucket catches everything larger.
pub const BUCKET_BOUNDS: [u64; NUM_BUCKETS - 1] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A point-in-time histogram state (also the merge/serialisation form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations per bucket, aligned with [`BUCKET_BOUNDS`] plus the
    /// overflow bucket.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (`0` when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    /// Same as [`HistSnapshot::new`] — note `min` starts at `u64::MAX`, the
    /// identity of `min`-merging, not zero.
    fn default() -> Self {
        Self::new()
    }
}

impl HistSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(NUM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another snapshot into this one (commutative, associative).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive() {
        assert_eq!(HistSnapshot::bucket_of(0), 0);
        assert_eq!(HistSnapshot::bucket_of(1), 0);
        assert_eq!(HistSnapshot::bucket_of(2), 1);
        assert_eq!(HistSnapshot::bucket_of(3), 2);
        assert_eq!(HistSnapshot::bucket_of(4), 2);
        assert_eq!(HistSnapshot::bucket_of(5), 3);
        assert_eq!(HistSnapshot::bucket_of(1024), 10);
        assert_eq!(HistSnapshot::bucket_of(1025), 11);
        assert_eq!(HistSnapshot::bucket_of(u64::MAX), 11);
    }

    #[test]
    fn observe_tracks_count_sum_min_max() {
        let mut h = HistSnapshot::new();
        for v in [3, 1, 7, 1024, 2000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 3 + 1 + 7 + 1024 + 2000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 2000);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        assert_eq!(h.buckets[11], 1); // only 2000 overflows
        assert_eq!(h.mean(), Some(607.0));
    }

    #[test]
    fn merge_is_order_independent() {
        let obs = [5u64, 9, 130, 1, 1, 64, 4096];
        let mut left = HistSnapshot::new();
        let mut right = HistSnapshot::new();
        for (i, &v) in obs.iter().enumerate() {
            if i.is_multiple_of(2) {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, ba);

        let mut seq = HistSnapshot::new();
        for &v in &obs {
            seq.observe(v);
        }
        assert_eq!(ab, seq);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = HistSnapshot::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min, u64::MAX);
        assert_eq!(h.max, 0);
    }
}
