//! A minimal ordered JSON tree with both a writer and a parser.
//!
//! The workspace's vendored `serde_json` shim is serialise-only, but the
//! observability layer needs to *read* JSON back: the
//! [`RunManifest`](crate::RunManifest) round-trips through disk, and the
//! `xtask lint --check-events` schema checker validates trace files. This
//! module is the self-contained answer: an insertion-ordered value tree, a
//! compact writer whose float formatting is byte-compatible with the shim
//! (shortest round-trip, exponent form outside `[1e-5, 1e17)`, always a
//! `.0`/exponent so the token stays a float, non-finite → `null`), and a
//! strict recursive-descent parser.

use std::fmt;

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (preferred for all counters).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This value's key/value pairs if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::UInt(n) => {
            let mut buf = [0u8; 20];
            out.push_str(format_u64(*n, &mut buf));
        }
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::Float(x) => write_float(out, *x),
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Formats a `u64` into a stack buffer (avoids an allocation on the hot
/// serialisation path).
fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    std::str::from_utf8(&buf[i..]).unwrap_or("0") // lint: allow(no-unwrap) ascii digits
}

/// Float formatting byte-compatible with the vendored serde_json shim.
fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let a = v.abs();
    // lint: allow(float-eq) formatter branch on exact zero, not a tolerance
    let s = if a != 0.0 && !(1e-5..1e17).contains(&a) {
        format!("{v:e}")
    } else {
        format!("{v}")
    };
    out.push_str(&s);
    if !(s.contains('.') || s.contains('e') || s.contains('E')) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by our own
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_documents() {
        let cases = [
            r#"{"a":1,"b":[1,2.5,"x",null,{"inner":true}],"c":-4}"#,
            r#"[]"#,
            r#"{}"#,
            r#"{"s":"a\"b\\c\nd"}"#,
            r#"{"big":18446744073709551615,"neg":-9223372036854775808}"#,
            r#"[0.001,2.0,1e300]"#,
        ];
        for case in cases {
            let v = parse(case).expect(case);
            assert_eq!(v.to_compact(), case, "round-trip of {case}");
        }
    }

    #[test]
    fn float_formatting_matches_vendored_serde_json() {
        assert_eq!(JsonValue::Float(2.0).to_compact(), "2.0");
        assert_eq!(JsonValue::Float(2.5).to_compact(), "2.5");
        assert_eq!(JsonValue::Float(1e300).to_compact(), "1e300");
        assert_eq!(JsonValue::Float(1e-7).to_compact(), "1e-7");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::Float(0.0).to_compact(), "0.0");
    }

    #[test]
    fn integer_types_are_preserved() {
        let v = parse("[7,-7,2.5]").expect("parses");
        let a = v.as_array().expect("array");
        assert_eq!(a[0], JsonValue::UInt(7));
        assert_eq!(a[1], JsonValue::Int(-7));
        assert_eq!(a[2], JsonValue::Float(2.5));
        assert_eq!(a[0].as_u64(), Some(7));
        assert_eq!(a[1].as_u64(), None);
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"name":"fit","fields":{"iters":12}}"#).expect("parses");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("fit"));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("iters"))
                .and_then(JsonValue::as_u64),
            Some(12)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let original = JsonValue::Str("tab\t newline\n quote\" back\\ unicode \u{0001}".into());
        let text = original.to_compact();
        assert_eq!(parse(&text).expect("parses"), original);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1..2",
            "\"unterminated",
            "{} x",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("[1, @]").expect_err("must fail");
        assert_eq!(err.offset, 4);
    }
}
