//! # ghosts-obs
//!
//! The observability layer of the *Capturing Ghosts* reproduction:
//! deterministic tracing, metrics and run manifests for every estimation
//! entry point (DESIGN.md §10).
//!
//! The estimation pipeline is required to be **bit-deterministic** — the
//! ghost-lint `nondeterminism` rule bans wall clocks and OS randomness from
//! library code, and the parallel engine guarantees `threads = 1` and
//! `threads = N` produce identical bytes. This crate extends that guarantee
//! to introspection: with tracing enabled, the JSONL event log of a run is
//! itself byte-identical at every thread count. Three design rules make
//! that true by construction:
//!
//! 1. **Clocks are capabilities.** Library code never reads time directly;
//!    it goes through the [`Clock`] trait. [`LogicalClock`] (a monotonic
//!    event counter) is what libraries and tests use; [`wall::WallClock`]
//!    wraps a real `std::time::Instant` and may only be constructed by
//!    binaries and benches (enforced by ghost-lint's `obs-clock` rule).
//! 2. **Two lanes.** Deterministic data (spans, events, counters,
//!    integer-valued histograms) feeds the JSONL trace and is a pure
//!    function of the input. Runtime facts (wall-clock durations, worker
//!    counts, queue stats) go to the *volatile* lane, which only ever
//!    reaches the [`RunManifest`] — never the trace.
//! 3. **Deterministic merge.** The sink shards by span identity, every
//!    span's events are appended in program order by the single logical
//!    task that owns the span, and the flush serialises spans in path
//!    order — so thread scheduling cannot reorder a single byte.
//!
//! The no-op [`Recorder`] (the default) is a branch on an `Option`, not a
//! lock: instrumented hot paths cost nothing when tracing is off.
//!
//! ## Quick example
//!
//! ```
//! use ghosts_obs::{FieldValue, LogicalClock, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
//! let span = rec.root("demo");
//! span.event("hello", &[("answer", FieldValue::U64(42))]);
//! rec.add("demo.events", 1);
//! let log = rec.flush();
//! assert!(log.to_jsonl().contains("\"answer\":42"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod schema;
pub mod sketch;
pub mod wall;

pub use clock::{Clock, LogicalClock};
pub use hist::{HistSnapshot, BUCKET_BOUNDS, NUM_BUCKETS};
pub use manifest::{Record, RunManifest};
pub use profile::{StageGuard, StageProfiler, StageRow, StageTable};
pub use recorder::{EventKind, EventLog, EventRecord, FieldValue, Recorder, Scope, SpanPath};
pub use registry::{Counter, Histogram, Registry, RegistrySnapshot};
pub use ring::{EpochRing, TailClass, TailEntry, TailRing, TailStats};
pub use schema::{
    validate_event_line, validate_jsonl, EVENTS_SCHEMA, EVENTS_SCHEMA_V1, EVENTS_SCHEMA_V2,
    EVENTS_SCHEMA_V3,
};
pub use sketch::{LogLinearHist, RELATIVE_ERROR, SUB_BITS, SUB_BUCKETS};
pub use wall::WallClock;
