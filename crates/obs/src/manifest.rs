//! The end-of-run [`RunManifest`]: the one artefact that may contain
//! volatile (runtime) facts.
//!
//! A manifest is assembled by the binary after the run: it echoes the
//! effective configuration, ingests summary events from the flushed
//! [`EventLog`](crate::EventLog) (model choices, IC candidate tables,
//! errors), and carries the final counters, histograms and the volatile
//! lane (wall durations, worker stats). Unlike the JSONL trace it is *not*
//! required to be identical across thread counts — that is the whole point
//! of the split.

use crate::hist::{HistSnapshot, NUM_BUCKETS};
use crate::json::{parse, JsonError, JsonValue};
use crate::recorder::{EventLog, FieldValue};
use std::collections::BTreeMap;

/// Schema identifier written into every manifest.
pub const MANIFEST_SCHEMA: &str = "ghosts-manifest/1";

/// One named entry in a manifest section — a summarised trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Which section this belongs to (usually the originating event name,
    /// e.g. `model_chosen` or `ic_candidate`).
    pub section: String,
    /// The span path the event came from.
    pub span: String,
    /// The event's fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Record {
    /// The field `key` as an `f64`, if present and numeric.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                FieldValue::U64(x) => Some(*x as f64),
                FieldValue::I64(x) => Some(*x as f64),
                FieldValue::F64(x) => Some(*x),
                _ => None,
            })
    }

    /// The field `key` as a string, if present.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                FieldValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }
}

/// The run manifest. See the module docs for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Echo of the effective configuration, in insertion order.
    pub config: Vec<(String, String)>,
    /// Summarised events, in trace order.
    pub records: Vec<Record>,
    /// Final deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Final deterministic histograms.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// The volatile lane: wall durations, worker/task stats. Runtime facts;
    /// allowed to differ between runs.
    pub volatile: BTreeMap<String, u64>,
}

impl RunManifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Echoes one configuration key.
    pub fn set_config(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        if let Some(slot) = self.config.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.config.push((key.to_string(), value));
        }
    }

    /// Copies counters, histograms and the volatile lane from a flushed
    /// log (merging into anything already present).
    pub fn ingest_metrics(&mut self, log: &EventLog) {
        for (name, v) in &log.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &log.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        for (name, v) in &log.volatile {
            *self.volatile.entry(name.clone()).or_insert(0) += v;
        }
    }

    /// Summarises events whose names appear in `names` into [`Record`]s
    /// (in trace order). Error events are always ingested, regardless of
    /// `names`, as are the robustness kinds: degradation steps land in the
    /// `degraded` section, fired fault-plan rules in `fault_injected` and
    /// reliability-engine results in `reliability`, so a partial run's
    /// manifest always says what was degraded and why.
    pub fn ingest_events(&mut self, log: &EventLog, names: &[&str]) {
        use crate::recorder::EventKind;
        for (path, events) in &log.spans {
            for e in events {
                let section = match e.kind {
                    EventKind::Degradation => Some("degraded"),
                    EventKind::FaultInjected => Some("fault_injected"),
                    EventKind::Reliability => Some("reliability"),
                    EventKind::Error => Some(e.name.as_str()),
                    EventKind::Event => {
                        if names.contains(&e.name.as_str()) {
                            Some(e.name.as_str())
                        } else {
                            None
                        }
                    }
                };
                if let Some(section) = section {
                    self.records.push(Record {
                        section: section.to_string(),
                        span: path.render(),
                        fields: e.fields.clone(),
                    });
                }
            }
        }
    }

    /// Ingests an aggregated stage table from the
    /// [`StageProfiler`](crate::StageProfiler): the deterministic call
    /// counts become `stage_profile` records, while the clock totals —
    /// wall time when the profiler ran on a wall clock — land in the
    /// volatile lane under `stage.<path>.us`, keeping the two-lane
    /// discipline.
    pub fn ingest_stage_table(&mut self, table: &crate::profile::StageTable) {
        for row in &table.rows {
            self.records.push(Record {
                section: "stage_profile".to_string(),
                span: row.path.clone(),
                fields: vec![("calls".to_string(), FieldValue::U64(row.calls))],
            });
            *self
                .volatile
                .entry(format!("stage.{}.us", row.path))
                .or_insert(0) += row.total_us;
        }
    }

    /// All records of one section.
    pub fn section<'a>(&'a self, section: &'a str) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| r.section == section)
    }

    /// Serialises to a compact JSON document.
    pub fn to_json(&self) -> String {
        let config = JsonValue::Object(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        );
        let records = JsonValue::Array(
            self.records
                .iter()
                .map(|r| {
                    JsonValue::Object(vec![
                        ("section".to_string(), JsonValue::Str(r.section.clone())),
                        ("span".to_string(), JsonValue::Str(r.span.clone())),
                        (
                            "fields".to_string(),
                            JsonValue::Object(
                                r.fields
                                    .iter()
                                    .map(|(k, v)| (k.clone(), field_to_json(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                .collect(),
        );
        let hists = JsonValue::Object(
            self.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        JsonValue::Object(vec![
                            ("count".to_string(), JsonValue::UInt(h.count)),
                            ("sum".to_string(), JsonValue::UInt(h.sum)),
                            ("min".to_string(), JsonValue::UInt(h.min)),
                            ("max".to_string(), JsonValue::UInt(h.max)),
                            (
                                "buckets".to_string(),
                                JsonValue::Array(
                                    h.buckets.iter().map(|&b| JsonValue::UInt(b)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let volatile = JsonValue::Object(
            self.volatile
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                .collect(),
        );
        JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::Str(MANIFEST_SCHEMA.to_string()),
            ),
            ("config".to_string(), config),
            ("records".to_string(), records),
            ("counters".to_string(), counters),
            ("hists".to_string(), hists),
            ("volatile".to_string(), volatile),
        ])
        .to_compact()
    }

    /// Parses a manifest back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a wrong/missing schema
    /// identifier.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = parse(text)?;
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        if doc.get("schema").and_then(JsonValue::as_str) != Some(MANIFEST_SCHEMA) {
            return Err(bad("missing or unsupported manifest schema"));
        }
        let mut out = RunManifest::new();
        if let Some(config) = doc.get("config").and_then(JsonValue::as_object) {
            for (k, v) in config {
                let v = v
                    .as_str()
                    .ok_or_else(|| bad("config values must be strings"))?;
                out.config.push((k.clone(), v.to_string()));
            }
        }
        if let Some(records) = doc.get("records").and_then(JsonValue::as_array) {
            for r in records {
                let section = r
                    .get("section")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("record missing section"))?;
                let span = r
                    .get("span")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("record missing span"))?;
                let mut fields = Vec::new();
                if let Some(map) = r.get("fields").and_then(JsonValue::as_object) {
                    for (k, v) in map {
                        fields.push((
                            k.clone(),
                            field_from_json(v)
                                .ok_or_else(|| bad("unsupported field value in record"))?,
                        ));
                    }
                }
                out.records.push(Record {
                    section: section.to_string(),
                    span: span.to_string(),
                    fields,
                });
            }
        }
        if let Some(counters) = doc.get("counters").and_then(JsonValue::as_object) {
            for (k, v) in counters {
                let v = v
                    .as_u64()
                    .ok_or_else(|| bad("counter values must be u64"))?;
                out.counters.insert(k.clone(), v);
            }
        }
        if let Some(hists) = doc.get("hists").and_then(JsonValue::as_object) {
            for (k, v) in hists {
                out.hists.insert(
                    k.clone(),
                    hist_from_json(v).ok_or_else(|| bad("malformed histogram"))?,
                );
            }
        }
        if let Some(volatile) = doc.get("volatile").and_then(JsonValue::as_object) {
            for (k, v) in volatile {
                let v = v
                    .as_u64()
                    .ok_or_else(|| bad("volatile values must be u64"))?;
                out.volatile.insert(k.clone(), v);
            }
        }
        Ok(out)
    }
}

fn field_to_json(v: &FieldValue) -> JsonValue {
    match v {
        FieldValue::U64(x) => JsonValue::UInt(*x),
        FieldValue::I64(x) => JsonValue::Int(*x),
        FieldValue::F64(x) => JsonValue::Float(*x),
        FieldValue::Str(s) => JsonValue::Str(s.clone()),
        FieldValue::Bool(b) => JsonValue::Bool(*b),
    }
}

fn field_from_json(v: &JsonValue) -> Option<FieldValue> {
    match v {
        JsonValue::UInt(x) => Some(FieldValue::U64(*x)),
        JsonValue::Int(x) => Some(FieldValue::I64(*x)),
        JsonValue::Float(x) => Some(FieldValue::F64(*x)),
        JsonValue::Str(s) => Some(FieldValue::Str(s.clone())),
        JsonValue::Bool(b) => Some(FieldValue::Bool(*b)),
        // A non-finite float was serialised as null; surface it as NaN so
        // the record keeps its field rather than failing the parse.
        JsonValue::Null => Some(FieldValue::F64(f64::NAN)),
        _ => None,
    }
}

fn hist_from_json(v: &JsonValue) -> Option<HistSnapshot> {
    let mut h = HistSnapshot::new();
    h.count = v.get("count")?.as_u64()?;
    h.sum = v.get("sum")?.as_u64()?;
    h.min = v.get("min")?.as_u64()?;
    h.max = v.get("max")?.as_u64()?;
    let buckets = v.get("buckets")?.as_array()?;
    if buckets.len() != NUM_BUCKETS {
        return None;
    }
    for (slot, b) in h.buckets.iter_mut().zip(buckets) {
        *slot = b.as_u64()?;
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    fn sample_manifest() -> RunManifest {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let root = rec.root("select");
        root.event(
            "model_chosen",
            &[
                ("model", FieldValue::Str("M0+s1".into())),
                ("ic", FieldValue::F64(1234.5)),
                ("k", FieldValue::U64(3)),
            ],
        );
        root.event("skipped", &[]);
        root.child_idx("candidate", 0).error(
            "fit_failed",
            &[("error", FieldValue::Str("singular".into()))],
        );
        rec.add("fits", 7);
        rec.observe("glm.iterations", 12);
        rec.volatile_add("wall_us", 98_765);

        let log = rec.flush();
        let mut m = RunManifest::new();
        m.set_config("denominator", "16384");
        m.set_config("seed", "7");
        m.ingest_metrics(&log);
        m.ingest_events(&log, &["model_chosen"]);
        m
    }

    #[test]
    fn ingests_selected_events_and_all_errors() {
        let m = sample_manifest();
        assert_eq!(m.section("model_chosen").count(), 1);
        assert_eq!(m.section("fit_failed").count(), 1); // error auto-ingested
        assert_eq!(m.section("skipped").count(), 0); // not selected
        let chosen = m.section("model_chosen").next().expect("present");
        assert_eq!(chosen.str("model"), Some("M0+s1"));
        assert_eq!(chosen.f64("ic"), Some(1234.5));
        assert_eq!(chosen.f64("k"), Some(3.0));
    }

    #[test]
    fn degradations_and_faults_are_auto_ingested() {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let span = rec.root("estimate").child_idx("stratum", 1);
        span.degradation(
            "degradation",
            &[
                ("to", FieldValue::Str("chao".into())),
                ("reason", FieldValue::Str("Newton budget exhausted".into())),
            ],
        );
        rec.root("faultinject").fault_injected(
            "fault_injected",
            &[("site", FieldValue::Str("glm.fit".into()))],
        );
        let log = rec.flush();
        let mut m = RunManifest::new();
        m.ingest_events(&log, &[]); // no names selected — still ingested
        let degraded: Vec<_> = m.section("degraded").collect();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].str("to"), Some("chao"));
        assert_eq!(degraded[0].span, "estimate/stratum[1]");
        assert_eq!(m.section("fault_injected").count(), 1);
    }

    #[test]
    fn stage_table_lands_in_records_and_volatile() {
        use crate::profile::StageProfiler;
        let p = StageProfiler::enabled(Arc::new(LogicalClock::new()));
        drop(p.enter("parse"));
        let est = p.scoped("estimate");
        drop(est.enter("fit"));
        drop(est.enter("fit"));
        let mut m = RunManifest::new();
        m.ingest_stage_table(&p.table());
        let rows: Vec<_> = m.section("stage_profile").collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].span, "estimate/fit");
        assert_eq!(rows[0].f64("calls"), Some(2.0));
        assert!(m.volatile.contains_key("stage.estimate/fit.us"));
        assert!(m.volatile.contains_key("stage.parse.us"));
        // The stage table round-trips through JSON like any other section.
        let back = RunManifest::from_json(&m.to_json()).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample_manifest();
        let text = m.to_json();
        let back = RunManifest::from_json(&text).expect("parses");
        assert_eq!(back, m);
        // And the re-serialisation is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn set_config_overwrites_in_place() {
        let mut m = RunManifest::new();
        m.set_config("a", "1");
        m.set_config("b", "2");
        m.set_config("a", "3");
        assert_eq!(
            m.config,
            vec![("a".into(), "3".into()), ("b".into(), "2".into())]
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(RunManifest::from_json("{\"schema\":\"other/9\"}").is_err());
        assert!(RunManifest::from_json("not json").is_err());
    }
}
