//! The hierarchical stage profiler: wall-time attribution across
//! parse → cache → fit → select → render.
//!
//! A [`StageProfiler`] is a cheap cloneable handle (the
//! [`Recorder`](crate::Recorder) `Option<Arc>` pattern): disabled by
//! default, free when off. Enabled, it maps hierarchical stage paths
//! (`serve/parse`, `estimate/fit`, …) to a pair of atomic accumulators —
//! a deterministic call count and a clock-delta total. Hierarchy comes
//! from [`scoped`](StageProfiler::scoped) prefixes: the serve layer hands
//! `profiler.scoped("estimate")` into the estimator, which then enters
//! plain `"fit"` / `"select"` stages without knowing where it sits.
//!
//! The two-lane discipline holds by construction: **call counts are
//! deterministic** (the same input enters the same stages the same number
//! of times at any thread count), while the **duration totals follow the
//! driving [`Clock`]** — wall microseconds in binaries, logical ticks in
//! tests — and are only ever published through volatile surfaces (the
//! [`RunManifest`](crate::RunManifest) volatile lane, the `/v1/profile`
//! ops endpoint). The aggregated [`StageTable`] sorts rows by path, so
//! rendering is order-independent.

use crate::clock::Clock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

#[derive(Default)]
struct StageCell {
    calls: AtomicU64,
    total: AtomicU64,
}

struct ProfInner {
    clock: Arc<dyn Clock>,
    stages: RwLock<BTreeMap<String, Arc<StageCell>>>,
}

/// The cheap, cloneable profiler handle instrumented code carries.
#[derive(Clone, Default)]
pub struct StageProfiler {
    inner: Option<Arc<ProfInner>>,
    prefix: String,
}

impl std::fmt::Debug for StageProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageProfiler")
            .field("enabled", &self.inner.is_some())
            .field("prefix", &self.prefix)
            .finish()
    }
}

impl StageProfiler {
    /// A profiler that records nothing (the default for config structs).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording profiler driven by `clock`. Binaries pass a
    /// [`WallClock`](crate::WallClock); tests pass a
    /// [`LogicalClock`](crate::LogicalClock) so durations are
    /// deterministic ticks.
    pub fn enabled(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(ProfInner {
                clock,
                stages: RwLock::new(BTreeMap::new()),
            })),
            prefix: String::new(),
        }
    }

    /// Whether this profiler actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle that prefixes every stage with `prefix/` — how hierarchy
    /// is expressed across layer boundaries.
    pub fn scoped(&self, prefix: &str) -> StageProfiler {
        if self.inner.is_none() {
            return StageProfiler::default();
        }
        StageProfiler {
            inner: self.inner.clone(),
            prefix: self.join(prefix),
        }
    }

    fn join(&self, stage: &str) -> String {
        if self.prefix.is_empty() {
            stage.to_string()
        } else {
            format!("{}/{}", self.prefix, stage)
        }
    }

    /// Enters a stage; the returned guard attributes the clock delta (and
    /// one call) to `prefix/stage` when dropped.
    pub fn enter(&self, stage: &str) -> StageGuard {
        let Some(inner) = &self.inner else {
            return StageGuard::default();
        };
        let path = self.join(stage);
        let cell = {
            let stages = inner.stages.read().unwrap_or_else(PoisonError::into_inner);
            stages.get(&path).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            let mut stages = inner.stages.write().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(stages.entry(path).or_default())
        });
        StageGuard {
            cell: Some(cell),
            clock: Some(Arc::clone(&inner.clock)),
            start: inner.clock.now(),
        }
    }

    /// The aggregated table (non-mutating; rows sorted by path).
    pub fn table(&self) -> StageTable {
        let Some(inner) = &self.inner else {
            return StageTable::default();
        };
        let stages = inner.stages.read().unwrap_or_else(PoisonError::into_inner);
        StageTable {
            clock_is_wall: inner.clock.is_wall(),
            rows: stages
                .iter()
                .map(|(path, cell)| StageRow {
                    path: path.clone(),
                    calls: cell.calls.load(Ordering::Relaxed),
                    total_us: cell.total.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// An open stage: dropping it attributes the elapsed clock delta.
#[derive(Default)]
pub struct StageGuard {
    cell: Option<Arc<StageCell>>,
    clock: Option<Arc<dyn Clock>>,
    start: u64,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let (Some(cell), Some(clock)) = (&self.cell, &self.clock) {
            let elapsed = clock.now().saturating_sub(self.start);
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.total.fetch_add(elapsed, Ordering::Relaxed);
        }
    }
}

/// One aggregated stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Hierarchical stage path (`serve/parse`, `estimate/fit`, …).
    pub path: String,
    /// Times the stage was entered — deterministic.
    pub calls: u64,
    /// Total clock delta spent inside — wall microseconds under a wall
    /// clock, logical ticks under a logical clock. Volatile lane only.
    pub total_us: u64,
}

/// The aggregated stage table, rows sorted by path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTable {
    /// Whether durations are wall microseconds (`true`) or logical ticks.
    pub clock_is_wall: bool,
    /// Rows in path order.
    pub rows: Vec<StageRow>,
}

impl StageTable {
    /// Whether the table has any rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A fixed-width human rendering (for `repro --profile` output).
    pub fn render_text(&self) -> String {
        let unit = if self.clock_is_wall {
            "wall_us"
        } else {
            "ticks"
        };
        let mut out = format!("{:<40} {:>10} {:>14}\n", "stage", "calls", unit);
        for row in &self.rows {
            out.push_str(&format!(
                "{:<40} {:>10} {:>14}\n",
                row.path, row.calls, row.total_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;

    #[test]
    fn disabled_profiler_is_free() {
        let p = StageProfiler::disabled();
        assert!(!p.is_enabled());
        drop(p.enter("x"));
        assert!(p.table().is_empty());
        assert!(!p.scoped("y").is_enabled());
    }

    #[test]
    fn scoped_prefixes_build_hierarchy() {
        let p = StageProfiler::enabled(Arc::new(LogicalClock::new()));
        drop(p.enter("parse"));
        let est = p.scoped("estimate");
        drop(est.enter("fit"));
        drop(est.enter("fit"));
        drop(est.enter("select"));
        let table = p.table();
        let rows: Vec<(&str, u64)> = table
            .rows
            .iter()
            .map(|r| (r.path.as_str(), r.calls))
            .collect();
        assert_eq!(
            rows,
            [("estimate/fit", 2), ("estimate/select", 1), ("parse", 1)],
            "rows sort by path, calls count entries"
        );
        assert!(!table.clock_is_wall);
    }

    #[test]
    fn call_counts_are_thread_count_independent() {
        fn calls(threads: usize) -> Vec<(String, u64)> {
            let p = StageProfiler::enabled(Arc::new(LogicalClock::new()));
            std::thread::scope(|s| {
                for t in 0..threads {
                    let p = p.clone();
                    s.spawn(move || {
                        let mut i = t;
                        while i < 24 {
                            drop(p.enter("fit"));
                            i += threads;
                        }
                    });
                }
            });
            p.table()
                .rows
                .into_iter()
                .map(|r| (r.path, r.calls))
                .collect()
        }
        assert_eq!(calls(1), calls(4));
    }

    #[test]
    fn durations_follow_the_logical_clock() {
        let p = StageProfiler::enabled(Arc::new(LogicalClock::new()));
        {
            let _g = p.enter("stage");
            // Each enter reads the clock once at start and once at drop;
            // with nothing in between the delta is exactly one tick.
        }
        let table = p.table();
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].total_us, 1);
    }

    #[test]
    fn render_text_lists_every_row() {
        let p = StageProfiler::enabled(Arc::new(LogicalClock::new()));
        drop(p.enter("a"));
        drop(p.scoped("a").enter("b"));
        let text = p.table().render_text();
        assert!(text.contains("a/b"));
        assert!(text.contains("ticks"));
    }
}
