//! The [`Recorder`]: spans, events, counters, histograms and the volatile
//! lane, behind a handle that is free when tracing is disabled.
//!
//! ## Determinism model
//!
//! The deterministic lane (events, counters, histograms) must serialise to
//! byte-identical JSONL regardless of thread count. Three mechanisms
//! guarantee that:
//!
//! * **Span identity is structural.** A [`SpanPath`] is the chain of
//!   `(name, optional index)` segments from the root — e.g.
//!   `select/round[2]/candidate[5]` — so the "same" piece of work computes
//!   the same path no matter which worker runs it.
//! * **One logical task owns a span.** Events within a span are appended in
//!   program order by that task; cross-span order is imposed at flush time
//!   by sorting paths, not by arrival time.
//! * **Metrics are commutative.** Counters add, histograms merge; the final
//!   value is a function of the multiset of updates.
//!
//! Anything that is *not* a pure function of the input — wall durations,
//! worker counts, queue statistics — must go through the volatile lane
//! ([`Recorder::volatile_add`] / [`Recorder::volatile_max`]), which is
//! reported only in the [`RunManifest`](crate::RunManifest), never in the
//! JSONL trace.

use crate::clock::Clock;
use crate::hist::HistSnapshot;
use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of sink shards; a small power of two keeps contention low without
/// bloating the flush merge.
const SHARDS: usize = 16;

/// A single field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A non-negative integer (counts, indices, iterations).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (log-likelihoods, IC values, estimates).
    F64(f64),
    /// A string (term names, model descriptions, error messages).
    Str(String),
    /// A boolean (convergence flags).
    Bool(bool),
}

impl FieldValue {
    fn to_json(&self) -> JsonValue {
        match self {
            FieldValue::U64(v) => JsonValue::UInt(*v),
            FieldValue::I64(v) => JsonValue::Int(*v),
            FieldValue::F64(v) => JsonValue::Float(*v),
            FieldValue::Str(s) => JsonValue::Str(s.clone()),
            FieldValue::Bool(b) => JsonValue::Bool(*b),
        }
    }
}

/// Whether a record is an ordinary event, an error, or one of the
/// robustness kinds introduced by `ghosts-events/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A normal trace event.
    Event,
    /// An error event (estimation failure, degenerate input, …). The
    /// `repro` binary exits non-zero when the flushed log contains any.
    Error,
    /// A graceful-degradation step: a preferred estimator failed and a
    /// ladder fallback was attempted (DESIGN.md §11). The `repro` binary
    /// exits with the distinct partial-results code when the flushed log
    /// contains any.
    Degradation,
    /// A fault-plan rule fired at an injection site (`repro --fault-plan`).
    FaultInjected,
    /// A reliability-engine result (bootstrap summary, coverage point,
    /// CV cell outcome), introduced by `ghosts-events/3`. Manifest
    /// ingestion groups these under a dedicated `reliability` section.
    Reliability,
}

/// The structural identity of a span: `(name, optional index)` segments
/// from the root. Renders as `select/round[2]/candidate[5]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanPath(Vec<(String, Option<u64>)>);

impl SpanPath {
    /// The root-level path with a single unindexed segment.
    pub fn root(name: &str) -> Self {
        Self(vec![(name.to_string(), None)])
    }

    /// This path extended by an unindexed segment.
    pub fn child(&self, name: &str) -> Self {
        let mut segs = self.0.clone();
        segs.push((name.to_string(), None));
        Self(segs)
    }

    /// This path extended by an indexed segment (`name[index]`).
    pub fn child_idx(&self, name: &str, index: u64) -> Self {
        let mut segs = self.0.clone();
        segs.push((name.to_string(), Some(index)));
        Self(segs)
    }

    /// The `a/b[3]/c` rendering used in the JSONL trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (name, idx)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(name);
            if let Some(idx) = idx {
                out.push('[');
                out.push_str(&idx.to_string());
                out.push(']');
            }
        }
        out
    }

    fn shard(&self) -> usize {
        // FNV-1a over the segments; only used to spread lock contention, so
        // it merely has to be deterministic, not strong.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (name, idx) in &self.0 {
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let tag = idx.map_or(u64::MAX, |i| i);
            h = (h ^ tag).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    }
}

impl std::fmt::Display for SpanPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// One recorded event, as it appears in a flushed [`EventLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event or error.
    pub kind: EventKind,
    /// Position within the owning span (program order).
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// A raw event as stored in the sink before flush assigns `seq`.
type PendingEvent = (EventKind, String, Vec<(String, FieldValue)>);

#[derive(Default)]
struct Shard {
    spans: BTreeMap<SpanPath, Vec<PendingEvent>>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistSnapshot>,
}

struct Inner {
    clock: Arc<dyn Clock>,
    shards: Vec<Mutex<Shard>>,
    volatile: Mutex<BTreeMap<String, u64>>,
}

/// Locks a mutex, recovering the guard from a poisoned lock (a panicking
/// instrumented task must not cascade into the recorder).
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The cheap, cloneable handle instrumented code carries.
///
/// The disabled recorder (the [`Default`]) holds no allocation and every
/// method is a branch on an `Option` — suitable for hot paths.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Recorder {
    /// A no-op recorder; all operations are free.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording recorder driven by `clock`.
    ///
    /// Library code should receive a
    /// [`LogicalClock`](crate::LogicalClock)-driven recorder; binaries may
    /// use a [`WallClock`](crate::WallClock) — its readings stay in the
    /// volatile lane either way.
    pub fn enabled(clock: Arc<dyn Clock>) -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                shards,
                volatile: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span scope.
    pub fn root(&self, name: &str) -> Scope {
        Scope {
            inner: self.inner.clone(),
            path: SpanPath::root(name),
        }
    }

    /// Adds `delta` to a deterministic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let shard = name_shard(name);
            let mut guard = lock_or_recover(&inner.shards[shard]);
            *guard.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Records one observation into a deterministic histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let shard = name_shard(name);
            let mut guard = lock_or_recover(&inner.shards[shard]);
            guard
                .hists
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// Reads the recorder's clock (0 when disabled). With a wall clock this
    /// is microseconds since start; with a logical clock, an event tick.
    /// Readings must only feed the volatile lane.
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now())
    }

    /// Whether the clock is wall time (false when disabled).
    pub fn clock_is_wall(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.clock.is_wall())
    }

    /// Adds to a volatile (manifest-only) gauge — wall durations, task
    /// counts, anything thread-count dependent.
    pub fn volatile_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut guard = lock_or_recover(&inner.volatile);
            *guard.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Raises a volatile gauge to at least `value`.
    pub fn volatile_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut guard = lock_or_recover(&inner.volatile);
            let slot = guard.entry(name.to_string()).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Records the clock delta since `start` into the volatile lane, under
    /// `name`. Use with [`now`](Self::now):
    /// `let t = rec.now(); …; rec.elapsed_volatile("stage_us", t);`
    pub fn elapsed_volatile(&self, name: &str, start: u64) {
        if self.inner.is_some() {
            let end = self.now();
            self.volatile_add(name, end.saturating_sub(start));
        }
    }

    /// Drains everything recorded so far into a deterministic [`EventLog`].
    ///
    /// Spans are merged across shards in path order and `seq` numbers are
    /// assigned from each span's program-order vector, so the result is
    /// identical at every thread count. The recorder is empty afterwards
    /// and may keep recording.
    pub fn flush(&self) -> EventLog {
        let Some(inner) = &self.inner else {
            return EventLog::default();
        };
        let mut spans: BTreeMap<SpanPath, Vec<PendingEvent>> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistSnapshot> = BTreeMap::new();
        for shard in &inner.shards {
            let mut guard = lock_or_recover(shard);
            for (path, events) in std::mem::take(&mut guard.spans) {
                spans.entry(path).or_default().extend(events);
            }
            for (name, v) in std::mem::take(&mut guard.counters) {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, h) in std::mem::take(&mut guard.hists) {
                hists.entry(name).or_default().merge(&h);
            }
        }
        let spans = spans
            .into_iter()
            .map(|(path, events)| {
                let records = events
                    .into_iter()
                    .enumerate()
                    .map(|(seq, (kind, name, fields))| EventRecord {
                        kind,
                        seq: seq as u64,
                        name,
                        fields,
                    })
                    .collect();
                (path, records)
            })
            .collect();
        let volatile = std::mem::take(&mut *lock_or_recover(&inner.volatile));
        EventLog {
            clock_is_wall: inner.clock.is_wall(),
            spans,
            counters,
            hists,
            volatile,
        }
    }
}

/// Shard index for metric names (span events shard by path instead).
fn name_shard(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// A handle to one span: events recorded through it land under this span's
/// path, in call order.
///
/// `Scope` is cheap to clone and `Send`; hand an indexed child
/// (`scope.child_idx("stratum", i)`) to each parallel task so every task
/// owns a distinct span.
#[derive(Clone, Default)]
pub struct Scope {
    inner: Option<Arc<Inner>>,
    path: SpanPath,
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("enabled", &self.inner.is_some())
            .field("path", &self.path.render())
            .finish()
    }
}

impl Scope {
    /// A scope that records nothing (for defaults in config structs).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether events recorded here are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This scope's span path.
    pub fn path(&self) -> &SpanPath {
        &self.path
    }

    /// A child scope with an unindexed segment.
    pub fn child(&self, name: &str) -> Scope {
        if self.inner.is_none() {
            return Scope::default();
        }
        Scope {
            inner: self.inner.clone(),
            path: self.path.child(name),
        }
    }

    /// A child scope with an indexed segment — use the *logical* index
    /// (stratum number, window id, candidate position), never a
    /// thread-dependent one.
    pub fn child_idx(&self, name: &str, index: u64) -> Scope {
        if self.inner.is_none() {
            return Scope::default();
        }
        Scope {
            inner: self.inner.clone(),
            path: self.path.child_idx(name, index),
        }
    }

    /// Adds `delta` to a deterministic counter (counters are global names,
    /// not span-scoped — same as [`Recorder::add`]).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let shard = name_shard(name);
            let mut guard = lock_or_recover(&inner.shards[shard]);
            *guard.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Records one observation into a deterministic histogram (same as
    /// [`Recorder::observe`]).
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let shard = name_shard(name);
            let mut guard = lock_or_recover(&inner.shards[shard]);
            guard
                .hists
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// Adds to a volatile (manifest-only) gauge (same as
    /// [`Recorder::volatile_add`]).
    pub fn volatile_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut guard = lock_or_recover(&inner.volatile);
            *guard.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Raises a volatile gauge to at least `value` (same as
    /// [`Recorder::volatile_max`]).
    pub fn volatile_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut guard = lock_or_recover(&inner.volatile);
            let slot = guard.entry(name.to_string()).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Records an event under this span.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.record(EventKind::Event, name, fields);
    }

    /// Records an error event under this span.
    pub fn error(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.record(EventKind::Error, name, fields);
    }

    /// Records a graceful-degradation step under this span.
    pub fn degradation(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.record(EventKind::Degradation, name, fields);
    }

    /// Records a fired fault-injection rule under this span.
    pub fn fault_injected(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.record(EventKind::FaultInjected, name, fields);
    }

    /// Records a reliability-engine result under this span (bootstrap
    /// summaries, coverage points, CV cell outcomes).
    pub fn reliability(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.record(EventKind::Reliability, name, fields);
    }

    fn record(&self, kind: EventKind, name: &str, fields: &[(&str, FieldValue)]) {
        if let Some(inner) = &self.inner {
            let owned: Vec<(String, FieldValue)> = fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect();
            let shard = self.path.shard();
            let mut guard = lock_or_recover(&inner.shards[shard]);
            guard
                .spans
                .entry(self.path.clone())
                .or_default()
                .push((kind, name.to_string(), owned));
        }
    }
}

/// Everything a recorder captured, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// Whether the driving clock was wall time.
    pub clock_is_wall: bool,
    /// Spans in path order, each with its events in program order.
    pub spans: Vec<(SpanPath, Vec<EventRecord>)>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final histogram snapshots.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// The volatile lane (manifest only — never serialised to JSONL).
    pub volatile: BTreeMap<String, u64>,
}

/// Schema identifier written on the JSONL meta line. Version 4 adds the
/// telemetry-plane event *names* (`stage_profile`, `tail_retention`) without
/// new line kinds; version 3 added the `reliability` kind; version 2 added
/// `degradation` and `fault_injected`. Everything else is unchanged from
/// version 1, and the validator still accepts v1–v3 traces (see
/// [`crate::schema`]).
pub const JSONL_SCHEMA: &str = "ghosts-events/4";

/// The version-3 schema identifier, still accepted by the validator for
/// traces written before the telemetry-plane names existed.
pub const JSONL_SCHEMA_V3: &str = "ghosts-events/3";

/// The version-2 schema identifier, still accepted by the validator for
/// traces written before the reliability kind existed.
pub const JSONL_SCHEMA_V2: &str = "ghosts-events/2";

/// The original schema identifier, still accepted by the validator for
/// traces written before the robustness kinds existed.
pub const JSONL_SCHEMA_V1: &str = "ghosts-events/1";

impl EventLog {
    /// Total number of [`EventKind::Error`] records.
    pub fn error_count(&self) -> usize {
        self.count_kind(EventKind::Error)
    }

    /// Total number of [`EventKind::Degradation`] records.
    pub fn degradation_count(&self) -> usize {
        self.count_kind(EventKind::Degradation)
    }

    /// Total number of [`EventKind::FaultInjected`] records.
    pub fn fault_injected_count(&self) -> usize {
        self.count_kind(EventKind::FaultInjected)
    }

    /// Total number of [`EventKind::Reliability`] records.
    pub fn reliability_count(&self) -> usize {
        self.count_kind(EventKind::Reliability)
    }

    fn count_kind(&self, kind: EventKind) -> usize {
        self.spans
            .iter()
            .flat_map(|(_, events)| events.iter())
            .filter(|e| e.kind == kind)
            .count()
    }

    /// All events of a given name, with their span paths.
    pub fn events_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a SpanPath, &'a EventRecord)> {
        self.spans
            .iter()
            .flat_map(|(path, events)| events.iter().map(move |e| (path, e)))
            .filter(move |(_, e)| e.name == name)
    }

    /// Folds another log into this one, preserving every invariant the
    /// serialisers rely on: spans stay sorted by path, events within a
    /// span stay in arrival order with contiguous `seq`, counters and
    /// volatile values add, histograms merge. This is what lets a
    /// long-lived process (the estimation server) accumulate per-request
    /// recorder flushes — [`Recorder::flush`] drains — into one
    /// cumulative log for `/metrics` and the run manifest.
    pub fn merge(&mut self, other: &EventLog) {
        self.clock_is_wall |= other.clock_is_wall;
        for (path, events) in &other.spans {
            let idx = match self.spans.binary_search_by(|(p, _)| p.cmp(path)) {
                Ok(i) => i,
                Err(i) => {
                    self.spans.insert(i, (path.clone(), Vec::new()));
                    i
                }
            };
            let dst = &mut self.spans[idx].1; // lint: allow(panic-path) idx from binary_search or the insert above
            let base = dst.len() as u64;
            dst.extend(events.iter().enumerate().map(|(off, e)| EventRecord {
                seq: base + off as u64,
                ..e.clone()
            }));
        }
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(hist);
        }
        for (name, value) in &other.volatile {
            *self.volatile.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Serialises the deterministic lane as JSONL: one meta line, then
    /// events in (span path, seq) order, then counters, then histograms —
    /// all in lexicographic name order. The volatile lane is deliberately
    /// absent. Ends with a trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let meta = JsonValue::Object(vec![
            ("kind".to_string(), JsonValue::Str("meta".to_string())),
            (
                "schema".to_string(),
                JsonValue::Str(JSONL_SCHEMA.to_string()),
            ),
            (
                "clock".to_string(),
                JsonValue::Str(
                    if self.clock_is_wall {
                        "wall"
                    } else {
                        "logical"
                    }
                    .to_string(),
                ),
            ),
        ]);
        out.push_str(&meta.to_compact());
        out.push('\n');
        for (path, events) in &self.spans {
            for e in events {
                let kind = match e.kind {
                    EventKind::Event => "event",
                    EventKind::Error => "error",
                    EventKind::Degradation => "degradation",
                    EventKind::FaultInjected => "fault_injected",
                    EventKind::Reliability => "reliability",
                };
                let fields = JsonValue::Object(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                );
                let line = JsonValue::Object(vec![
                    ("kind".to_string(), JsonValue::Str(kind.to_string())),
                    ("span".to_string(), JsonValue::Str(path.render())),
                    ("seq".to_string(), JsonValue::UInt(e.seq)),
                    ("name".to_string(), JsonValue::Str(e.name.clone())),
                    ("fields".to_string(), fields),
                ]);
                out.push_str(&line.to_compact());
                out.push('\n');
            }
        }
        for (name, value) in &self.counters {
            let line = JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::Str("counter".to_string())),
                ("name".to_string(), JsonValue::Str(name.clone())),
                ("value".to_string(), JsonValue::UInt(*value)),
            ]);
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        for (name, h) in &self.hists {
            let buckets = JsonValue::Array(h.buckets.iter().map(|&b| JsonValue::UInt(b)).collect());
            let line = JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::Str("hist".to_string())),
                ("name".to_string(), JsonValue::Str(name.clone())),
                ("count".to_string(), JsonValue::UInt(h.count)),
                ("sum".to_string(), JsonValue::UInt(h.sum)),
                ("min".to_string(), JsonValue::UInt(h.min)),
                ("max".to_string(), JsonValue::UInt(h.max)),
                ("buckets".to_string(), buckets),
            ]);
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;

    fn enabled() -> Recorder {
        Recorder::enabled(Arc::new(LogicalClock::new()))
    }

    #[test]
    fn disabled_recorder_is_free_and_empty() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let span = rec.root("x");
        assert!(!span.is_enabled());
        span.event("e", &[("a", FieldValue::U64(1))]);
        rec.add("c", 5);
        rec.observe("h", 3);
        rec.volatile_add("v", 1);
        assert_eq!(rec.now(), 0);
        let log = rec.flush();
        assert_eq!(log, EventLog::default());
    }

    #[test]
    fn merge_accumulates_flushes_preserving_invariants() {
        let rec = enabled();
        rec.root("serve").event("req", &[("i", FieldValue::U64(0))]);
        rec.add("hits", 1);
        rec.observe("lat", 8);
        rec.volatile_add("wall_us", 100);
        let mut total = rec.flush();

        rec.root("serve").event("req", &[("i", FieldValue::U64(1))]);
        rec.root("cache").event("evict", &[]);
        rec.add("hits", 2);
        rec.observe("lat", 32);
        rec.volatile_add("wall_us", 50);
        total.merge(&rec.flush());

        // Spans stay path-sorted; the shared span's events renumber
        // contiguously; the new span slots in.
        let paths: Vec<String> = total.spans.iter().map(|(p, _)| p.render()).collect();
        assert_eq!(paths, ["cache", "serve"]);
        let serve = &total.spans[1].1;
        assert_eq!(serve.len(), 2);
        assert_eq!(
            serve.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [0, 1],
            "merged seq must stay contiguous"
        );
        assert_eq!(total.counters["hits"], 3);
        let lat = &total.hists["lat"];
        assert_eq!((lat.count, lat.sum, lat.min, lat.max), (2, 40, 8, 32));
        assert_eq!(total.volatile["wall_us"], 150);
        assert!(!total.clock_is_wall);

        // Merging an empty log is the identity.
        let before = total.clone();
        total.merge(&EventLog::default());
        assert_eq!(total, before);
    }

    #[test]
    fn events_keep_program_order_within_a_span() {
        let rec = enabled();
        let span = rec.root("fit");
        span.event("start", &[]);
        span.event("iter", &[("n", FieldValue::U64(1))]);
        span.event("done", &[("ok", FieldValue::Bool(true))]);
        let log = rec.flush();
        assert_eq!(log.spans.len(), 1);
        let (path, events) = &log.spans[0];
        assert_eq!(path.render(), "fit");
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["start", "iter", "done"]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn spans_sort_by_path_not_arrival() {
        let rec = enabled();
        // Record in "wrong" order.
        rec.root("z").event("late", &[]);
        rec.root("a").child_idx("s", 2).event("mid", &[]);
        rec.root("a").child_idx("s", 1).event("early", &[]);
        let log = rec.flush();
        let paths: Vec<String> = log.spans.iter().map(|(p, _)| p.render()).collect();
        assert_eq!(paths, ["a/s[1]", "a/s[2]", "z"]);
    }

    #[test]
    fn counters_and_hists_merge_commutatively() {
        let rec = enabled();
        rec.add("fits", 2);
        rec.add("fits", 3);
        rec.observe("iters", 4);
        rec.observe("iters", 9);
        let log = rec.flush();
        assert_eq!(log.counters.get("fits"), Some(&5));
        let h = log.hists.get("iters").expect("hist present");
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 13, 4, 9));
    }

    #[test]
    fn volatile_lane_never_reaches_jsonl() {
        let rec = enabled();
        rec.volatile_add("wall_us", 123_456);
        rec.volatile_max("threads", 8);
        rec.root("s").event("e", &[]);
        let log = rec.flush();
        assert_eq!(log.volatile.get("wall_us"), Some(&123_456));
        assert_eq!(log.volatile.get("threads"), Some(&8));
        let jsonl = log.to_jsonl();
        assert!(!jsonl.contains("wall_us"));
        assert!(!jsonl.contains("threads"));
        assert!(jsonl.contains("\"span\":\"s\""));
    }

    #[test]
    fn concurrent_recording_is_deterministic() {
        // Same logical work on 1 thread vs 4 threads → identical JSONL.
        fn run(threads: usize) -> String {
            let rec = enabled();
            let root = rec.root("strata");
            let work = |i: u64, scope: &Scope, rec: &Recorder| {
                let span = scope.child_idx("stratum", i);
                span.event("fit", &[("iters", FieldValue::U64(i + 3))]);
                span.event("estimate", &[("total", FieldValue::F64(i as f64 * 1.5))]);
                rec.add("fits", 1);
                rec.observe("iters", i + 3);
                rec.volatile_add("tasks", 1);
            };
            if threads <= 1 {
                for i in 0..32 {
                    work(i, &root, &rec);
                }
            } else {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let rec = rec.clone();
                        let root = root.clone();
                        s.spawn(move || {
                            let mut i = t as u64;
                            while i < 32 {
                                work(i, &root, &rec);
                                i += threads as u64;
                            }
                        });
                    }
                });
            }
            rec.flush().to_jsonl()
        }
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par);
    }

    #[test]
    fn error_events_are_counted() {
        let rec = enabled();
        let span = rec.root("w");
        span.event("ok", &[]);
        span.error("boom", &[("why", FieldValue::Str("singular".into()))]);
        let log = rec.flush();
        assert_eq!(log.error_count(), 1);
        assert!(log.to_jsonl().contains("\"kind\":\"error\""));
    }

    #[test]
    fn degradation_and_fault_kinds_are_counted_and_serialised() {
        let rec = enabled();
        let span = rec.root("estimate");
        span.degradation(
            "degradation",
            &[("to", FieldValue::Str("independence".into()))],
        );
        span.fault_injected(
            "fault_injected",
            &[("site", FieldValue::Str("glm.fit".into()))],
        );
        let log = rec.flush();
        assert_eq!(log.degradation_count(), 1);
        assert_eq!(log.fault_injected_count(), 1);
        assert_eq!(log.error_count(), 0);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"degradation\""));
        assert!(jsonl.contains("\"kind\":\"fault_injected\""));
        assert!(jsonl.contains("\"schema\":\"ghosts-events/4\""));
    }

    #[test]
    fn flush_drains_and_recording_continues() {
        let rec = enabled();
        rec.root("a").event("one", &[]);
        let first = rec.flush();
        assert_eq!(first.spans.len(), 1);
        let empty = rec.flush();
        assert_eq!(empty.spans.len(), 0);
        rec.root("b").event("two", &[]);
        let second = rec.flush();
        assert_eq!(second.spans.len(), 1);
        assert_eq!(second.spans[0].0.render(), "b");
    }

    #[test]
    fn events_named_filters_across_spans() {
        let rec = enabled();
        rec.root("a").event("fit", &[("k", FieldValue::U64(1))]);
        rec.root("b").event("fit", &[("k", FieldValue::U64(2))]);
        rec.root("b").event("other", &[]);
        let log = rec.flush();
        let fits: Vec<_> = log.events_named("fit").collect();
        assert_eq!(fits.len(), 2);
        assert_eq!(fits[0].0.render(), "a");
        assert_eq!(fits[1].0.render(), "b");
    }
}
