//! The sharded, lock-free metric registry: atomic counter cells and
//! log-linear histograms with deterministic, order-independent snapshot
//! merging.
//!
//! This is the hot-path complement to the [`Recorder`](crate::Recorder):
//! the recorder owns *traces* (spans and events, which need program order
//! and therefore locks), while the registry owns *metrics* — pure
//! commutative accumulators that a serve worker must be able to bump in
//! tens of nanoseconds without ever taking a lock. Three layers:
//!
//! 1. **Cells.** A [`Counter`] is `CELL_SHARDS` cache-line-padded
//!    `AtomicU64`s; each thread picks a home shard once (round-robin) and
//!    `fetch_add`s with relaxed ordering. A [`Histogram`] is an atomic
//!    bucket table in [`sketch`](crate::sketch) layout plus sharded sum
//!    cells and racy-but-monotone min/max. Recording is wait-free on
//!    x86 — no CAS loops on the common path, no locks ever.
//! 2. **Names.** The registry maps metric names to cells in `RwLock`ed
//!    `BTreeMap`s. Lookup is the *cold* path: callers resolve a handle
//!    once (at startup or first use) and then record through the `Arc`
//!    directly. Two lanes exist, mirroring the recorder: deterministic
//!    (pure functions of the input) and volatile (wall durations, queue
//!    stats — manifest/ops surfaces only).
//! 3. **Epochs.** [`Registry::advance_epoch`] snapshots the cumulative
//!    state and pushes the delta since the previous epoch into a bounded
//!    [`EpochRing`], so [`Registry::window`] can answer "rates and latency
//!    quantiles over the last *k* epochs" with fixed memory.
//!
//! Reads are **non-mutating**: a snapshot is a sum over cells, never a
//! drain, so two consecutive snapshots of a quiescent registry are
//! identical — the property the serve `/metrics` endpoint pins in tests.
//! Because every accumulator is commutative, a snapshot is a function of
//! the multiset of recorded updates: thread interleaving cannot change a
//! byte of the rendered output.

use crate::ring::EpochRing;
use crate::sketch::{bucket_of, LogLinearHist, NUM_SKETCH_BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Number of per-counter shards. A small power of two: enough to keep
/// worker threads off each other's cache lines, small enough that summing
/// a snapshot stays trivial.
pub const CELL_SHARDS: usize = 16;

/// Default number of epochs the window ring retains.
pub const DEFAULT_EPOCHS: usize = 64;

/// One cache line worth of counter; the padding stops two shards from
/// false-sharing a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Picks this thread's home shard: assigned round-robin on first use so
/// request workers spread across cells.
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % CELL_SHARDS;
    }
    SHARD.with(|s| *s)
}

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct CounterCell {
    shards: [PaddedCell; CELL_SHARDS],
}

impl CounterCell {
    fn add(&self, delta: u64) {
        let shard = &self.shards[home_shard()]; // lint: allow(panic-path) home_shard() is % CELL_SHARDS
        shard.0.fetch_add(delta, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.0.load(Ordering::Relaxed)))
    }
}

/// A lock-free counter handle. Cheap to clone; `add` is one relaxed
/// `fetch_add` on the calling thread's home shard.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.cell.add(delta);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.add(1);
    }

    /// The current total across all shards (non-mutating).
    pub fn value(&self) -> u64 {
        self.cell.value()
    }
}

struct HistCell {
    buckets: Vec<AtomicU64>,
    sum: [PaddedCell; CELL_SHARDS],
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(NUM_SKETCH_BUCKETS);
        buckets.resize_with(NUM_SKETCH_BUCKETS, AtomicU64::default);
        Self {
            buckets,
            sum: Default::default(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistCell {
    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed); // lint: allow(panic-path) bucket_of() < NUM_SKETCH_BUCKETS for all u64
        self.sum[home_shard()].0.fetch_add(v, Ordering::Relaxed); // lint: allow(panic-path) home_shard() is % CELL_SHARDS

        // Load-then-update keeps the common path to two plain loads; the
        // fetch_min/max only run while the extrema are still moving.
        if v < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> LogLinearHist {
        let mut out = LogLinearHist::new();
        for (slot, b) in out.buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        out.sum = self
            .sum
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.0.load(Ordering::Relaxed)));
        out.min = self.min.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
        if out.is_empty() {
            out.min = u64::MAX;
            out.max = 0;
        }
        out
    }
}

/// A lock-free log-linear histogram handle. `record` is two relaxed
/// `fetch_add`s (bucket + sum shard) plus two loads for the extrema.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.cell.record(v);
    }

    /// A point-in-time sketch of everything recorded so far
    /// (non-mutating).
    pub fn snapshot(&self) -> LogLinearHist {
        self.cell.snapshot()
    }
}

/// A deterministic point-in-time view of a registry (or of a window of
/// epochs). Maps are name-sorted, so equal multisets of updates render to
/// equal bytes regardless of thread count or arrival order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Deterministic-lane counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic-lane histograms.
    pub hists: BTreeMap<String, LogLinearHist>,
    /// Volatile-lane counters (wall durations, queue stats).
    pub volatile_counters: BTreeMap<String, u64>,
    /// Volatile-lane histograms (latency sketches).
    pub volatile_hists: BTreeMap<String, LogLinearHist>,
}

impl RegistrySnapshot {
    /// Folds another snapshot into this one (commutative, associative;
    /// the empty snapshot is the identity).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        for (name, v) in &other.volatile_counters {
            let slot = self.volatile_counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.volatile_hists {
            self.volatile_hists
                .entry(name.clone())
                .or_default()
                .merge(h);
        }
    }

    /// The per-name deltas from `earlier` to `self`, assuming `earlier`
    /// is a prefix snapshot of the same registry.
    pub fn diff(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        fn counter_diff(
            cur: &BTreeMap<String, u64>,
            old: &BTreeMap<String, u64>,
        ) -> BTreeMap<String, u64> {
            cur.iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(old.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect()
        }
        fn hist_diff(
            cur: &BTreeMap<String, LogLinearHist>,
            old: &BTreeMap<String, LogLinearHist>,
        ) -> BTreeMap<String, LogLinearHist> {
            cur.iter()
                .map(|(k, h)| match old.get(k) {
                    Some(o) => (k.clone(), h.diff(o)),
                    None => (k.clone(), h.clone()),
                })
                .collect()
        }
        RegistrySnapshot {
            counters: counter_diff(&self.counters, &earlier.counters),
            hists: hist_diff(&self.hists, &earlier.hists),
            volatile_counters: counter_diff(&self.volatile_counters, &earlier.volatile_counters),
            volatile_hists: hist_diff(&self.volatile_hists, &earlier.volatile_hists),
        }
    }
}

#[derive(Default)]
struct Lane<C> {
    names: RwLock<BTreeMap<String, Arc<C>>>,
}

impl<C: Default> Lane<C> {
    /// Get-or-create: a read-locked lookup on the warm path, a write lock
    /// only the first time a name is seen.
    fn resolve(&self, name: &str) -> Arc<C> {
        if let Some(cell) = self
            .names
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(cell);
        }
        let mut map = self.names.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    fn for_each(&self, mut f: impl FnMut(&str, &C)) {
        for (name, cell) in self
            .names
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            f(name, cell);
        }
    }
}

struct EpochState {
    prev: RegistrySnapshot,
    ring: EpochRing<RegistrySnapshot>,
}

struct RegistryInner {
    counters: Lane<CounterCell>,
    hists: Lane<HistCell>,
    volatile_counters: Lane<CounterCell>,
    volatile_hists: Lane<HistCell>,
    epochs: Mutex<EpochState>,
}

/// The metric registry: name → cell resolution, whole-registry snapshots
/// and the epoch-window machinery. Cheap to clone (an `Arc` handle).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Registry {
    /// An empty registry with the default window depth.
    pub fn new() -> Self {
        Self::with_epochs(DEFAULT_EPOCHS)
    }

    /// An empty registry whose window ring holds `epochs` deltas.
    pub fn with_epochs(epochs: usize) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                counters: Lane::default(),
                hists: Lane::default(),
                volatile_counters: Lane::default(),
                volatile_hists: Lane::default(),
                epochs: Mutex::new(EpochState {
                    prev: RegistrySnapshot::default(),
                    ring: EpochRing::new(epochs),
                }),
            }),
        }
    }

    /// Resolves (creating on first use) a deterministic-lane counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.counters.resolve(name),
        }
    }

    /// Resolves a deterministic-lane histogram.
    pub fn hist(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.hists.resolve(name),
        }
    }

    /// Resolves a volatile-lane counter (wall durations, queue stats —
    /// never rendered into deterministic surfaces).
    pub fn volatile_counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.volatile_counters.resolve(name),
        }
    }

    /// Resolves a volatile-lane histogram (latency sketches).
    pub fn volatile_hist(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.volatile_hists.resolve(name),
        }
    }

    /// The current counter value under `name` (0 when never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        let mut out = 0;
        self.inner.counters.for_each(|n, c| {
            if n == name {
                out = c.value();
            }
        });
        out
    }

    /// A deterministic, non-mutating snapshot of the whole registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        self.inner.counters.for_each(|name, cell| {
            snap.counters.insert(name.to_string(), cell.value());
        });
        self.inner.hists.for_each(|name, cell| {
            snap.hists.insert(name.to_string(), cell.snapshot());
        });
        self.inner.volatile_counters.for_each(|name, cell| {
            snap.volatile_counters
                .insert(name.to_string(), cell.value());
        });
        self.inner.volatile_hists.for_each(|name, cell| {
            snap.volatile_hists
                .insert(name.to_string(), cell.snapshot());
        });
        snap
    }

    /// Closes the current epoch: records the delta since the previous
    /// epoch boundary into the window ring. Callers pick the cadence
    /// (every *k* requests, every flush, …) — the registry only requires
    /// that advances are not concurrent with each other, which the
    /// internal mutex enforces.
    pub fn advance_epoch(&self) {
        let cur = self.snapshot();
        let mut state = lock_or_recover(&self.inner.epochs);
        let delta = cur.diff(&state.prev);
        state.ring.push(delta);
        state.prev = cur;
    }

    /// Number of epochs ever closed.
    pub fn epoch(&self) -> u64 {
        lock_or_recover(&self.inner.epochs).ring.advanced()
    }

    /// The merged deltas of the most recent `epochs` closed epochs — a
    /// sliding-window view for rates and recent-latency quantiles. Epochs
    /// older than the ring capacity are gone by construction.
    pub fn window(&self, epochs: usize) -> RegistrySnapshot {
        let state = lock_or_recover(&self.inner.epochs);
        let mut out = RegistrySnapshot::default();
        for delta in state.ring.recent(epochs) {
            out.merge(delta);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_across_threads_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(reg.counter_value("hits"), 80_000);
        assert_eq!(reg.counter_value("absent"), 0);
    }

    #[test]
    fn histogram_snapshot_matches_sequential_reference() {
        let reg = Registry::new();
        let h = reg.hist("lat");
        let values: Vec<u64> = (0..4000).map(|i| (i * 37) % 5000).collect();
        std::thread::scope(|s| {
            for chunk in values.chunks(1000) {
                let h = h.clone();
                s.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let mut want = LogLinearHist::new();
        for &v in &values {
            want.observe(v);
        }
        assert_eq!(h.snapshot(), want, "concurrent recording is order-free");
    }

    #[test]
    fn snapshots_are_non_mutating() {
        let reg = Registry::new();
        reg.counter("a").add(3);
        reg.hist("h").record(9);
        reg.volatile_counter("w").add(1);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2, "two consecutive reads must be identical");
        assert_eq!(s1.counters["a"], 3);
        assert_eq!(s1.volatile_counters["w"], 1);
    }

    #[test]
    fn resolve_returns_the_same_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
    }

    #[test]
    fn lanes_are_disjoint_namespaces() {
        let reg = Registry::new();
        reg.counter("n").add(1);
        reg.volatile_counter("n").add(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["n"], 1);
        assert_eq!(snap.volatile_counters["n"], 10);
    }

    #[test]
    fn epoch_windows_hold_deltas() {
        let reg = Registry::with_epochs(4);
        let c = reg.counter("req");
        let h = reg.hist("lat");
        c.add(5);
        h.record(100);
        reg.advance_epoch();
        c.add(7);
        h.record(200);
        h.record(300);
        reg.advance_epoch();
        assert_eq!(reg.epoch(), 2);

        let last = reg.window(1);
        assert_eq!(last.counters["req"], 7);
        assert_eq!(last.hists["lat"].count(), 2);

        let both = reg.window(2);
        assert_eq!(both.counters["req"], 12);
        assert_eq!(both.hists["lat"].count(), 3);
        assert_eq!(both.hists["lat"].sum, 600);
    }

    #[test]
    fn window_ring_is_bounded() {
        let reg = Registry::with_epochs(2);
        let c = reg.counter("n");
        for _ in 0..5 {
            c.add(1);
            reg.advance_epoch();
        }
        assert_eq!(reg.epoch(), 5);
        // Only the last two epochs survive.
        assert_eq!(reg.window(100).counters["n"], 2);
    }

    #[test]
    fn snapshot_merge_laws() {
        let mut a = RegistrySnapshot::default();
        a.counters.insert("x".into(), 1);
        let mut h = LogLinearHist::new();
        h.observe(10);
        a.hists.insert("h".into(), h);

        let mut b = RegistrySnapshot::default();
        b.counters.insert("x".into(), 2);
        b.counters.insert("y".into(), 4);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");

        let mut with_identity = a.clone();
        with_identity.merge(&RegistrySnapshot::default());
        assert_eq!(with_identity, a, "empty snapshot is the identity");
    }
}
