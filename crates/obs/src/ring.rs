//! Fixed-size rings: the epoch ring behind sliding-window metric views and
//! the trace-tail ring behind `GET /v1/trace/tail`.
//!
//! Both structures are bounded by construction — a long-lived server
//! (ROADMAP item 3) must be able to run for months without its telemetry
//! growing, so windows are expressed as "the last *k* epochs" over a ring
//! of per-epoch snapshot deltas, and the request tail is a capacity-capped
//! ring with *tail-biased retention*: interesting requests (errors,
//! degraded answers, load-shed rejections, slow outliers) are always kept,
//! while routine OK requests are admission-sampled and evicted first under
//! pressure. Every retention decision is deterministic — a function of the
//! entry sequence alone — so a sequential replay produces a byte-identical
//! tail at any worker count.

use crate::recorder::FieldValue;
use std::collections::VecDeque;

/// A bounded FIFO of per-epoch values: pushing beyond capacity drops the
/// oldest. `advanced` counts every push ever made, so callers can tell "ring
/// is short because the process is young" from "older epochs were dropped".
#[derive(Debug, Clone)]
pub struct EpochRing<T> {
    cap: usize,
    items: VecDeque<T>,
    advanced: u64,
}

impl<T> EpochRing<T> {
    /// An empty ring holding at most `cap` epochs (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            items: VecDeque::new(),
            advanced: 0,
        }
    }

    /// Appends one epoch, dropping the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.cap {
            self.items.pop_front();
        }
        self.items.push_back(item);
        self.advanced += 1;
    }

    /// Epochs currently held, oldest first.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of epochs ever pushed (including dropped ones).
    pub fn advanced(&self) -> u64 {
        self.advanced
    }

    /// The most recent `n` epochs, oldest of those first.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &T> {
        let skip = self.items.len().saturating_sub(n);
        self.items.iter().skip(skip)
    }
}

/// How a request ended, for retention purposes. Ordering is severity:
/// everything except [`TailClass::Ok`] is always retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailClass {
    /// The request failed (5xx / panic-trapped).
    Error,
    /// The answer was produced by a degraded ladder rung.
    Degraded,
    /// The request was rejected by the admission queue.
    Shed,
    /// The request succeeded but exceeded the slow threshold.
    Slow,
    /// A routine success — sampled and evicted first.
    Ok,
}

impl TailClass {
    /// The lowercase label used in rendered tail events.
    pub fn label(self) -> &'static str {
        match self {
            TailClass::Error => "error",
            TailClass::Degraded => "degraded",
            TailClass::Shed => "shed",
            TailClass::Slow => "slow",
            TailClass::Ok => "ok",
        }
    }
}

/// One wide event: everything worth knowing about a single request, as a
/// flat field list ready for JSONL rendering.
#[derive(Debug, Clone)]
pub struct TailEntry {
    /// Arrival sequence number (the span index in the rendered tail).
    pub id: u64,
    /// Retention class.
    pub class: TailClass,
    /// HTTP status returned.
    pub status: u16,
    /// Wide-event fields (route, cache disposition, timing, …).
    pub fields: Vec<(String, FieldValue)>,
}

/// Running totals of every retention decision the ring has made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Entries offered to the ring.
    pub seen: u64,
    /// Entries admitted (currently or formerly resident).
    pub kept: u64,
    /// OK entries dropped at admission by sampling.
    pub sampled_out: u64,
    /// OK entries evicted under capacity pressure.
    pub evicted_ok: u64,
    /// Non-OK entries evicted because no OK entry was left to evict.
    pub evicted: u64,
}

/// The bounded request tail with tail-biased retention.
pub struct TailRing {
    cap: usize,
    ok_sample: u64,
    entries: VecDeque<TailEntry>,
    ok_seen: u64,
    stats: TailStats,
}

impl TailRing {
    /// A ring holding at most `cap` entries; one in every `ok_sample` OK
    /// entries is admitted (`ok_sample = 1` keeps them all). Non-OK entries
    /// are never sampled out.
    pub fn new(cap: usize, ok_sample: u64) -> Self {
        Self {
            cap: cap.max(1),
            ok_sample: ok_sample.max(1),
            entries: VecDeque::new(),
            ok_seen: 0,
            stats: TailStats::default(),
        }
    }

    /// Offers one entry to the ring, applying admission sampling and
    /// capacity eviction. Deterministic: the decision depends only on the
    /// sequence of classes offered so far.
    pub fn push(&mut self, entry: TailEntry) {
        self.stats.seen += 1;
        if entry.class == TailClass::Ok {
            let nth = self.ok_seen;
            self.ok_seen += 1;
            if !nth.is_multiple_of(self.ok_sample) {
                self.stats.sampled_out += 1;
                return;
            }
        }
        self.entries.push_back(entry);
        self.stats.kept += 1;
        if self.entries.len() > self.cap {
            // Evict the oldest OK entry first (never the one just pushed);
            // only when the tail is wall-to-wall interesting does the
            // oldest interesting entry go.
            let last = self.entries.len() - 1;
            match self
                .entries
                .iter()
                .take(last)
                .position(|e| e.class == TailClass::Ok)
            {
                Some(pos) => {
                    self.entries.remove(pos);
                    self.stats.evicted_ok += 1;
                }
                None => {
                    self.entries.pop_front();
                    self.stats.evicted += 1;
                }
            }
        }
    }

    /// The most recent `n` retained entries in arrival (`id`) order.
    pub fn recent(&self, n: usize) -> Vec<&TailEntry> {
        let skip = self.entries.len().saturating_sub(n);
        self.entries.iter().skip(skip).collect()
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retention totals so far.
    pub fn stats(&self) -> TailStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, class: TailClass) -> TailEntry {
        TailEntry {
            id,
            class,
            status: match class {
                TailClass::Error => 500,
                TailClass::Shed => 503,
                _ => 200,
            },
            fields: Vec::new(),
        }
    }

    #[test]
    fn epoch_ring_drops_oldest() {
        let mut r = EpochRing::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.advanced(), 5);
        assert_eq!(r.recent(3).copied().collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(r.recent(2).copied().collect::<Vec<_>>(), [3, 4]);
        assert_eq!(r.recent(10).copied().collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn interesting_entries_survive_ok_floods() {
        let mut ring = TailRing::new(4, 1);
        ring.push(entry(0, TailClass::Error));
        ring.push(entry(1, TailClass::Degraded));
        for i in 2..50 {
            ring.push(entry(i, TailClass::Ok));
        }
        let ids: Vec<u64> = ring.recent(4).iter().map(|e| e.id).collect();
        // The error and the degradation are still there; only the two most
        // recent OK entries remain.
        assert_eq!(ids, [0, 1, 48, 49]);
        let stats = ring.stats();
        assert_eq!(stats.seen, 50);
        assert_eq!(stats.evicted_ok, 46);
        assert_eq!(stats.evicted, 0);
    }

    #[test]
    fn all_interesting_falls_back_to_fifo() {
        let mut ring = TailRing::new(2, 1);
        for i in 0..4 {
            ring.push(entry(i, TailClass::Error));
        }
        let ids: Vec<u64> = ring.recent(2).iter().map(|e| e.id).collect();
        assert_eq!(ids, [2, 3]);
        assert_eq!(ring.stats().evicted, 2);
    }

    #[test]
    fn ok_admission_sampling_is_deterministic() {
        let mut ring = TailRing::new(100, 4);
        for i in 0..16 {
            ring.push(entry(i, TailClass::Ok));
        }
        let ids: Vec<u64> = ring.recent(100).iter().map(|e| e.id).collect();
        assert_eq!(ids, [0, 4, 8, 12], "every 4th OK entry is kept");
        assert_eq!(ring.stats().sampled_out, 12);
        // Errors are never sampled out.
        ring.push(entry(16, TailClass::Error));
        assert_eq!(ring.len(), 5);
    }

    #[test]
    fn slow_and_shed_are_retained_classes() {
        let mut ring = TailRing::new(3, 1);
        ring.push(entry(0, TailClass::Slow));
        ring.push(entry(1, TailClass::Shed));
        for i in 2..10 {
            ring.push(entry(i, TailClass::Ok));
        }
        let classes: Vec<TailClass> = ring.recent(3).iter().map(|e| e.class).collect();
        assert_eq!(classes, [TailClass::Slow, TailClass::Shed, TailClass::Ok]);
    }
}
