//! Structural validation of `ghosts-events/4` (and legacy `ghosts-events/1`
//! … `/3`) JSONL trace files.
//!
//! `xtask lint --check-events <file>` and the CI smoke step use this to
//! verify that a trace emitted by `repro --trace` is well-formed: a single
//! meta line first, then events/errors/degradations/fault-injections, then
//! counters, then histograms, with every line carrying exactly the keys the
//! writer produces and every span's `seq` numbering dense from zero.
//!
//! Version 2 adds the `degradation` and `fault_injected` line kinds (same
//! grammar as `event`); version 3 adds `reliability` (same grammar again);
//! version 4 adds no kinds but introduces the telemetry-plane event *names*
//! (`stage_profile`, `tail_retention`) emitted by the stage profiler and the
//! trace-tail ring. A trace whose meta line declares an older version is
//! still accepted, but must not contain kinds — or, for v4, names —
//! introduced after that version.

use crate::hist::NUM_BUCKETS;
use crate::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt;

/// The schema identifier expected on the meta line (same constant the
/// writer uses).
pub const EVENTS_SCHEMA: &str = crate::recorder::JSONL_SCHEMA;

/// The version-3 schema identifier, still accepted on the meta line.
pub const EVENTS_SCHEMA_V3: &str = crate::recorder::JSONL_SCHEMA_V3;

/// The version-2 schema identifier, still accepted on the meta line.
pub const EVENTS_SCHEMA_V2: &str = crate::recorder::JSONL_SCHEMA_V2;

/// The legacy schema identifier, still accepted on the meta line.
pub const EVENTS_SCHEMA_V1: &str = crate::recorder::JSONL_SCHEMA_V1;

/// The ghosts-events name registry: every `(name, kind)` pair the
/// workspace is allowed to emit on an event-like trace line.
///
/// This is the contract between producers (every `Scope::event` /
/// `::error` / `::degradation` / `::fault_injected` / `::reliability`
/// call site in library and binary code) and consumers (manifest
/// ingestion, trace tooling, dashboards): an event name not listed here
/// is invisible to consumers, and a listed name nobody emits is dead
/// schema. ghost-lint's `event-exhaustiveness` rule checks both
/// directions statically, so additions land here and at the emission
/// site in the same commit.
///
/// Entries are sorted by name then kind; a name may appear under more
/// than one kind (e.g. `estimate` is both a success event and a serve
/// error).
pub const EVENT_NAMES: &[(&str, &str)] = &[
    ("baseline_failed", "error"),
    ("bench_point", "event"),
    ("bootstrap_summary", "reliability"),
    ("candidate", "event"),
    ("candidate_failed", "event"),
    ("checkpoint_written", "event"),
    ("ci", "event"),
    ("ci_fit_failed", "error"),
    ("ci_lower", "event"),
    ("ci_unbounded", "error"),
    ("ci_upper", "event"),
    ("coverage_point", "reliability"),
    ("cv_cell", "reliability"),
    ("drain", "event"),
    ("estimate", "error"),
    ("estimate", "event"),
    ("estimate_empty", "event"),
    ("estimate_failed", "error"),
    ("experiment_failed", "error"),
    ("filter", "event"),
    ("fired", "fault_injected"),
    ("fit", "event"),
    ("fit_failed", "error"),
    ("handler-panic", "error"),
    ("ic_candidate", "event"),
    ("ingest", "event"),
    ("ingest_duplicate", "event"),
    ("ladder_step", "degradation"),
    ("model_chosen", "event"),
    ("request", "error"),
    ("request", "event"),
    ("resolve", "error"),
    ("search_started", "event"),
    ("source_observed", "event"),
    ("spoof_filter", "event"),
    ("stage_profile", "event"),
    ("stratified_total", "event"),
    ("stratum_excluded", "event"),
    ("stratum_failed", "error"),
    ("tail_retention", "event"),
    ("term_added", "event"),
    ("wal_quarantined", "error"),
    ("wal_recovered", "event"),
    ("window_observed", "event"),
];

/// Whether `(name, kind)` is a registered ghosts-events emission.
pub fn is_registered_event(name: &str, kind: &str) -> bool {
    EVENT_NAMES
        .binary_search_by(|(n, k)| (*n, *k).cmp(&(name, kind)))
        .is_ok()
}

/// A validation failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Counts of what a validated trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JsonlSummary {
    /// Ordinary events.
    pub events: usize,
    /// Error events.
    pub errors: usize,
    /// Degradation events (v2).
    pub degradations: usize,
    /// Fault-injection events (v2).
    pub faults: usize,
    /// Reliability-engine events (v3).
    pub reliability: usize,
    /// Counter lines.
    pub counters: usize,
    /// Histogram lines.
    pub hists: usize,
}

/// The writer emits kinds in this phase order; later phases may not be
/// followed by earlier ones.
fn phase_of(kind: &str) -> Option<u8> {
    match kind {
        "meta" => Some(0),
        "event" | "error" | "degradation" | "fault_injected" | "reliability" => Some(1),
        "counter" => Some(2),
        "hist" => Some(3),
        _ => None,
    }
}

/// Whether `kind` shares the event-line grammar (span/seq/name/fields).
fn is_event_like(kind: &str) -> bool {
    matches!(
        kind,
        "event" | "error" | "degradation" | "fault_injected" | "reliability"
    )
}

fn keys_of(v: &JsonValue) -> Vec<&str> {
    v.as_object()
        .map(|m| m.iter().map(|(k, _)| k.as_str()).collect())
        .unwrap_or_default()
}

/// Validates a single trace line in isolation (any kind, including meta).
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let doc = parse(line).map_err(|e| e.to_string())?;
    if doc.as_object().is_none() {
        return Err("line is not a JSON object".to_string());
    }
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string 'kind'".to_string())?;
    match kind {
        "meta" => {
            if keys_of(&doc) != ["kind", "schema", "clock"] {
                return Err("meta line must have exactly kind, schema, clock".to_string());
            }
            let schema = doc.get("schema").and_then(JsonValue::as_str);
            if schema != Some(EVENTS_SCHEMA)
                && schema != Some(EVENTS_SCHEMA_V3)
                && schema != Some(EVENTS_SCHEMA_V2)
                && schema != Some(EVENTS_SCHEMA_V1)
            {
                return Err(format!(
                    "unsupported schema {schema:?}, expected {EVENTS_SCHEMA:?} (or legacy {EVENTS_SCHEMA_V3:?} / {EVENTS_SCHEMA_V2:?} / {EVENTS_SCHEMA_V1:?})"
                ));
            }
            match doc.get("clock").and_then(JsonValue::as_str) {
                Some("logical" | "wall") => Ok(()),
                other => Err(format!("clock must be 'logical' or 'wall', got {other:?}")),
            }
        }
        "event" | "error" | "degradation" | "fault_injected" | "reliability" => {
            if keys_of(&doc) != ["kind", "span", "seq", "name", "fields"] {
                return Err(format!(
                    "{kind} line must have exactly kind, span, seq, name, fields"
                ));
            }
            if doc.get("span").and_then(JsonValue::as_str).is_none() {
                return Err("span must be a string".to_string());
            }
            if doc.get("seq").and_then(JsonValue::as_u64).is_none() {
                return Err("seq must be a non-negative integer".to_string());
            }
            if doc.get("name").and_then(JsonValue::as_str).is_none() {
                return Err("name must be a string".to_string());
            }
            match doc.get("fields") {
                Some(JsonValue::Object(fields)) => {
                    for (k, v) in fields {
                        match v {
                            JsonValue::UInt(_)
                            | JsonValue::Int(_)
                            | JsonValue::Float(_)
                            | JsonValue::Str(_)
                            | JsonValue::Bool(_)
                            | JsonValue::Null => {}
                            _ => return Err(format!("field '{k}' must be a scalar")),
                        }
                    }
                    Ok(())
                }
                _ => Err("fields must be an object".to_string()),
            }
        }
        "counter" => {
            if keys_of(&doc) != ["kind", "name", "value"] {
                return Err("counter line must have exactly kind, name, value".to_string());
            }
            if doc.get("name").and_then(JsonValue::as_str).is_none() {
                return Err("name must be a string".to_string());
            }
            if doc.get("value").and_then(JsonValue::as_u64).is_none() {
                return Err("value must be a non-negative integer".to_string());
            }
            Ok(())
        }
        "hist" => {
            if keys_of(&doc) != ["kind", "name", "count", "sum", "min", "max", "buckets"] {
                return Err(
                    "hist line must have exactly kind, name, count, sum, min, max, buckets"
                        .to_string(),
                );
            }
            if doc.get("name").and_then(JsonValue::as_str).is_none() {
                return Err("name must be a string".to_string());
            }
            let mut nums = [0u64; 4];
            for (slot, key) in nums.iter_mut().zip(["count", "sum", "min", "max"]) {
                *slot = doc
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("{key} must be a non-negative integer"))?;
            }
            let buckets = doc
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| "buckets must be an array".to_string())?;
            if buckets.len() != NUM_BUCKETS {
                return Err(format!(
                    "buckets must have {NUM_BUCKETS} entries, got {}",
                    buckets.len()
                ));
            }
            let mut total: u64 = 0;
            for b in buckets {
                total = total
                    .saturating_add(b.as_u64().ok_or_else(|| {
                        "bucket counts must be non-negative integers".to_string()
                    })?);
            }
            if total != nums[0] {
                return Err(format!(
                    "bucket counts sum to {total} but count is {}",
                    nums[0]
                ));
            }
            Ok(())
        }
        other => Err(format!("unknown kind '{other}'")),
    }
}

/// Validates a whole trace document.
///
/// Beyond per-line checks this enforces: the first line is the only meta
/// line; kinds appear in writer phase order (events, then counters, then
/// histograms); every span's `seq` numbers are dense from zero; and the
/// document is newline-terminated with no blank lines.
///
/// # Errors
///
/// Returns the first violation with its line number.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, SchemaError> {
    let fail = |line: usize, message: String| SchemaError { line, message };
    if text.is_empty() {
        return Err(fail(1, "empty trace (expected a meta line)".to_string()));
    }
    if !text.ends_with('\n') {
        let line = text.lines().count();
        return Err(fail(line, "trace must end with a newline".to_string()));
    }
    let mut summary = JsonlSummary::default();
    let mut phase: u8 = 0;
    // Schema version the meta line declares (1–3 or the current 4); kinds
    // (and, for v4, names) introduced after the declared version are
    // rejected below.
    let mut declared_version: u8 = 4;
    let mut next_seq: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            return Err(fail(lineno, "blank line in trace".to_string()));
        }
        validate_event_line(line).map_err(|m| fail(lineno, m))?;
        // validate_event_line guarantees the parse and the kind.
        let doc = parse(line).map_err(|e| fail(lineno, e.to_string()))?;
        let kind = doc.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        let this_phase = phase_of(kind).unwrap_or(u8::MAX);
        if i == 0 {
            if kind != "meta" {
                return Err(fail(lineno, "first line must be the meta line".to_string()));
            }
            declared_version = match doc.get("schema").and_then(JsonValue::as_str) {
                Some(s) if s == EVENTS_SCHEMA_V1 => 1,
                Some(s) if s == EVENTS_SCHEMA_V2 => 2,
                Some(s) if s == EVENTS_SCHEMA_V3 => 3,
                _ => 4,
            };
        } else if kind == "meta" {
            return Err(fail(lineno, "duplicate meta line".to_string()));
        } else if this_phase < phase {
            return Err(fail(
                lineno,
                format!("'{kind}' line after a later-phase line (out of writer order)"),
            ));
        }
        let mut needs_version: u8 = match kind {
            "degradation" | "fault_injected" => 2,
            "reliability" => 3,
            _ => 1,
        };
        if is_event_like(kind) {
            // v4 introduced names, not kinds: a telemetry-plane event under
            // an older meta line is a writer bug.
            let name = doc.get("name").and_then(JsonValue::as_str).unwrap_or("");
            if matches!(name, "stage_profile" | "tail_retention") {
                needs_version = needs_version.max(4);
            }
        }
        if needs_version > declared_version {
            return Err(fail(
                lineno,
                format!("'{kind}' lines require schema version {needs_version}, but the meta line declares version {declared_version}"),
            ));
        }
        phase = this_phase;
        match kind {
            "event" => summary.events += 1,
            "error" => summary.errors += 1,
            "degradation" => summary.degradations += 1,
            "fault_injected" => summary.faults += 1,
            "reliability" => summary.reliability += 1,
            "counter" => summary.counters += 1,
            "hist" => summary.hists += 1,
            _ => {}
        }
        if is_event_like(kind) {
            let span = doc
                .get("span")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string();
            let seq = doc.get("seq").and_then(JsonValue::as_u64).unwrap_or(0);
            let expected = next_seq.entry(span.clone()).or_insert(0);
            if seq != *expected {
                return Err(fail(
                    lineno,
                    format!("span '{span}' expected seq {expected}, got {seq}"),
                ));
            }
            *expected += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::recorder::{FieldValue, Recorder};
    use std::sync::Arc;

    fn sample_trace() -> String {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let root = rec.root("run");
        root.event("start", &[("denom", FieldValue::U64(16384))]);
        let w = root.child_idx("window", 3);
        w.event(
            "fit",
            &[
                ("iters", FieldValue::U64(9)),
                ("ll", FieldValue::F64(-12.5)),
            ],
        );
        w.error(
            "estimate_failed",
            &[("error", FieldValue::Str("singular".into()))],
        );
        rec.add("pipeline.dropped_reserved", 42);
        rec.observe("glm.iterations", 9);
        rec.flush().to_jsonl()
    }

    #[test]
    fn event_registry_is_sorted_and_well_formed() {
        // `is_registered_event` binary-searches, so the table must be
        // strictly sorted (which also rules out duplicates).
        for pair in EVENT_NAMES.windows(2) {
            assert!(pair[0] < pair[1], "registry out of order at {pair:?}");
        }
        for (name, kind) in EVENT_NAMES {
            assert!(is_event_like(kind), "registry kind {kind:?} for {name:?}");
            assert!(!name.is_empty());
            assert!(is_registered_event(name, kind));
        }
        assert!(is_registered_event("fit", "event"));
        assert!(!is_registered_event("fit", "error"));
        assert!(!is_registered_event("no_such_event", "event"));
    }

    #[test]
    fn writer_output_validates() {
        let trace = sample_trace();
        let summary = validate_jsonl(&trace).expect("valid");
        assert_eq!(
            summary,
            JsonlSummary {
                events: 2,
                errors: 1,
                counters: 1,
                hists: 1,
                ..JsonlSummary::default()
            }
        );
    }

    #[test]
    fn v2_kinds_validate_and_are_counted() {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let span = rec.root("estimate").child_idx("stratum", 2);
        span.error(
            "fit_failed",
            &[("error", FieldValue::Str("non-finite".into()))],
        );
        span.degradation(
            "degradation",
            &[
                ("from", FieldValue::Str("selected".into())),
                ("to", FieldValue::Str("independence".into())),
            ],
        );
        rec.root("faultinject").fault_injected(
            "fault_injected",
            &[("site", FieldValue::Str("glm.fit".into()))],
        );
        let trace = rec.flush().to_jsonl();
        let summary = validate_jsonl(&trace).expect("valid v2 trace");
        assert_eq!(summary.degradations, 1);
        assert_eq!(summary.faults, 1);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn legacy_v1_meta_accepted_but_v2_kinds_rejected_under_it() {
        // A v1 trace without the new kinds still validates.
        let v1 = sample_trace().replace(EVENTS_SCHEMA, EVENTS_SCHEMA_V1);
        assert!(v1.contains(EVENTS_SCHEMA_V1), "substitution applied");
        validate_jsonl(&v1).expect("legacy trace stays valid");

        // The same meta line with a degradation line must be rejected.
        let meta = format!(r#"{{"kind":"meta","schema":"{EVENTS_SCHEMA_V1}","clock":"logical"}}"#);
        let degradation =
            r#"{"kind":"degradation","span":"s","seq":0,"name":"degradation","fields":{}}"#;
        let mixed = format!("{meta}\n{degradation}\n");
        let err = validate_jsonl(&mixed).expect_err("v2 kind under v1 meta");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("require schema"));
    }

    #[test]
    fn reliability_kind_validates_and_is_version_gated() {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        rec.root("reliability").reliability(
            "bootstrap_summary",
            &[
                ("replicates", FieldValue::U64(64)),
                ("se", FieldValue::F64(12.5)),
            ],
        );
        let trace = rec.flush().to_jsonl();
        let summary = validate_jsonl(&trace).expect("valid v3 trace");
        assert_eq!(summary.reliability, 1);

        // The same line under a v2 (or v1) meta must be rejected.
        for legacy in [EVENTS_SCHEMA_V2, EVENTS_SCHEMA_V1] {
            let downgraded = trace.replace(EVENTS_SCHEMA, legacy);
            let err = validate_jsonl(&downgraded).expect_err("v3 kind under old meta");
            assert_eq!(err.line, 2);
            assert!(err.message.contains("require schema version 3"));
        }

        // A v2 trace without reliability lines still validates.
        let v2 = sample_trace().replace(EVENTS_SCHEMA, EVENTS_SCHEMA_V2);
        validate_jsonl(&v2).expect("v2 trace stays valid");
    }

    #[test]
    fn v4_names_validate_and_are_version_gated() {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let span = rec.root("profile");
        span.event(
            "stage_profile",
            &[
                ("stage", FieldValue::Str("estimate/fit".into())),
                ("calls", FieldValue::U64(12)),
            ],
        );
        rec.root("tail")
            .event("tail_retention", &[("sampled_out", FieldValue::U64(3))]);
        let trace = rec.flush().to_jsonl();
        let summary = validate_jsonl(&trace).expect("valid v4 trace");
        assert_eq!(summary.events, 2);

        // The same names under any older meta line must be rejected.
        for legacy in [EVENTS_SCHEMA_V3, EVENTS_SCHEMA_V2, EVENTS_SCHEMA_V1] {
            let downgraded = trace.replace(EVENTS_SCHEMA, legacy);
            let err = validate_jsonl(&downgraded).expect_err("v4 name under old meta");
            assert!(err.message.contains("require schema version 4"));
        }

        // A v3 trace without the new names still validates.
        let v3 = sample_trace().replace(EVENTS_SCHEMA, EVENTS_SCHEMA_V3);
        validate_jsonl(&v3).expect("v3 trace stays valid");
    }

    #[test]
    fn empty_log_is_just_a_meta_line() {
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let trace = rec.flush().to_jsonl();
        let summary = validate_jsonl(&trace).expect("valid");
        assert_eq!(summary, JsonlSummary::default());
    }

    #[test]
    fn rejects_missing_meta_and_duplicates() {
        let trace = sample_trace();
        let mut lines: Vec<&str> = trace.lines().collect();
        let headless = format!("{}\n", lines[1..].join("\n"));
        assert!(validate_jsonl(&headless).is_err());

        let meta = lines[0];
        lines.insert(1, meta);
        let doubled = format!("{}\n", lines.join("\n"));
        let err = validate_jsonl(&doubled).expect_err("duplicate meta");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_out_of_order_phases() {
        let trace = sample_trace();
        let mut lines: Vec<&str> = trace.lines().collect();
        // Move the counter line to the end, after the hist line.
        let counter_pos = lines
            .iter()
            .position(|l| l.contains("\"kind\":\"counter\""))
            .expect("has counter");
        let counter = lines.remove(counter_pos);
        lines.push(counter);
        let reordered = format!("{}\n", lines.join("\n"));
        assert!(validate_jsonl(&reordered).is_err());
    }

    #[test]
    fn rejects_seq_gaps() {
        let trace = sample_trace();
        let tampered = trace.replace("\"seq\":1", "\"seq\":5");
        assert!(validate_jsonl(&tampered).is_err());
    }

    #[test]
    fn rejects_bucket_count_mismatch() {
        let line = r#"{"kind":"hist","name":"h","count":3,"sum":9,"min":1,"max":5,"buckets":[1,0,0,0,0,0,0,0,0,0,0,0]}"#;
        let err = validate_event_line(line).expect_err("count mismatch");
        assert!(err.contains("sum to 1"));
    }

    #[test]
    fn rejects_unknown_kinds_and_extra_keys() {
        assert!(validate_event_line(r#"{"kind":"mystery"}"#).is_err());
        assert!(
            validate_event_line(r#"{"kind":"counter","name":"c","value":1,"extra":2}"#).is_err()
        );
        assert!(validate_event_line("not json").is_err());
    }

    #[test]
    fn requires_trailing_newline_and_no_blanks() {
        let trace = sample_trace();
        assert!(validate_jsonl(trace.trim_end()).is_err());
        let blank = trace.replacen('\n', "\n\n", 1);
        assert!(validate_jsonl(&blank).is_err());
    }
}
