//! Log-linear `u64` histograms with bounded relative error (the "sketch"
//! behind latency quantiles).
//!
//! The fixed-bucket [`HistSnapshot`](crate::HistSnapshot) is fine for small
//! integer quantities (GLM iterations, bisection steps) but useless for
//! latency: its 12 buckets stop at 1024 and give no quantiles. The sketch
//! here is the HDR-histogram idea restricted to `u64`: exact buckets for
//! small values, then a fixed number of sub-buckets per power-of-two
//! octave, so every bucket's width is at most `1/SUB_BUCKETS` of its lower
//! bound. Quantile readout therefore carries a *relative* error bound of
//! `1/SUB_BUCKETS` (3.125 %) over the entire `u64` range with a fixed
//! `NUM_SKETCH_BUCKETS`-slot table — no allocation growth, no precision
//! cliff.
//!
//! Every accumulator is a commutative monoid (bucket counts and `sum` add,
//! `min`/`max` meet/join), which is what makes [`merge`](LogLinearHist::merge)
//! associative, commutative and identity-respecting — the properties the
//! registry's order-independent snapshot merging is built on (and that the
//! property tests pin).

/// log2 of the number of sub-buckets per octave. 5 → 32 sub-buckets →
/// relative error ≤ 1/32 ≈ 3.125 %.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count: `SUB_BUCKETS` exact buckets for values below
/// `SUB_BUCKETS`, then `64 − SUB_BITS` octaves of `SUB_BUCKETS` each.
pub const NUM_SKETCH_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Upper bound on the relative error of [`LogLinearHist::quantile`]:
/// `(reported − true) / true ≤ RELATIVE_ERROR` for any non-zero true value.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// The bucket index a value falls into.
///
/// Values below [`SUB_BUCKETS`] map to exact singleton buckets; larger
/// values index by `(octave, top SUB_BITS mantissa bits)`.
pub fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
    ((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
}

/// The inclusive `[lo, hi]` value range of a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let lo = bucket_lo(index);
    let hi = if index + 1 >= NUM_SKETCH_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(index + 1) - 1
    };
    (lo, hi)
}

fn bucket_lo(index: usize) -> u64 {
    let idx = index as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let octave = idx / SUB_BUCKETS - 1; // 0-based extra octave
    let sub = idx % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << octave
}

/// A point-in-time log-linear histogram (also the merge/diff form).
///
/// This is the plain (non-atomic) state: the registry's concurrent
/// recording cells snapshot into this type, and all read-side math
/// (quantiles, merging, epoch diffs) happens here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearHist {
    /// Observations per bucket (see [`bucket_of`]).
    pub buckets: Vec<u64>,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (`0` when empty).
    pub max: u64,
}

impl Default for LogLinearHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHist {
    /// An empty sketch (the merge identity).
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_SKETCH_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Records `n` observations of the same value.
    pub fn observe_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].saturating_add(n); // lint: allow(panic-path) bucket_of() < NUM_SKETCH_BUCKETS for all u64
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of observations (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Folds another sketch into this one. Commutative, associative, and
    /// `merge(identity)` is a no-op — the same multiset of observations
    /// yields the same snapshot regardless of split or order.
    pub fn merge(&mut self, other: &LogLinearHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sketch of observations in `self` but not in `earlier`, assuming
    /// `earlier` is a prefix snapshot of the same accumulator (bucket-wise
    /// `self ≥ earlier`). Used for epoch-window views; `min`/`max` are
    /// re-derived from the surviving buckets, so they are bucket-bound
    /// approximations within the usual relative-error bound.
    pub fn diff(&self, earlier: &LogLinearHist) -> LogLinearHist {
        let mut out = LogLinearHist::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let d = a.saturating_sub(*b);
            out.buckets[i] = d;
            if d > 0 {
                let (lo, hi) = bucket_bounds(i);
                out.min = out.min.min(lo.max(self.min));
                out.max = out.max.max(hi.min(self.max));
            }
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The value at quantile `q ∈ [0, 1]`, or `0` when empty.
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// observation, clamped to the observed `[min, max]`, so the result
    /// never under-reports and over-reports by at most [`RELATIVE_ERROR`].
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum as f64 / count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sub_buckets() {
        for v in 0..SUB_BUCKETS {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert_eq!((lo, hi), (v, v), "value {v} must land in an exact bucket");
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        let mut prev_hi = None;
        for i in 0..NUM_SKETCH_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} inverted");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX), "layout must cover all of u64");
    }

    #[test]
    fn bucket_of_agrees_with_bounds() {
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside its bucket [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUB_BUCKETS as usize..NUM_SKETCH_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo;
            // width/lo ≤ 1/SUB_BUCKETS for every log-linear bucket.
            assert!(
                (width as f64) <= (lo as f64) * RELATIVE_ERROR,
                "bucket {i} [{lo},{hi}] too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = LogLinearHist::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        for (q, truth) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let est = h.quantile(q);
            assert!(est >= truth, "q{q} under-reports: {est} < {truth}");
            assert!(
                est as f64 <= truth as f64 * (1.0 + RELATIVE_ERROR) + 1.0,
                "q{q} over-reports: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn constant_distribution_is_exact() {
        let mut h = LogLinearHist::new();
        h.observe_n(123_456, 10);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456);
        }
        assert_eq!((h.min, h.max, h.sum), (123_456, 123_456, 1_234_560));
    }

    #[test]
    fn empty_sketch_behaviour() {
        let h = LogLinearHist::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn saturation_at_u64_max() {
        let mut h = LogLinearHist::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn diff_recovers_window_observations() {
        let mut cum = LogLinearHist::new();
        cum.observe_n(10, 5);
        let epoch0 = cum.clone();
        cum.observe_n(1000, 3);
        let d = cum.diff(&epoch0);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum, 3000);
        let (lo, hi) = bucket_bounds(bucket_of(1000));
        assert!(d.min >= lo && d.max <= hi.max(cum.max));
    }
}
