//! The wall clock — the **only** module in the workspace allowed to touch
//! `std::time::Instant`.
//!
//! ghost-lint's `nondeterminism` and `obs-clock` rules pin the exception to
//! this file: binaries and benches construct a [`WallClock`] here and hand
//! it to a [`Recorder`](crate::Recorder); library code only ever sees it as
//! a `&dyn Clock` and cannot tell it apart from a
//! [`LogicalClock`](crate::LogicalClock) other than via
//! [`is_wall`](crate::Clock::is_wall). Wall readings are runtime facts:
//! recorders route them to the volatile lane (manifest only), keeping the
//! deterministic event log byte-identical across runs and thread counts.

use crate::clock::Clock;
use std::time::Instant;

/// A real monotonic clock reporting microseconds since construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Starts a wall clock at "now". Only binaries and benches may call
    /// this — ghost-lint's `obs-clock` rule rejects `WallClock` in library
    /// source.
    #[must_use]
    #[allow(clippy::disallowed_methods)] // the one sanctioned Instant::now
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn is_wall(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_wall() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(c.is_wall());
    }
}
