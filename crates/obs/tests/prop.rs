//! Property tests for the log-linear latency sketch (DESIGN.md §15): the
//! quantile relative-error contract, the merge monoid laws that make
//! sharded snapshots order-independent, and saturation at `u64::MAX`.

use ghosts_obs::{LogLinearHist, RELATIVE_ERROR};
use proptest::prelude::*;

/// Builds a sketch from a slice of observations.
fn sketch_of(values: &[u64]) -> LogLinearHist {
    let mut h = LogLinearHist::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// The exact quantile the sketch approximates: the same `⌈q·count⌉` rank
/// convention as [`LogLinearHist::quantile`], read off the sorted values.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let count = sorted.len() as u64;
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    sorted[rank as usize - 1]
}

/// Observation values spanning every octave, not just the small ones a
/// naive `any::<u64>()` range would favour.
fn obs_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..65_536,
        65_536u64..1 << 40,
        (1u64 << 40)..u64::MAX,
        Just(u64::MAX),
    ]
}

proptest! {
    /// A sketch quantile never under-reports the exact quantile and
    /// over-reports by at most [`RELATIVE_ERROR`] (plus one unit of
    /// integer rounding slack at bucket edges).
    #[test]
    fn quantile_is_within_the_relative_error_bound(
        values in proptest::collection::vec(obs_value(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = sketch_of(&values);
        let approx = h.quantile(q);
        let exact = exact_quantile(&values, q);
        prop_assert!(approx >= exact, "under-reported: {approx} < {exact}");
        let bound = exact as f64 * (1.0 + RELATIVE_ERROR) + 1.0;
        prop_assert!(
            (approx as f64) <= bound,
            "over-reported: {approx} > {exact} * (1 + {RELATIVE_ERROR}) + 1"
        );
    }

    /// Merging is commutative: the shard visit order of a snapshot pass
    /// cannot change the merged sketch.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(obs_value(), 0..100),
        b in proptest::collection::vec(obs_value(), 0..100),
    ) {
        let (ha, hb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: grouping shards differently (per-worker,
    /// per-epoch, all-at-once) yields the same sketch.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(obs_value(), 0..60),
        b in proptest::collection::vec(obs_value(), 0..60),
        c in proptest::collection::vec(obs_value(), 0..60),
    ) {
        let (ha, hb, hc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = ha.clone(); // (a ⊕ b) ⊕ c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a ⊕ (b ⊕ c)
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty sketch is the merge identity on both sides, and a merged
    /// sketch equals the sketch of the concatenated observations.
    #[test]
    fn empty_is_the_merge_identity(
        values in proptest::collection::vec(obs_value(), 0..100),
    ) {
        let h = sketch_of(&values);
        let mut left = LogLinearHist::new();
        left.merge(&h);
        prop_assert_eq!(&left, &h);
        let mut right = h.clone();
        right.merge(&LogLinearHist::new());
        prop_assert_eq!(&right, &h);
    }

    /// Split-then-merge equals observing everything in one sketch — the
    /// exact guarantee the sharded registry cells rely on.
    #[test]
    fn merge_equals_single_sketch_of_concatenation(
        a in proptest::collection::vec(obs_value(), 0..100),
        b in proptest::collection::vec(obs_value(), 0..100),
    ) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let mut all = a;
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, sketch_of(&all));
    }

    /// Extreme values saturate instead of wrapping: sums pin at
    /// `u64::MAX`, counts stay exact, and quantiles still land on the
    /// observed maximum.
    #[test]
    fn u64_max_saturates_without_wrapping(
        values in proptest::collection::vec(obs_value(), 0..50),
        maxes in 1usize..8,
    ) {
        let mut h = sketch_of(&values);
        for _ in 0..maxes {
            h.observe(u64::MAX);
        }
        prop_assert_eq!(h.sum, u64::MAX, "sum must saturate, not wrap");
        prop_assert_eq!(h.max, u64::MAX);
        prop_assert_eq!(h.count(), (values.len() + maxes) as u64);
        prop_assert_eq!(h.quantile(1.0), u64::MAX);
    }
}

/// Counted observation of `u64::MAX` saturates the bucket count itself.
#[test]
fn observe_n_saturates_bucket_counts() {
    let mut h = LogLinearHist::new();
    h.observe_n(u64::MAX, u64::MAX);
    h.observe_n(u64::MAX, u64::MAX);
    assert_eq!(h.count(), u64::MAX);
    assert_eq!(h.sum, u64::MAX);
    assert_eq!(h.quantile(0.5), u64::MAX);
}
