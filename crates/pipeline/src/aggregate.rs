//! Dataset summaries: the per-source, per-year unique-IP and /24 counts of
//! Table 2, and general window-level aggregation helpers.

use crate::dataset::WindowData;
use ghosts_net::{AddrSet, SubnetSet};
use ghosts_obs::{FieldValue, Scope, StageProfiler};

/// One row of a Table-2-style summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceYearSummary {
    /// Source name.
    pub source: String,
    /// Calendar year.
    pub year: u16,
    /// Unique IPv4 addresses observed in that year (millions not applied).
    pub unique_ips: u64,
    /// Unique /24 subnets observed in that year.
    pub unique_subnets: u64,
}

/// Summarises per-source unique IPs//24s per calendar year from per-quarter
/// observation sets. `per_quarter` maps `(source_name, quarter)` to that
/// quarter's address set; quarters with no data are simply absent.
pub fn yearly_summaries<'a, I>(per_quarter: I) -> Vec<SourceYearSummary>
where
    I: IntoIterator<Item = (&'a str, crate::time::Quarter, &'a AddrSet)>,
{
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<(String, u16), AddrSet> = BTreeMap::new();
    for (name, quarter, set) in per_quarter {
        let key = (name.to_string(), quarter.year());
        acc.entry(key).or_default().union_with(set);
    }
    acc.into_iter()
        .map(|((source, year), set)| SourceYearSummary {
            source,
            year,
            unique_ips: set.len(),
            unique_subnets: set.to_subnet24().len(),
        })
        .collect()
}

/// Counts observed addresses and /24s for a window (union over sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowObserved {
    /// Unique addresses across all sources.
    pub ips: u64,
    /// Unique /24 subnets across all sources.
    pub subnets: u64,
}

/// Computes the union counts for a window.
pub fn window_observed(data: &WindowData) -> WindowObserved {
    window_observed_traced(data, &Scope::disabled())
}

/// [`window_observed`] with tracing: records a `window_observed` event
/// (per-window union sizes plus per-source sizes) and bumps the
/// `aggregate.*` counters in `obs`.
pub fn window_observed_traced(data: &WindowData, obs: &Scope) -> WindowObserved {
    let u = data.observed_union();
    let observed = WindowObserved {
        ips: u.len(),
        subnets: u.to_subnet24().len(),
    };
    obs.add("aggregate.windows", 1);
    obs.add("aggregate.union_ips", observed.ips);
    obs.event(
        "window_observed",
        &[
            ("sources", FieldValue::U64(data.sources.len() as u64)),
            ("ips", FieldValue::U64(observed.ips)),
            ("subnets", FieldValue::U64(observed.subnets)),
        ],
    );
    if obs.is_enabled() {
        for (i, s) in data.sources.iter().enumerate() {
            let subs: SubnetSet = s.subnets();
            obs.child_idx("source", i as u64).event(
                "source_observed",
                &[
                    ("name", FieldValue::Str(s.name.clone())),
                    ("ips", FieldValue::U64(s.addrs.len())),
                    ("subnets", FieldValue::U64(subs.len())),
                ],
            );
        }
    }
    observed
}

/// [`window_observed_traced`] with stage attribution: the union counting
/// is charged to a `window_observed` stage of `profile`.
pub fn window_observed_profiled(
    data: &WindowData,
    obs: &Scope,
    profile: &StageProfiler,
) -> WindowObserved {
    let _stage = profile.enter("window_observed");
    window_observed_traced(data, obs)
}

/// Per-source observation sizes for a window (the per-dataset columns the
/// cross-validation normalises against).
pub fn per_source_sizes(data: &WindowData) -> Vec<(String, u64, u64)> {
    data.sources
        .iter()
        .map(|s| {
            let subs: SubnetSet = s.subnets();
            (s.name.clone(), s.addrs.len(), subs.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SourceDataset;
    use crate::time::{Quarter, TimeWindow};

    #[test]
    fn yearly_unions_dedupe_across_quarters() {
        let q1 = Quarter::from_year_quarter(2011, 1);
        let q2 = Quarter::from_year_quarter(2011, 2);
        let q2012 = Quarter::from_year_quarter(2012, 1);
        let a: AddrSet = [1u32, 2].into_iter().collect();
        let b: AddrSet = [2u32, 3].into_iter().collect();
        let c: AddrSet = [9u32].into_iter().collect();
        let rows = yearly_summaries([("WIKI", q1, &a), ("WIKI", q2, &b), ("WIKI", q2012, &c)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].year, 2011);
        assert_eq!(rows[0].unique_ips, 3); // {1,2,3}
        assert_eq!(rows[1].year, 2012);
        assert_eq!(rows[1].unique_ips, 1);
    }

    #[test]
    fn window_union_counts() {
        let wd = WindowData {
            window: TimeWindow {
                start: Quarter(0),
                len: 4,
            },
            sources: vec![
                SourceDataset::new("A", [0x01000001u32, 0x01000002].into_iter().collect(), true),
                SourceDataset::new("B", [0x01000002u32, 0x02000001].into_iter().collect(), true),
            ],
        };
        let obs = window_observed(&wd);
        assert_eq!(obs.ips, 3);
        assert_eq!(obs.subnets, 2);
        let sizes = per_source_sizes(&wd);
        assert_eq!(sizes[0], ("A".to_string(), 2, 1));
        assert_eq!(sizes[1], ("B".to_string(), 2, 2));
    }
}
