//! Per-source, per-window observation datasets.

use crate::time::TimeWindow;
use ghosts_net::{AddrSet, SubnetSet};

/// The observations of one measurement source over one time window.
#[derive(Debug, Clone)]
pub struct SourceDataset {
    /// Source name as in Table 2 ("IPING", "WIKI", …).
    pub name: String,
    /// Unique observed IPv4 addresses.
    pub addrs: AddrSet,
    /// Whether the source is structurally spoof-free. Server logs record
    /// only completed TCP sessions (WIKI/SPAM/MLAB/WEB/GAME) and active
    /// probes only responses (IPING/TPING), so those are spoof-free; the
    /// NetFlow sources (SWIN/CALT) are not (§4.4–4.5).
    pub spoof_free: bool,
}

impl SourceDataset {
    /// Creates a dataset.
    pub fn new(name: impl Into<String>, addrs: AddrSet, spoof_free: bool) -> Self {
        Self {
            name: name.into(),
            addrs,
            spoof_free,
        }
    }

    /// The dataset's unique /24 subnets.
    pub fn subnets(&self) -> SubnetSet {
        self.addrs.to_subnet24()
    }
}

/// All source datasets for one window.
#[derive(Debug, Clone)]
pub struct WindowData {
    /// The window the data cover.
    pub window: TimeWindow,
    /// One dataset per active source (sources not yet collecting in this
    /// window are absent).
    pub sources: Vec<SourceDataset>,
}

impl WindowData {
    /// The union of every source's addresses ("observed" in the paper's
    /// terminology).
    pub fn observed_union(&self) -> AddrSet {
        let mut u = AddrSet::new();
        for s in &self.sources {
            u.union_with(&s.addrs);
        }
        u
    }

    /// The union of the spoof-free sources only (the reference set for the
    /// spoof filter's overlap test).
    pub fn spoof_free_union(&self) -> AddrSet {
        let mut u = AddrSet::new();
        for s in &self.sources {
            if s.spoof_free {
                u.union_with(&s.addrs);
            }
        }
        u
    }

    /// Borrowed address sets in source order (the layout the contingency
    /// table builders consume).
    pub fn addr_sets(&self) -> Vec<&AddrSet> {
        self.sources.iter().map(|s| &s.addrs).collect()
    }

    /// The dataset with the given name, if present.
    pub fn source(&self, name: &str) -> Option<&SourceDataset> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Removes the dataset with the given name, returning it.
    pub fn take_source(&mut self, name: &str) -> Option<SourceDataset> {
        let idx = self.sources.iter().position(|s| s.name == name)?;
        Some(self.sources.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Quarter, TimeWindow};

    fn window() -> TimeWindow {
        TimeWindow {
            start: Quarter(0),
            len: 4,
        }
    }

    fn make(name: &str, addrs: &[u32], clean: bool) -> SourceDataset {
        SourceDataset::new(name, addrs.iter().copied().collect(), clean)
    }

    #[test]
    fn unions_and_lookup() {
        let wd = WindowData {
            window: window(),
            sources: vec![
                make("WIKI", &[1, 2, 3], true),
                make("SWIN", &[3, 4, 5], false),
            ],
        };
        assert_eq!(wd.observed_union().len(), 5);
        assert_eq!(wd.spoof_free_union().len(), 3);
        assert!(wd.source("WIKI").is_some());
        assert!(wd.source("CALT").is_none());
        assert_eq!(wd.addr_sets().len(), 2);
    }

    #[test]
    fn subnets_project() {
        let d = make("WEB", &[0x0a000001, 0x0a000002, 0x0a000101], true);
        assert_eq!(d.subnets().len(), 2);
    }

    #[test]
    fn take_source_removes() {
        let mut wd = WindowData {
            window: window(),
            sources: vec![make("A", &[1], true), make("B", &[2], false)],
        };
        let taken = wd.take_source("A").unwrap();
        assert_eq!(taken.name, "A");
        assert_eq!(wd.sources.len(), 1);
        assert!(wd.take_source("A").is_none());
    }
}
