//! Address filtering against bogon and unrouted space (§4.4): "We filtered
//! out multicast and private addresses (e.g., 10.0.0.0/8), and those in
//! unallocated or unrouted space."

use ghosts_addrplane::AddrPlane;
use ghosts_net::bogons::is_reserved;
use ghosts_net::{AddrSet, RoutedTable};
use ghosts_obs::{FieldValue, Scope, StageProfiler};

/// Statistics of a filtering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Addresses dropped because they are in reserved/bogon space.
    pub dropped_reserved: u64,
    /// Addresses dropped because they are not publicly routed.
    pub dropped_unrouted: u64,
    /// Addresses kept.
    pub kept: u64,
}

/// Returns the subset of `set` that is publicly routed and not reserved,
/// with counts of what was dropped.
pub fn filter_to_routed(set: &AddrSet, routed: &RoutedTable) -> (AddrSet, FilterStats) {
    filter_to_routed_traced(set, routed, &Scope::disabled())
}

/// [`filter_to_routed`] with tracing: records a `filter` event with the
/// drop/keep breakdown and bumps the `filter.*` pipeline counters in `obs`.
pub fn filter_to_routed_traced(
    set: &AddrSet,
    routed: &RoutedTable,
    obs: &Scope,
) -> (AddrSet, FilterStats) {
    let mut out = AddrSet::new();
    let mut stats = FilterStats::default();
    for addr in set.iter() {
        if is_reserved(addr) {
            stats.dropped_reserved += 1;
        } else if !routed.is_routed(addr) {
            stats.dropped_unrouted += 1;
        } else {
            out.insert(addr);
            stats.kept += 1;
        }
    }
    obs.add("filter.dropped_reserved", stats.dropped_reserved);
    obs.add("filter.dropped_unrouted", stats.dropped_unrouted);
    obs.add("filter.kept", stats.kept);
    obs.event(
        "filter",
        &[
            ("input", FieldValue::U64(set.len())),
            ("dropped_reserved", FieldValue::U64(stats.dropped_reserved)),
            ("dropped_unrouted", FieldValue::U64(stats.dropped_unrouted)),
            ("kept", FieldValue::U64(stats.kept)),
        ],
    );
    (out, stats)
}

/// Precomputed bitmap masks for word-wise filtering.
///
/// [`filter_to_routed`] walks the routed trie once per observed address.
/// When the same routed table filters many per-source sets (every window
/// of every source), it is cheaper to expand the table into a full-space
/// [`AddrPlane`] once and reduce each set with boolean word kernels:
/// `kept = set ∧ (routed ∖ reserved)`, with the drop counts read off two
/// popcounts. Produces bit-identical results to the per-address path.
#[derive(Debug, Clone)]
pub struct RoutedMask {
    /// Publicly routed, non-reserved space: the addresses a source
    /// observation is allowed to keep.
    keep: AddrPlane,
    /// Reserved/bogon space (independent of the routed table).
    reserved: AddrPlane,
}

impl RoutedMask {
    /// Expands `routed` into keep/reserved planes. Cost is proportional to
    /// the routed address count (word-filled, not per-address).
    pub fn build(routed: &RoutedTable) -> Self {
        let mut reserved = AddrPlane::new();
        for p in ghosts_net::bogons::reserved_prefixes() {
            reserved.fill_prefix(p.base(), p.len());
        }
        let mut keep = AddrPlane::new();
        for p in routed.prefixes() {
            keep.fill_prefix(p.base(), p.len());
        }
        keep.subtract(&reserved);
        Self { keep, reserved }
    }

    /// Word-wise [`filter_to_routed`]: same outputs, no per-address loop.
    pub fn filter(&self, set: &AddrSet) -> (AddrSet, FilterStats) {
        let dropped_reserved = set.plane().intersection_count(&self.reserved);
        let kept_plane = set.plane().intersect(&self.keep);
        let kept = kept_plane.len();
        let stats = FilterStats {
            dropped_reserved,
            dropped_unrouted: set.len() - dropped_reserved - kept,
            kept,
        };
        (AddrSet::from_plane(kept_plane), stats)
    }

    /// [`RoutedMask::filter`] with the same tracing surface as
    /// [`filter_to_routed_traced`].
    pub fn filter_traced(&self, set: &AddrSet, obs: &Scope) -> (AddrSet, FilterStats) {
        let (out, stats) = self.filter(set);
        obs.add("filter.dropped_reserved", stats.dropped_reserved);
        obs.add("filter.dropped_unrouted", stats.dropped_unrouted);
        obs.add("filter.kept", stats.kept);
        obs.event(
            "filter",
            &[
                ("input", FieldValue::U64(set.len())),
                ("dropped_reserved", FieldValue::U64(stats.dropped_reserved)),
                ("dropped_unrouted", FieldValue::U64(stats.dropped_unrouted)),
                ("kept", FieldValue::U64(stats.kept)),
            ],
        );
        (out, stats)
    }
}

/// [`filter_to_routed_traced`] with stage attribution: the whole pass is
/// charged to a `filter_routed` stage of `profile` (call count
/// deterministic, duration in the profiler's clock).
pub fn filter_to_routed_profiled(
    set: &AddrSet,
    routed: &RoutedTable,
    obs: &Scope,
    profile: &StageProfiler,
) -> (AddrSet, FilterStats) {
    let _stage = profile.enter("filter_routed");
    filter_to_routed_traced(set, routed, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_net::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn drops_reserved_and_unrouted() {
        let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().unwrap()]);
        let set: AddrSet = [
            a("8.8.8.8"),     // routed, public → keep
            a("8.0.0.1"),     // routed, public → keep
            a("10.0.0.1"),    // reserved
            a("192.168.1.1"), // reserved
            a("9.9.9.9"),     // public but unrouted
        ]
        .into_iter()
        .collect();
        let (kept, stats) = filter_to_routed(&set, &routed);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(a("8.8.8.8")));
        assert_eq!(stats.dropped_reserved, 2);
        assert_eq!(stats.dropped_unrouted, 1);
        assert_eq!(stats.kept, 2);
    }

    #[test]
    fn empty_set_passes_through() {
        let routed = RoutedTable::new();
        let (kept, stats) = filter_to_routed(&AddrSet::new(), &routed);
        assert!(kept.is_empty());
        assert_eq!(stats, FilterStats::default());
    }

    #[test]
    fn mask_filter_matches_per_address_filter() {
        let routed = RoutedTable::from_prefixes([
            "8.0.0.0/8".parse().unwrap(),
            "10.0.0.0/8".parse().unwrap(), // misconfigured private announce
            "203.0.0.0/12".parse().unwrap(),
        ]);
        let set: AddrSet = [
            a("8.8.8.8"),
            a("8.0.0.1"),
            a("8.255.255.255"),
            a("10.0.0.1"),
            a("192.168.1.1"),
            a("9.9.9.9"),
            a("203.0.113.7"),
            a("255.255.255.255"),
        ]
        .into_iter()
        .collect();
        let mask = RoutedMask::build(&routed);
        let (kept_slow, stats_slow) = filter_to_routed(&set, &routed);
        let (kept_fast, stats_fast) = mask.filter(&set);
        assert_eq!(stats_fast, stats_slow);
        assert_eq!(kept_fast.len(), kept_slow.len());
        assert!(kept_fast.iter().eq(kept_slow.iter()));
    }

    #[test]
    fn reserved_checked_before_routing() {
        // A (misconfigured) routed table advertising private space must not
        // resurrect reserved addresses.
        let routed = RoutedTable::from_prefixes(["10.0.0.0/8".parse().unwrap()]);
        let set: AddrSet = [a("10.1.2.3")].into_iter().collect();
        let (kept, stats) = filter_to_routed(&set, &routed);
        assert!(kept.is_empty());
        assert_eq!(stats.dropped_reserved, 1);
    }
}
