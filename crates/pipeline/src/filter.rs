//! Address filtering against bogon and unrouted space (§4.4): "We filtered
//! out multicast and private addresses (e.g., 10.0.0.0/8), and those in
//! unallocated or unrouted space."

use ghosts_net::bogons::is_reserved;
use ghosts_net::{AddrSet, RoutedTable};
use ghosts_obs::{FieldValue, Scope, StageProfiler};

/// Statistics of a filtering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Addresses dropped because they are in reserved/bogon space.
    pub dropped_reserved: u64,
    /// Addresses dropped because they are not publicly routed.
    pub dropped_unrouted: u64,
    /// Addresses kept.
    pub kept: u64,
}

/// Returns the subset of `set` that is publicly routed and not reserved,
/// with counts of what was dropped.
pub fn filter_to_routed(set: &AddrSet, routed: &RoutedTable) -> (AddrSet, FilterStats) {
    filter_to_routed_traced(set, routed, &Scope::disabled())
}

/// [`filter_to_routed`] with tracing: records a `filter` event with the
/// drop/keep breakdown and bumps the `filter.*` pipeline counters in `obs`.
pub fn filter_to_routed_traced(
    set: &AddrSet,
    routed: &RoutedTable,
    obs: &Scope,
) -> (AddrSet, FilterStats) {
    let mut out = AddrSet::new();
    let mut stats = FilterStats::default();
    for addr in set.iter() {
        if is_reserved(addr) {
            stats.dropped_reserved += 1;
        } else if !routed.is_routed(addr) {
            stats.dropped_unrouted += 1;
        } else {
            out.insert(addr);
            stats.kept += 1;
        }
    }
    obs.add("filter.dropped_reserved", stats.dropped_reserved);
    obs.add("filter.dropped_unrouted", stats.dropped_unrouted);
    obs.add("filter.kept", stats.kept);
    obs.event(
        "filter",
        &[
            ("input", FieldValue::U64(set.len())),
            ("dropped_reserved", FieldValue::U64(stats.dropped_reserved)),
            ("dropped_unrouted", FieldValue::U64(stats.dropped_unrouted)),
            ("kept", FieldValue::U64(stats.kept)),
        ],
    );
    (out, stats)
}

/// [`filter_to_routed_traced`] with stage attribution: the whole pass is
/// charged to a `filter_routed` stage of `profile` (call count
/// deterministic, duration in the profiler's clock).
pub fn filter_to_routed_profiled(
    set: &AddrSet,
    routed: &RoutedTable,
    obs: &Scope,
    profile: &StageProfiler,
) -> (AddrSet, FilterStats) {
    let _stage = profile.enter("filter_routed");
    filter_to_routed_traced(set, routed, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_net::addr_from_str;

    fn a(s: &str) -> u32 {
        addr_from_str(s).unwrap()
    }

    #[test]
    fn drops_reserved_and_unrouted() {
        let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().unwrap()]);
        let set: AddrSet = [
            a("8.8.8.8"),     // routed, public → keep
            a("8.0.0.1"),     // routed, public → keep
            a("10.0.0.1"),    // reserved
            a("192.168.1.1"), // reserved
            a("9.9.9.9"),     // public but unrouted
        ]
        .into_iter()
        .collect();
        let (kept, stats) = filter_to_routed(&set, &routed);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(a("8.8.8.8")));
        assert_eq!(stats.dropped_reserved, 2);
        assert_eq!(stats.dropped_unrouted, 1);
        assert_eq!(stats.kept, 2);
    }

    #[test]
    fn empty_set_passes_through() {
        let routed = RoutedTable::new();
        let (kept, stats) = filter_to_routed(&AddrSet::new(), &routed);
        assert!(kept.is_empty());
        assert_eq!(stats, FilterStats::default());
    }

    #[test]
    fn reserved_checked_before_routing() {
        // A (misconfigured) routed table advertising private space must not
        // resurrect reserved addresses.
        let routed = RoutedTable::from_prefixes(["10.0.0.0/8".parse().unwrap()]);
        let set: AddrSet = [a("10.1.2.3")].into_iter().collect();
        let (kept, stats) = filter_to_routed(&set, &routed);
        assert!(kept.is_empty());
        assert_eq!(stats.dropped_reserved, 1);
    }
}
