//! # ghosts-pipeline
//!
//! The data-processing pipeline of the *Capturing Ghosts* reproduction:
//! everything between raw per-source observations and the contingency
//! tables the estimator consumes.
//!
//! * [`time`] — quarters and the paper's eleven overlapping 12-month
//!   windows (§4.3).
//! * [`dataset`] — per-source, per-window observation sets.
//! * [`filter`] — bogon and unrouted-space filtering (§4.4).
//! * [`spoof_filter`] — the two-stage spoofed-address removal heuristic for
//!   the NetFlow sources (§4.5).
//! * [`aggregate`] — Table-2-style per-source/per-year summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod dataset;
pub mod filter;
pub mod spoof_filter;
pub mod time;

pub use dataset::{SourceDataset, WindowData};
pub use filter::{filter_to_routed, filter_to_routed_traced, RoutedMask};
pub use spoof_filter::{
    filter_spoofed, filter_spoofed_traced, SpoofFilterConfig, SpoofFilterReport,
};
pub use time::{paper_windows, Quarter, TimeWindow};
