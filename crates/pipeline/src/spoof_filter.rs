//! Removal of spoofed IPv4 addresses from NetFlow-derived datasets (§4.5).
//!
//! SWIN and CALT record only source addresses of incoming flows, so they
//! contain spoofed addresses (random-source DDoS, nmap decoy scans) that do
//! not represent used addresses. The paper's heuristic assumes spoofed
//! addresses are uniformly distributed over the IPv4 space and works in two
//! stages:
//!
//! 1. Estimate the per-/8 spoof count `S` from "empty" /8 prefixes that no
//!    spoof-free source sees used, giving the per-address spoof probability
//!    `p = S / 2²⁴`. Remove every /24 that has fewer than `m` observed IPs
//!    and no overlap with the spoof-free datasets, where `m` is the
//!    smallest `k` with `Pr[Binomial(256, p) > k] < 10⁻⁸`.
//! 2. In the remaining (used) space, remove addresses probabilistically:
//!    the expected leftover spoof count per /8 gives `Pr(V)` (an address is
//!    valid), the last-byte distribution of the spoof-free sources gives
//!    `P(B|V)`, and Bayes' rule yields the per-address retention
//!    probability `P(V|B)` (spoofed addresses have uniform last bytes).

use ghosts_net::{AddrSet, Prefix, SubnetSet};
use ghosts_obs::{FieldValue, Scope, StageProfiler};
use ghosts_stats::Binomial;
use rand::Rng;

/// Configuration of the spoof filter.
#[derive(Debug, Clone)]
pub struct SpoofFilterConfig {
    /// Tail probability for the /24 removal threshold (`10⁻⁸` in §4.5).
    pub alpha: f64,
    /// A /8 counts as "empty" if the spoof-free sources see at most this
    /// many addresses in it (the paper's empty /8s had "no more than a few
    /// tens of addresses" from non-spoofed sources).
    pub empty_eight_max_clean: u64,
    /// How many empty /8s to use for the spoof-rate estimate (the paper
    /// used six).
    pub empty_eight_count: usize,
    /// Additive smoothing for the last-byte histogram `P(B|V)`.
    pub byte_smoothing: f64,
    /// Per-/8 sizes of the space spoofed traffic can land in. The paper
    /// uses the full 2²⁴ per /8 (`None`); at mini-Internet scale the
    /// spoofable universe is the routed space, so spoof rates must be
    /// normalised by the per-/8 routed size instead (see DESIGN.md §2).
    pub per_eight_universe: Option<Box<[u64; 256]>>,
    /// Whether to run the Bayes last-byte thinning (stage 2). Disabling it
    /// leaves spoofed addresses inside used /24s — the ablation DESIGN.md
    /// §6 calls out.
    pub bayes_stage2: bool,
}

impl Default for SpoofFilterConfig {
    fn default() -> Self {
        Self {
            alpha: 1e-8,
            empty_eight_max_clean: 40,
            empty_eight_count: 6,
            byte_smoothing: 1.0,
            per_eight_universe: None,
            bayes_stage2: true,
        }
    }
}

impl SpoofFilterConfig {
    /// A configuration normalising spoof rates by a per-/8 universe (the
    /// routed space at mini-Internet scale).
    pub fn with_universe(per_eight: [u64; 256]) -> Self {
        Self {
            per_eight_universe: Some(Box::new(per_eight)),
            ..Self::default()
        }
    }

    /// The spoofable addresses in /8 `octet`.
    fn universe_of(&self, octet: usize) -> f64 {
        match &self.per_eight_universe {
            // lint: allow(panic-path) octet < 256 (derived from a u8); the table has 256 slots
            Some(u) => u[octet] as f64,
            // lint: allow(counting-overflow) constant shift: 2^24 fits comfortably in u32
            None => f64::from(1u32 << 24),
        }
    }
}

/// Outcome of a spoof-filtering pass.
#[derive(Debug, Clone)]
pub struct SpoofFilterReport {
    /// The filtered address set.
    pub filtered: AddrSet,
    /// Estimated spoofed addresses per /8, `S`.
    pub s_estimate: f64,
    /// Estimated per-address spoof probability `p` (S over the /8's
    /// spoofable universe).
    pub rate: f64,
    /// The stage-1 threshold `m`.
    pub m: u64,
    /// The /8s used as the "empty" reference.
    pub empty_eights: Vec<u8>,
    /// /24 subnets removed in stage 1.
    pub removed_subnets: u64,
    /// Addresses removed in stage 1 (inside removed /24s).
    pub removed_stage1: u64,
    /// Addresses removed in stage 2 (Bayes last-byte rule).
    pub removed_stage2: u64,
}

impl SpoofFilterReport {
    /// Records this report into `obs`: a `spoof_filter` event with the
    /// estimate and removal breakdown, plus `spoof.*` counters.
    ///
    /// Note: stage 2 is driven by the caller's RNG, so its removal counts
    /// are deterministic only under a seeded RNG — callers feeding a
    /// deterministic trace must use `component_rng` or similar.
    pub fn record(&self, obs: &Scope) {
        obs.add("spoof.removed_subnets", self.removed_subnets);
        obs.add("spoof.removed_stage1", self.removed_stage1);
        obs.add("spoof.removed_stage2", self.removed_stage2);
        obs.event(
            "spoof_filter",
            &[
                ("s_estimate", FieldValue::F64(self.s_estimate)),
                ("rate", FieldValue::F64(self.rate)),
                ("m", FieldValue::U64(self.m)),
                (
                    "empty_eights",
                    FieldValue::U64(self.empty_eights.len() as u64),
                ),
                ("removed_subnets", FieldValue::U64(self.removed_subnets)),
                ("removed_stage1", FieldValue::U64(self.removed_stage1)),
                ("removed_stage2", FieldValue::U64(self.removed_stage2)),
                ("kept", FieldValue::U64(self.filtered.len())),
            ],
        );
    }
}

/// Finds the `count` /8 prefixes that the spoof-free sources see least
/// (candidates for the paper's 'empty' /8s, e.g. 53/8 or 55/8), excluding
/// reserved space and /8s the spoof-free sources see more than
/// `max_clean` addresses in. Ties break toward lower /8 numbers.
pub fn detect_empty_eights(
    spoof_free: &AddrSet,
    target: &AddrSet,
    cfg: &SpoofFilterConfig,
) -> Vec<u8> {
    let clean_counts = spoof_free.per_octet_counts();
    let target_counts = target.per_octet_counts();
    let mut candidates: Vec<(u64, u8)> = (0u16..256)
        .filter_map(|o| {
            let octet = o as u8;
            // Skip reserved first octets, /8s outside the spoofable
            // universe, and /8s without target traffic (no information
            // about the spoof rate there).
            if ghosts_net::bogons::is_reserved(u32::from(octet) << 24) {
                return None;
            }
            if ghosts_stats::approx::is_exact_zero(cfg.universe_of(o as usize)) {
                return None;
            }
            if clean_counts[o as usize] > cfg.empty_eight_max_clean {
                return None;
            }
            if target_counts[o as usize] == 0 {
                return None;
            }
            Some((clean_counts[o as usize], octet))
        })
        .collect();
    candidates.sort();
    candidates
        .into_iter()
        .take(cfg.empty_eight_count)
        .map(|(_, o)| o)
        .collect()
}

/// Runs the full two-stage filter on `target` (a SWIN/CALT window set),
/// using `spoof_free` (the union of the spoof-free datasets) as the
/// reference. `rng` drives the probabilistic stage-2 removals.
pub fn filter_spoofed<R: Rng + ?Sized>(
    target: &AddrSet,
    spoof_free: &AddrSet,
    cfg: &SpoofFilterConfig,
    rng: &mut R,
) -> SpoofFilterReport {
    filter_spoofed_traced(target, spoof_free, cfg, rng, &Scope::disabled())
}

/// [`filter_spoofed`] with tracing: records the resulting
/// [`SpoofFilterReport`] into `obs` (see [`SpoofFilterReport::record`]).
pub fn filter_spoofed_traced<R: Rng + ?Sized>(
    target: &AddrSet,
    spoof_free: &AddrSet,
    cfg: &SpoofFilterConfig,
    rng: &mut R,
    obs: &Scope,
) -> SpoofFilterReport {
    let report = filter_spoofed_inner(target, spoof_free, cfg, rng);
    report.record(obs);
    report
}

/// [`filter_spoofed_traced`] with stage attribution: the whole pass is
/// charged to a `spoof_filter` stage of `profile`.
pub fn filter_spoofed_profiled<R: Rng + ?Sized>(
    target: &AddrSet,
    spoof_free: &AddrSet,
    cfg: &SpoofFilterConfig,
    rng: &mut R,
    obs: &Scope,
    profile: &StageProfiler,
) -> SpoofFilterReport {
    let _stage = profile.enter("spoof_filter");
    filter_spoofed_traced(target, spoof_free, cfg, rng, obs)
}

fn filter_spoofed_inner<R: Rng + ?Sized>(
    target: &AddrSet,
    spoof_free: &AddrSet,
    cfg: &SpoofFilterConfig,
    rng: &mut R,
) -> SpoofFilterReport {
    let empty_eights = detect_empty_eights(spoof_free, target, cfg);

    // --- Spoof rate: S = mean target count over the empty /8s, and the
    // per-address rate p = S / (spoofable universe of the /8). ---
    let target_per_eight = target.per_octet_counts();
    let (s_estimate, rate) = if empty_eights.is_empty() {
        (0.0, 0.0)
    } else {
        let s = empty_eights
            .iter()
            .map(|&o| target_per_eight[o as usize] as f64)
            .sum::<f64>()
            / empty_eights.len() as f64;
        let r = empty_eights
            .iter()
            .map(|&o| target_per_eight[o as usize] as f64 / cfg.universe_of(o as usize))
            .sum::<f64>()
            / empty_eights.len() as f64;
        (s, r.min(1.0))
    };

    if ghosts_stats::approx::is_exact_zero(rate) {
        // Nothing to filter.
        return SpoofFilterReport {
            filtered: target.clone(),
            s_estimate,
            rate,
            m: 0,
            empty_eights,
            removed_subnets: 0,
            removed_stage1: 0,
            removed_stage2: 0,
        };
    }

    let m = Binomial::new(256, rate).upper_tail_threshold(cfg.alpha);

    // --- Stage 1: drop sparse /24s with no spoof-free confirmation. ---
    let clean_subnets: SubnetSet = spoof_free.to_subnet24();
    let mut filtered = AddrSet::new();
    let mut removed_stage1_per_eight = [0u64; 256];
    let mut removed_subnets = 0u64;
    let mut removed_stage1 = 0u64;
    for sub in target.to_subnet24().iter() {
        let base = SubnetSet::subnet_base(sub);
        let p24 = Prefix::new(base, 24);
        let n24 = target.count_in_prefix(p24);
        let confirmed = clean_subnets.contains(sub)
            && (0..256u32).any(|i| {
                let addr = base + i;
                target.contains(addr) && spoof_free.contains(addr)
            });
        if n24 < m && !confirmed {
            removed_subnets += 1;
            removed_stage1 += n24;
            removed_stage1_per_eight[(base >> 24) as usize] += n24;
        } else {
            for i in 0..256u32 {
                let addr = base + i;
                if target.contains(addr) {
                    filtered.insert(addr);
                }
            }
        }
    }

    // --- Stage 2: Bayes last-byte thinning within used space. ---
    // P(B|V) from the spoof-free sources' last-byte histogram.
    let mut byte_hist = [cfg.byte_smoothing; 256];
    let mut total = 256.0 * cfg.byte_smoothing;
    for addr in spoof_free.iter() {
        byte_hist[(addr & 0xff) as usize] += 1.0;
        total += 1.0;
    }
    let p_b_given_v: Vec<f64> = byte_hist.iter().map(|c| c / total).collect();

    let remaining_per_eight = filtered.per_octet_counts();

    // Per-/8 valid probability Pr(V) = (T_i − S'_i) / T_i, where the /8's
    // expected spoof load scales with its spoofable universe.
    let mut pr_valid = [1.0f64; 256];
    for o in 0..256usize {
        let t_i = remaining_per_eight[o] as f64;
        if t_i <= 0.0 {
            continue;
        }
        let expected = rate * cfg.universe_of(o);
        let s_left = (expected - removed_stage1_per_eight[o] as f64).max(0.0);
        pr_valid[o] = ((t_i - s_left) / t_i).clamp(0.0, 1.0);
    }

    let mut removed_stage2 = 0u64;
    let doomed: Vec<u32> = if !cfg.bayes_stage2 {
        Vec::new()
    } else {
        filtered
            .iter()
            .filter(|&addr| {
                // Never remove addresses confirmed used by a spoof-free source.
                if spoof_free.contains(addr) {
                    return false;
                }
                let pv = pr_valid[(addr >> 24) as usize];
                let pb = p_b_given_v[(addr & 0xff) as usize];
                let denom = pv * pb + (1.0 - pv) / 256.0;
                let p_valid_given_b = if denom > 0.0 { pv * pb / denom } else { 0.0 };
                rng.gen::<f64>() >= p_valid_given_b
            })
            .collect()
    };
    for addr in doomed {
        filtered.remove(addr);
        removed_stage2 += 1;
    }

    SpoofFilterReport {
        filtered,
        s_estimate,
        rate,
        m,
        empty_eights,
        removed_subnets,
        removed_stage1,
        removed_stage2,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use ghosts_stats::rng::component_rng;

    /// Builds a "real usage" set: dense /24s with realistic last bytes
    /// (low bytes over-represented), within 60/8.
    fn real_usage(per_subnet: u32, subnets: u32) -> AddrSet {
        let mut s = AddrSet::new();
        for sub in 0..subnets {
            let base = (60u32 << 24) | (sub << 8);
            for i in 1..=per_subnet {
                s.insert(base + (i % 200));
            }
        }
        s
    }

    /// Uniform spoofed addresses over the non-reserved space.
    fn spoofed(count: u64, seed: u64) -> AddrSet {
        let mut rng = component_rng(seed, "spoof-test");
        let mut s = AddrSet::new();
        while s.len() < count {
            let addr: u32 = rng.gen();
            if !ghosts_net::bogons::is_reserved(addr) {
                s.insert(addr);
            }
        }
        s
    }

    #[test]
    fn detect_empty_eights_avoids_used_space() {
        let clean = real_usage(50, 40); // all inside 60/8
        let mut target = clean.clone();
        target.union_with(&spoofed(20_000, 1));
        let cfg = SpoofFilterConfig::default();
        let eights = detect_empty_eights(&clean, &target, &cfg);
        assert_eq!(eights.len(), 6);
        assert!(!eights.contains(&60), "60/8 is used, not empty");
        for &o in &eights {
            assert!(!ghosts_net::bogons::is_reserved(u32::from(o) << 24));
        }
    }

    #[test]
    fn filter_removes_spoof_keeps_real() {
        let clean = real_usage(60, 50);
        let spoof = spoofed(30_000, 2);
        let mut target = clean.clone();
        target.union_with(&spoof);

        let cfg = SpoofFilterConfig::default();
        let mut rng = component_rng(9, "filter");
        let report = filter_spoofed(&target, &clean, &cfg, &mut rng);

        // The spoof-rate estimate should be near 30_000/222-ish usable /8s
        // ≈ 135 per /8 (uniform).
        assert!(
            report.s_estimate > 50.0 && report.s_estimate < 300.0,
            "S = {}",
            report.s_estimate
        );
        assert!(report.m >= 1, "m = {}", report.m);
        // Virtually all spoofed /24s are dropped.
        assert!(
            report.removed_subnets > 25_000,
            "removed {} subnets",
            report.removed_subnets
        );
        // Real usage survives essentially intact: every clean address is in
        // a confirmed /24.
        let kept_real = clean
            .iter()
            .filter(|&a| report.filtered.contains(a))
            .count() as u64;
        assert!(
            kept_real == clean.len(),
            "kept {kept_real} of {} real addresses",
            clean.len()
        );
        // Unfiltered /24 count was wildly inflated; filtered is close to
        // the real one.
        let real24 = clean.to_subnet24().len();
        let unfiltered24 = target.to_subnet24().len();
        let filtered24 = report.filtered.to_subnet24().len();
        assert!(unfiltered24 > 10 * real24);
        // A handful of multi-spoof /24s can survive stage 1 (the paper
        // reports "lower or similar" post-filter counts, not perfection);
        // require >99.9% of the inflation gone.
        assert!(
            filtered24 <= real24 + 25,
            "filtered {filtered24} vs real {real24}"
        );
        assert!(filtered24 * 50 < unfiltered24);
    }

    #[test]
    fn clean_target_unchanged() {
        // No spoofing at all: the estimate is zero and nothing is removed.
        let clean = real_usage(40, 30);
        let cfg = SpoofFilterConfig::default();
        let mut rng = component_rng(3, "filter");
        let report = filter_spoofed(&clean.clone(), &clean, &cfg, &mut rng);
        assert_eq!(report.s_estimate, 0.0);
        assert_eq!(report.filtered.len(), clean.len());
        assert_eq!(report.removed_subnets, 0);
        assert_eq!(report.removed_stage2, 0);
    }

    #[test]
    fn confirmed_addresses_never_removed() {
        let clean = real_usage(5, 100); // sparse but confirmed
        let spoof = spoofed(25_000, 4);
        let mut target = clean.clone();
        target.union_with(&spoof);
        let cfg = SpoofFilterConfig::default();
        let mut rng = component_rng(5, "filter");
        let report = filter_spoofed(&target, &clean, &cfg, &mut rng);
        // Even with n24 < m, overlap with the clean sources protects them.
        for a in clean.iter() {
            assert!(report.filtered.contains(a), "lost confirmed addr {a}");
        }
    }

    #[test]
    fn heavier_spoofing_raises_threshold() {
        let clean = real_usage(60, 50);
        let mut light = clean.clone();
        light.union_with(&spoofed(5_000, 6));
        let mut heavy = clean.clone();
        heavy.union_with(&spoofed(200_000, 7));
        let cfg = SpoofFilterConfig::default();
        let mut rng = component_rng(8, "filter");
        let r_light = filter_spoofed(&light, &clean, &cfg, &mut rng);
        let r_heavy = filter_spoofed(&heavy, &clean, &cfg, &mut rng);
        assert!(r_heavy.s_estimate > r_light.s_estimate);
        assert!(r_heavy.m >= r_light.m);
    }
}
