//! The study's time model: quarters and overlapping 12-month windows.
//!
//! Data run from 1 Jan 2011 to 30 June 2014 (§4.3). Growth is analysed over
//! overlapping 12-month windows starting every three months: the first
//! window starts 1 Jan 2011, the last starts 1 Jul 2013 and ends 30 June
//! 2014 — eleven windows in total, each associated with its end date
//! ("for the first window the observed and estimated used space is
//! associated with 31 December, 2011").

use std::fmt;

/// A calendar quarter, counted from 2011 Q1 (`Quarter(0)` = Jan–Mar 2011).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quarter(pub u8);

impl Quarter {
    /// The first quarter of the study, Jan–Mar 2011.
    pub const FIRST: Quarter = Quarter(0);
    /// The last full quarter of the study, Apr–Jun 2014.
    pub const LAST: Quarter = Quarter(13);

    /// Creates a quarter from a calendar year and quarter-of-year (1–4).
    ///
    /// # Panics
    ///
    /// Panics if the date precedes 2011 or `q` is outside `1..=4`.
    pub fn from_year_quarter(year: u16, q: u8) -> Self {
        assert!(year >= 2011, "study starts in 2011, got {year}");
        assert!((1..=4).contains(&q), "quarter-of-year {q} out of range");
        Quarter(((year - 2011) * 4 + u16::from(q) - 1) as u8)
    }

    /// The calendar year this quarter falls in.
    pub fn year(&self) -> u16 {
        2011 + u16::from(self.0) / 4
    }

    /// Quarter of the year, 1–4.
    pub fn quarter_of_year(&self) -> u8 {
        self.0 % 4 + 1
    }

    /// The month name of the quarter's last month (the paper labels series
    /// points by window end month: "Dec 2011", "Mar 2012", …).
    pub fn end_month_name(&self) -> &'static str {
        match self.quarter_of_year() {
            1 => "Mar",
            2 => "Jun",
            3 => "Sep",
            _ => "Dec",
        }
    }

    /// Years elapsed since the end of the first window (31 Dec 2011),
    /// measured at this quarter's end. Used as the x-axis in growth fits.
    pub fn years_since_first_window_end(&self) -> f64 {
        (f64::from(self.0) - 3.0) * 0.25
    }

    /// All quarters of the study in order.
    pub fn all() -> impl Iterator<Item = Quarter> {
        (Self::FIRST.0..=Self::LAST.0).map(Quarter)
    }
}

impl fmt::Display for Quarter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.end_month_name(), self.year())
    }
}

/// An observation window of consecutive quarters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// First quarter in the window.
    pub start: Quarter,
    /// Length in quarters (4 for the paper's 12-month windows).
    pub len: u8,
}

impl TimeWindow {
    /// The window's quarters in order.
    pub fn quarters(&self) -> impl Iterator<Item = Quarter> {
        let s = self.start.0;
        (s..s + self.len).map(Quarter)
    }

    /// The last quarter of the window (statistics are associated with its
    /// end date).
    pub fn end(&self) -> Quarter {
        Quarter(self.start.0 + self.len - 1)
    }

    /// Whether `q` falls inside the window.
    pub fn contains(&self, q: Quarter) -> bool {
        q.0 >= self.start.0 && q.0 < self.start.0 + self.len
    }

    /// The label the paper attaches to this window: its end date.
    pub fn label(&self) -> String {
        self.end().to_string()
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window ending {}", self.end())
    }
}

/// The paper's eleven overlapping 12-month windows (§4.3): starts every
/// quarter from Jan 2011 to Jul 2013 inclusive.
pub fn paper_windows() -> Vec<TimeWindow> {
    (0..=10)
        .map(|s| TimeWindow {
            start: Quarter(s),
            len: 4,
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn quarter_calendar_round_trip() {
        let q = Quarter::from_year_quarter(2012, 3);
        assert_eq!(q, Quarter(6));
        assert_eq!(q.year(), 2012);
        assert_eq!(q.quarter_of_year(), 3);
        assert_eq!(q.to_string(), "Sep 2012");
        assert_eq!(Quarter(0).to_string(), "Mar 2011");
        assert_eq!(Quarter::LAST.to_string(), "Jun 2014");
    }

    #[test]
    fn study_has_fourteen_quarters() {
        assert_eq!(Quarter::all().count(), 14);
        assert_eq!(Quarter::LAST.year(), 2014);
        assert_eq!(Quarter::LAST.quarter_of_year(), 2);
    }

    #[test]
    fn paper_windows_match_section_4_3() {
        let ws = paper_windows();
        assert_eq!(ws.len(), 11);
        // First window: Jan–Dec 2011, associated with 31 Dec 2011.
        assert_eq!(ws[0].label(), "Dec 2011");
        assert_eq!(ws[0].quarters().count(), 4);
        // Last window: Jul 2013 – Jun 2014.
        assert_eq!(ws[10].start, Quarter::from_year_quarter(2013, 3));
        assert_eq!(ws[10].end(), Quarter::LAST);
        assert_eq!(ws[10].label(), "Jun 2014");
        // Consecutive windows overlap by three quarters.
        for pair in ws.windows(2) {
            let shared = pair[0].quarters().filter(|q| pair[1].contains(*q)).count();
            assert_eq!(shared, 3);
        }
    }

    #[test]
    fn window_contains_and_end() {
        let w = TimeWindow {
            start: Quarter(2),
            len: 4,
        };
        assert!(w.contains(Quarter(2)));
        assert!(w.contains(Quarter(5)));
        assert!(!w.contains(Quarter(6)));
        assert!(!w.contains(Quarter(1)));
        assert_eq!(w.end(), Quarter(5));
    }

    #[test]
    fn years_axis_anchored_at_first_window_end() {
        // Window 0 ends at quarter 3 (Dec 2011) → 0 years.
        assert_eq!(Quarter(3).years_since_first_window_end(), 0.0);
        // Jun 2014 (quarter 13) is 2.5 years later.
        assert_eq!(Quarter(13).years_since_first_window_end(), 2.5);
    }

    #[test]
    #[should_panic]
    fn pre_study_year_panics() {
        Quarter::from_year_quarter(2010, 4);
    }
}
