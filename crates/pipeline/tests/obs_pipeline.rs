//! Tracing coverage for the pipeline stages: the traced variants must emit
//! schema-valid events and counters without changing stage results.

use ghosts_net::{AddrSet, RoutedTable};
use ghosts_obs::{validate_jsonl, LogicalClock, Recorder};
use ghosts_pipeline::dataset::{SourceDataset, WindowData};
use ghosts_pipeline::filter::{filter_to_routed, filter_to_routed_traced};
use ghosts_pipeline::spoof_filter::{filter_spoofed, filter_spoofed_traced, SpoofFilterConfig};
use ghosts_pipeline::time::{Quarter, TimeWindow};
use ghosts_stats::rng::component_rng;
use rand::Rng;
use std::sync::Arc;

fn traced_root() -> (Recorder, ghosts_obs::Scope) {
    let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
    let root = rec.root("pipeline");
    (rec, root)
}

#[test]
fn filter_trace_records_drop_breakdown() {
    let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().unwrap()]);
    let set: AddrSet = [
        0x08080808u32, // routed
        0x0a000001,    // reserved (10/8)
        0x09090909,    // unrouted
    ]
    .into_iter()
    .collect();

    let (rec, root) = traced_root();
    let (kept_traced, stats_traced) = filter_to_routed_traced(&set, &routed, &root);
    let (kept_plain, stats_plain) = filter_to_routed(&set, &routed);
    assert_eq!(kept_traced.len(), kept_plain.len());
    assert_eq!(stats_traced, stats_plain);

    let log = rec.flush();
    assert_eq!(log.counters.get("filter.dropped_reserved"), Some(&1));
    assert_eq!(log.counters.get("filter.dropped_unrouted"), Some(&1));
    assert_eq!(log.counters.get("filter.kept"), Some(&1));
    assert_eq!(log.events_named("filter").count(), 1);
    validate_jsonl(&log.to_jsonl()).expect("filter trace is schema-valid");
}

/// Dense, low-last-byte usage inside 60/8 (same shape as the spoof-filter
/// unit tests).
fn real_usage(per_subnet: u32, subnets: u32) -> AddrSet {
    let mut s = AddrSet::new();
    for sub in 0..subnets {
        let base = (60u32 << 24) | (sub << 8);
        for i in 1..=per_subnet {
            s.insert(base + (i % 200));
        }
    }
    s
}

fn spoofed(count: u64, seed: u64) -> AddrSet {
    let mut rng = component_rng(seed, "spoof-obs-test");
    let mut s = AddrSet::new();
    while s.len() < count {
        let addr: u32 = rng.gen();
        if !ghosts_net::bogons::is_reserved(addr) {
            s.insert(addr);
        }
    }
    s
}

#[test]
fn spoof_filter_trace_matches_untraced_result() {
    let clean = real_usage(60, 40);
    let mut target = clean.clone();
    target.union_with(&spoofed(20_000, 11));
    let cfg = SpoofFilterConfig::default();

    let (rec, root) = traced_root();
    let mut rng_a = component_rng(21, "spoof-obs");
    let traced = filter_spoofed_traced(&target, &clean, &cfg, &mut rng_a, &root);
    let mut rng_b = component_rng(21, "spoof-obs");
    let plain = filter_spoofed(&target, &clean, &cfg, &mut rng_b);
    assert_eq!(traced.filtered.len(), plain.filtered.len());
    assert_eq!(traced.removed_subnets, plain.removed_subnets);

    let log = rec.flush();
    assert_eq!(log.events_named("spoof_filter").count(), 1);
    assert_eq!(
        log.counters.get("spoof.removed_subnets"),
        Some(&traced.removed_subnets)
    );
    assert_eq!(
        log.counters.get("spoof.removed_stage1"),
        Some(&traced.removed_stage1)
    );
    validate_jsonl(&log.to_jsonl()).expect("spoof trace is schema-valid");
}

#[test]
fn window_aggregation_trace_records_per_source_sizes() {
    let wd = WindowData {
        window: TimeWindow {
            start: Quarter(0),
            len: 4,
        },
        sources: vec![
            SourceDataset::new("A", [0x01000001u32, 0x01000002].into_iter().collect(), true),
            SourceDataset::new("B", [0x01000002u32, 0x02000001].into_iter().collect(), true),
        ],
    };
    let (rec, root) = traced_root();
    let obs = ghosts_pipeline::aggregate::window_observed_traced(&wd, &root);
    assert_eq!(obs, ghosts_pipeline::aggregate::window_observed(&wd));

    let log = rec.flush();
    assert_eq!(log.counters.get("aggregate.windows"), Some(&1));
    assert_eq!(log.counters.get("aggregate.union_ips"), Some(&obs.ips));
    assert_eq!(log.events_named("window_observed").count(), 1);
    assert_eq!(log.events_named("source_observed").count(), 2);
    validate_jsonl(&log.to_jsonl()).expect("aggregate trace is schema-valid");
}
