//! Property-based tests for the pipeline: spoof-filter safety invariants
//! and window algebra.

use ghosts_net::AddrSet;
use ghosts_pipeline::spoof_filter::{filter_spoofed, SpoofFilterConfig};
use ghosts_pipeline::time::{paper_windows, Quarter, TimeWindow};
use ghosts_stats::rng::component_rng;
use proptest::prelude::*;

proptest! {
    /// The spoof filter never removes an address confirmed by a spoof-free
    /// source, never *adds* addresses, and removes at least as much with
    /// stage 2 enabled as without.
    #[test]
    fn spoof_filter_safety(
        clean_subnets in proptest::collection::hash_set(0u32..400, 1..30),
        spoof_offsets in proptest::collection::hash_set(0u32..0x00ff_ffff, 0..500),
        seed in 0u64..1000,
    ) {
        // Clean usage: dense /24s inside 60/8.
        let mut clean = AddrSet::new();
        for &s in &clean_subnets {
            let base = (60u32 << 24) | (s << 8);
            for i in 1..40u32 {
                clean.insert(base + i);
            }
        }
        // Target = clean + spoofs scattered over 61/8 (unused space).
        let mut target = clean.clone();
        for &o in &spoof_offsets {
            target.insert((61u32 << 24) | o);
        }

        let cfg = SpoofFilterConfig::default();
        let mut rng = component_rng(seed, "prop-filter");
        let report = filter_spoofed(&target, &clean, &cfg, &mut rng);

        // No fabrication.
        for a in report.filtered.iter() {
            prop_assert!(target.contains(a), "fabricated address {a}");
        }
        // Confirmed addresses survive.
        for a in clean.iter() {
            prop_assert!(report.filtered.contains(a), "lost confirmed {a}");
        }
        // Accounting adds up.
        prop_assert_eq!(
            report.filtered.len() + report.removed_stage1 + report.removed_stage2,
            target.len()
        );

        // Stage-2 ablation removes no more than the full filter keeps.
        let cfg1 = SpoofFilterConfig { bayes_stage2: false, ..SpoofFilterConfig::default() };
        let mut rng1 = component_rng(seed, "prop-filter");
        let report1 = filter_spoofed(&target, &clean, &cfg1, &mut rng1);
        prop_assert!(report1.filtered.len() >= report.filtered.len());
        prop_assert_eq!(report1.removed_stage2, 0);
    }

    /// Window algebra: quarters() length, containment and end() agree.
    #[test]
    fn window_algebra(start in 0u8..12, len in 1u8..5) {
        let w = TimeWindow { start: Quarter(start), len };
        let qs: Vec<Quarter> = w.quarters().collect();
        prop_assert_eq!(qs.len(), len as usize);
        prop_assert_eq!(*qs.last().unwrap(), w.end());
        for q in &qs {
            prop_assert!(w.contains(*q));
        }
        prop_assert!(!w.contains(Quarter(start + len)));
        if start > 0 {
            prop_assert!(!w.contains(Quarter(start - 1)));
        }
    }

    /// Quarter calendar round-trips.
    #[test]
    fn quarter_roundtrip(year in 2011u16..2016, q in 1u8..=4) {
        let quarter = Quarter::from_year_quarter(year, q);
        prop_assert_eq!(quarter.year(), year);
        prop_assert_eq!(quarter.quarter_of_year(), q);
    }
}

#[test]
fn paper_windows_cover_the_study_exactly_once_per_quarter_start() {
    let ws = paper_windows();
    for (i, w) in ws.iter().enumerate() {
        assert_eq!(w.start, Quarter(i as u8));
        assert_eq!(w.len, 4);
    }
}
