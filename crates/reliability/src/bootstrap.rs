//! Parametric bootstrap around one contingency table.
//!
//! The fitted log-linear model gives an expected count `μ̂_s` for every
//! observed capture history `s`; replicate `r` redraws every cell as
//! `Poisson(μ̂_s)` from its own deterministic RNG stream
//! ([`ghosts_stats::rng::indexed_rng`]`(seed, "bootstrap", r)`), then
//! re-runs the *whole* estimation pipeline — model selection included — on
//! the resampled table. The replicate distribution of `N̂` yields a
//! bootstrap SE, percentile and basic intervals, and a selection-stability
//! histogram: how often each model won, the quantity You et al. 2021 show
//! drives CR interval miscalibration when it is unstable.
//!
//! Replicates run through [`ghosts_core::try_par_map`] with per-replicate
//! failure isolation: a replicate whose refit fails (or panics) is
//! recorded in [`BootstrapSummary::failures`] and excluded from the
//! distribution; it never aborts the run. Because stream identity is a
//! pure function of `(seed, replicate)`, the summary is bit-identical at
//! every thread count.

use ghosts_core::{
    estimate_table, estimate_table_with_fit, ContingencyTable, CrConfig, EstimateError, Parallelism,
};
use ghosts_obs::json::JsonValue;
use ghosts_obs::FieldValue;
use ghosts_stats::rng::indexed_rng;
use ghosts_stats::summary::{basic_interval, mean, percentile_interval};
use ghosts_stats::Poisson;
use std::collections::BTreeMap;

/// Knobs of one bootstrap run.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Number of replicates `B`.
    pub replicates: u64,
    /// Master seed; replicate `r` draws from stream `(seed, "bootstrap", r)`.
    pub seed: u64,
    /// Interval miss mass: the percentile/basic intervals are
    /// `[q_{α/2}, q_{1−α/2}]` (0.05 → 95% intervals).
    pub alpha: f64,
    /// Worker threads for the replicate fan-out. Replicate streams are
    /// index-derived, so every setting yields bit-identical summaries.
    pub parallelism: Parallelism,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            replicates: 200,
            seed: 0,
            alpha: 0.05,
            parallelism: Parallelism::Auto,
        }
    }
}

/// A replicate whose refit failed (fit/selection error or worker panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateFailure {
    /// The replicate index (also its RNG stream index).
    pub replicate: u64,
    /// What went wrong.
    pub error: String,
}

/// The summarised replicate distribution of one bootstrap run.
#[derive(Debug, Clone)]
pub struct BootstrapSummary {
    /// The original-data point estimate `N̂` the intervals centre on.
    pub point: f64,
    /// Observed individuals in the original table.
    pub observed: u64,
    /// The model selected on the original data.
    pub model: String,
    /// The interval miss mass α.
    pub alpha: f64,
    /// Requested replicates `B`.
    pub requested: u64,
    /// Replicates that completed.
    pub completed: u64,
    /// Replicates that failed, with their errors (deterministic order).
    pub failures: Vec<ReplicateFailure>,
    /// Completed replicate estimates `N̂_r`, in replicate order.
    pub estimates: Vec<f64>,
    /// Bootstrap standard error (sample SD of the replicate estimates);
    /// `None` with fewer than two completed replicates.
    pub se: Option<f64>,
    /// Percentile interval `[q_{α/2}, q_{1−α/2}]`; `None` when no
    /// replicate completed.
    pub percentile: Option<(f64, f64)>,
    /// Basic (reverse-percentile) interval around `point`.
    pub basic: Option<(f64, f64)>,
    /// How often each model won re-selection across replicates, by
    /// bracket notation — the selection-stability histogram.
    pub selection_counts: BTreeMap<String, u64>,
}

impl BootstrapSummary {
    /// Fraction of requested replicates that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.requested == 0 {
            return 0.0;
        }
        self.completed as f64 / self.requested as f64
    }

    /// How often the original-data model also won on a replicate.
    pub fn selection_agreement(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let same = self.selection_counts.get(&self.model).copied().unwrap_or(0);
        same as f64 / self.completed as f64
    }

    /// A compact, key-sorted JSON rendering (golden-pinnable: every field
    /// is a pure function of the inputs and the seed).
    pub fn to_json(&self) -> String {
        fn interval(v: Option<(f64, f64)>) -> JsonValue {
            match v {
                Some((lo, hi)) => {
                    JsonValue::Array(vec![JsonValue::Float(lo), JsonValue::Float(hi)])
                }
                None => JsonValue::Null,
            }
        }
        let failures = JsonValue::Array(
            self.failures
                .iter()
                .map(|f| {
                    JsonValue::Object(vec![
                        ("replicate".to_string(), JsonValue::UInt(f.replicate)),
                        ("error".to_string(), JsonValue::Str(f.error.clone())),
                    ])
                })
                .collect(),
        );
        let selection = JsonValue::Object(
            self.selection_counts
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                .collect(),
        );
        JsonValue::Object(vec![
            ("alpha".to_string(), JsonValue::Float(self.alpha)),
            ("basic".to_string(), interval(self.basic)),
            ("completed".to_string(), JsonValue::UInt(self.completed)),
            (
                "estimates".to_string(),
                JsonValue::Array(
                    self.estimates
                        .iter()
                        .map(|&e| JsonValue::Float(e))
                        .collect(),
                ),
            ),
            ("failures".to_string(), failures),
            ("model".to_string(), JsonValue::Str(self.model.clone())),
            ("observed".to_string(), JsonValue::UInt(self.observed)),
            ("percentile".to_string(), interval(self.percentile)),
            ("point".to_string(), JsonValue::Float(self.point)),
            ("requested".to_string(), JsonValue::UInt(self.requested)),
            (
                "se".to_string(),
                self.se.map_or(JsonValue::Null, JsonValue::Float),
            ),
            ("selection_counts".to_string(), selection),
        ])
        .to_compact()
    }
}

/// Resamples the observed cells of `expected` into a fresh table:
/// `count_s ~ Poisson(μ̂_s)` per observed history, zero-mean cells stay
/// empty. `expected` is in mask order `1..2^t`, the layout of
/// [`ghosts_core::CrFit::expected_cells`].
fn resample_table(t: usize, expected: &[f64], rng: &mut impl rand::Rng) -> ContingencyTable {
    let mut table = ContingencyTable::new(t);
    for (idx, &mu) in expected.iter().enumerate() {
        let mask = (idx + 1) as u16;
        if mu > 0.0 && mu.is_finite() {
            table.record_n(mask, Poisson::new(mu).sample(rng));
        }
    }
    table
}

/// Sample standard deviation (n−1 denominator), the bootstrap SE
/// convention; `None` for fewer than two values.
fn sample_sd(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some((ss / (xs.len() - 1) as f64).sqrt())
}

/// Runs a parametric bootstrap around one table.
///
/// Fits and selects on the original data (without the degradation ladder —
/// a parametric bootstrap needs a parametric model to resample from), then
/// runs `bcfg.replicates` resample→reselect→refit cycles and summarises
/// the replicate distribution. Replicate refits inherit `cfg` with
/// tracing disabled (the summary itself is emitted as one `reliability`
/// event on `cfg.obs`) and sequential inner selection when the replicate
/// fan-out is parallel.
///
/// # Errors
///
/// Only the *original* fit can fail ([`EstimateError`]); replicate
/// failures are isolated into [`BootstrapSummary::failures`].
pub fn bootstrap_table(
    table: &ContingencyTable,
    limit: Option<u64>,
    cfg: &CrConfig,
    bcfg: &BootstrapConfig,
) -> Result<BootstrapSummary, EstimateError> {
    let fit = estimate_table_with_fit(table, limit, cfg)?;
    let t = table.num_sources();

    let mut replicate_cfg = cfg.clone();
    replicate_cfg.obs = ghosts_obs::Scope::disabled();
    replicate_cfg.parallelism = Parallelism::SEQUENTIAL;
    if bcfg.parallelism.threads() > 1 && bcfg.replicates > 1 {
        replicate_cfg.selection.parallelism = Parallelism::SEQUENTIAL;
    }

    let indices: Vec<u64> = (0..bcfg.replicates).collect();
    let outcomes = ghosts_core::try_par_map(bcfg.parallelism, &indices, |_, &r| {
        let mut rng = indexed_rng(bcfg.seed, "bootstrap", r);
        let resampled = resample_table(t, &fit.expected_cells, &mut rng);
        estimate_table(&resampled, limit, &replicate_cfg)
            .map(|est| (est.total, est.model))
            .map_err(|e| e.to_string())
    });
    cfg.obs
        .volatile_add("bootstrap.par_map_tasks", indices.len() as u64);
    cfg.obs.volatile_max(
        "bootstrap.par_map_workers",
        bcfg.parallelism.threads().min(indices.len().max(1)) as u64,
    );

    let mut estimates = Vec::new();
    let mut failures = Vec::new();
    let mut selection_counts: BTreeMap<String, u64> = BTreeMap::new();
    for (r, outcome) in outcomes.into_iter().enumerate() {
        // try_par_map's own Err is a worker panic; the inner Err is an
        // isolated refit failure. Both bucket identically.
        match outcome.unwrap_or_else(Err) {
            Ok((total, model)) => {
                estimates.push(total);
                *selection_counts.entry(model).or_insert(0) += 1;
            }
            Err(error) => failures.push(ReplicateFailure {
                replicate: r as u64,
                error,
            }),
        }
    }

    let summary = BootstrapSummary {
        point: fit.estimate.total,
        observed: fit.estimate.observed,
        model: fit.estimate.model.clone(),
        alpha: bcfg.alpha,
        requested: bcfg.replicates,
        completed: estimates.len() as u64,
        se: sample_sd(&estimates),
        percentile: percentile_interval(&estimates, bcfg.alpha).ok(),
        basic: basic_interval(fit.estimate.total, &estimates, bcfg.alpha).ok(),
        selection_counts,
        estimates,
        failures,
    };

    if cfg.obs.is_enabled() {
        let mut fields = vec![
            ("point", FieldValue::F64(summary.point)),
            ("model", FieldValue::Str(summary.model.clone())),
            ("requested", FieldValue::U64(summary.requested)),
            ("completed", FieldValue::U64(summary.completed)),
            ("failed", FieldValue::U64(summary.failures.len() as u64)),
            (
                "selection_agreement",
                FieldValue::F64(summary.selection_agreement()),
            ),
        ];
        if let Some(se) = summary.se {
            fields.push(("se", FieldValue::F64(se)));
        }
        if let Some((lo, hi)) = summary.percentile {
            fields.push(("percentile_lo", FieldValue::F64(lo)));
            fields.push(("percentile_hi", FieldValue::F64(hi)));
        }
        cfg.obs.reliability("bootstrap_summary", &fields);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    /// A well-behaved three-source table with mild pairwise dependence.
    fn synthetic_table(n: u32, seed: u64) -> ContingencyTable {
        let mut rng = component_rng(seed, "bootstrap-test");
        let mut table = ContingencyTable::new(3);
        for _ in 0..n {
            let sociable = rng.gen_bool(0.4);
            let mut mask = 0u16;
            for j in 0..3 {
                let p = if sociable { 0.6 } else { 0.25 };
                if rng.gen_bool(p) {
                    mask |= 1 << j;
                }
            }
            table.record(mask);
        }
        table
    }

    fn cfg() -> CrConfig {
        CrConfig {
            min_stratum_observed: 0,
            ..CrConfig::paper()
        }
    }

    fn bcfg(replicates: u64) -> BootstrapConfig {
        BootstrapConfig {
            replicates,
            seed: 42,
            alpha: 0.05,
            parallelism: Parallelism::SEQUENTIAL,
        }
    }

    #[test]
    fn bootstrap_summary_is_consistent() {
        let table = synthetic_table(4_000, 1);
        let summary = bootstrap_table(&table, None, &cfg(), &bcfg(60)).expect("bootstraps");
        assert_eq!(summary.requested, 60);
        assert_eq!(
            summary.completed + summary.failures.len() as u64,
            summary.requested
        );
        assert!(summary.completed > 0, "replicates completed");
        let (lo, hi) = summary.percentile.expect("interval");
        assert!(lo <= hi);
        // The replicate distribution should bracket the point estimate.
        assert!(lo <= summary.point && summary.point <= hi + summary.point * 0.5);
        let se = summary.se.expect("se");
        assert!(se > 0.0 && se.is_finite());
        let total: u64 = summary.selection_counts.values().sum();
        assert_eq!(total, summary.completed);
    }

    #[test]
    fn bootstrap_is_deterministic_across_thread_counts() {
        let table = synthetic_table(2_000, 2);
        let seq = bootstrap_table(&table, None, &cfg(), &bcfg(24)).expect("seq");
        let par = bootstrap_table(
            &table,
            None,
            &cfg(),
            &BootstrapConfig {
                parallelism: Parallelism::Fixed(4),
                ..bcfg(24)
            },
        )
        .expect("par");
        assert_eq!(seq.to_json(), par.to_json(), "byte-identical summaries");
    }

    #[test]
    fn replicate_failures_are_isolated() {
        let table = synthetic_table(2_000, 3);
        // A one-iteration Newton budget fails most replicate refits but
        // must never abort the bootstrap (degrade=false keeps failures
        // honest instead of walking the ladder).
        let mut strict = cfg();
        strict.degrade = false;
        strict.fit.iteration_budget = Some(1);
        match bootstrap_table(&table, None, &strict, &bcfg(8)) {
            // The original fit itself may fail under the budget — also fine.
            Err(EstimateError::Fit(_)) => {}
            Ok(summary) => {
                assert_eq!(
                    summary.completed + summary.failures.len() as u64,
                    summary.requested
                );
            }
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    #[test]
    fn zero_replicates_yield_empty_distribution() {
        let table = synthetic_table(1_500, 4);
        let summary = bootstrap_table(&table, None, &cfg(), &bcfg(0)).expect("fits");
        assert_eq!(summary.completed, 0);
        assert!(summary.se.is_none());
        assert!(summary.percentile.is_none());
        assert!(summary.basic.is_none());
        assert!(summary.point.is_finite());
    }
}
