//! Nominal-vs-empirical CI coverage curves over synthetic truth regimes.
//!
//! A confidence interval procedure is *calibrated* when a nominal 95%
//! interval contains the truth in 95% of repetitions. The paper never
//! measures this; You et al. 2021 show CR intervals can be far off. Here
//! the truth is manufactured: a [`TruthModel`] draws `K` independent
//! observation tables from known capture probabilities, each [`Regime`]
//! distorts the generation the way real measurement pathologies would —
//! spoofed phantom singletons (§4.4), NAT aliasing that merges individuals
//! behind one address, and source dropout mirroring the PR 4
//! `drop-source` fault class — and the configured [`CiMethod`] produces an
//! interval per repetition. The empirical coverage is the fraction of
//! completed repetitions whose interval contains the regime's effective
//! truth.
//!
//! Repetition `r` of regime `g` draws from the deterministic stream
//! `(seed, regime_label, r)`, so coverage points are bit-identical at
//! every thread count.

use crate::bootstrap::{bootstrap_table, BootstrapConfig};
use crate::crossval::CvErrors;
use ghosts_core::{
    profile_interval_opts, select_model, CellModel, ContingencyTable, CrConfig, Parallelism,
};
use ghosts_obs::FieldValue;
use ghosts_stats::rng::{derive_indexed_seed, indexed_rng};
use ghosts_stats::summary::mean;
use rand::Rng;

/// The known ground truth repetitions are drawn from: `population`
/// individuals, each captured by source `j` independently with probability
/// `capture_probs[j]`.
#[derive(Debug, Clone)]
pub struct TruthModel {
    /// True number of individuals.
    pub population: u64,
    /// Per-source capture probabilities (length = number of sources).
    pub capture_probs: Vec<f64>,
}

/// One distortion regime applied to the generated observations.
#[derive(Debug, Clone)]
pub struct Regime {
    /// Stable label (trace events, manifest rows, RNG stream identity).
    pub name: String,
    /// Phantom singletons injected per real individual: `spoof_rate · N`
    /// fake individuals each observed by exactly one random source.
    /// Phantoms are not part of the truth — they bias the estimator up.
    pub spoof_rate: f64,
    /// Probability that an individual shares a NAT with the previous one:
    /// their capture histories merge (OR) into a single observable
    /// individual, shrinking the effective truth.
    pub nat_density: f64,
    /// Trailing sources removed after generation (the generation-level
    /// mirror of the PR 4 `drop-source` fault plans): observations by
    /// dropped sources vanish, the truth is unchanged.
    pub dropped_sources: usize,
}

impl Regime {
    /// The undistorted baseline.
    pub fn clean(name: &str) -> Self {
        Self {
            name: name.to_string(),
            spoof_rate: 0.0,
            nat_density: 0.0,
            dropped_sources: 0,
        }
    }
}

/// How the per-repetition interval is produced.
#[derive(Debug, Clone, Copy)]
pub enum CiMethod {
    /// Profile-likelihood interval on the selected model at
    /// `α = 1 − nominal`.
    Profile,
    /// Percentile interval of an inner parametric bootstrap with this many
    /// replicates (each repetition seeds its own replicate streams).
    BootstrapPercentile {
        /// Inner bootstrap replicates per repetition.
        replicates: u64,
    },
}

impl CiMethod {
    fn label(self) -> &'static str {
        match self {
            CiMethod::Profile => "profile",
            CiMethod::BootstrapPercentile { .. } => "bootstrap-percentile",
        }
    }
}

/// Knobs of one coverage sweep.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Nominal coverage level (0.95 for 95% intervals).
    pub nominal: f64,
    /// Outer Monte-Carlo repetitions `K` per regime.
    pub repetitions: u64,
    /// Master seed; repetition `r` of regime `g` draws from
    /// `(seed, regime_name, r)`.
    pub seed: u64,
    /// Interval procedure under test.
    pub method: CiMethod,
    /// Worker threads for the repetition fan-out.
    pub parallelism: Parallelism,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        Self {
            nominal: 0.95,
            repetitions: 100,
            seed: 0,
            method: CiMethod::Profile,
            parallelism: Parallelism::Auto,
        }
    }
}

/// One point of the coverage curve: a regime's empirical coverage at the
/// nominal level.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    /// The regime's label.
    pub regime: String,
    /// Nominal coverage the intervals claim.
    pub nominal: f64,
    /// Fraction of completed repetitions whose interval contained the
    /// effective truth.
    pub empirical: f64,
    /// Outer repetitions requested.
    pub repetitions: u64,
    /// Repetitions whose interval was produced.
    pub completed: u64,
    /// Repetitions whose estimation failed (isolated, not fatal).
    pub failed: u64,
    /// Mean effective truth across repetitions (NAT merging makes it
    /// stochastic).
    pub mean_truth: f64,
    /// Mean point estimate over completed repetitions.
    pub mean_estimate: f64,
    /// RMSE/MAE of the point estimates against the per-repetition truths.
    pub errors: Option<CvErrors>,
}

/// One generated repetition: the observation table and its effective truth.
struct Draw {
    table: ContingencyTable,
    truth: u64,
}

/// Generates one repetition of `truth` under `regime` from `rng`.
fn generate(truth: &TruthModel, regime: &Regime, rng: &mut impl Rng) -> Draw {
    let t = truth.capture_probs.len();
    let kept = t - regime.dropped_sources;
    let kept_mask: u16 = ((1u32 << kept) - 1) as u16;

    // Real individuals, with NAT merging into the previous history.
    let mut histories: Vec<u16> = Vec::with_capacity(truth.population as usize);
    for _ in 0..truth.population {
        let mut mask = 0u16;
        for (j, &p) in truth.capture_probs.iter().enumerate() {
            if rng.gen_bool(p) {
                mask |= 1 << j;
            }
        }
        match histories.last_mut() {
            Some(last) if regime.nat_density > 0.0 && rng.gen_bool(regime.nat_density) => {
                *last |= mask;
            }
            _ => histories.push(mask),
        }
    }
    let effective_truth = histories.len() as u64;

    // Spoofed phantoms: singletons on a random source, not in the truth.
    let phantoms = (regime.spoof_rate * truth.population as f64).round() as u64;
    for _ in 0..phantoms {
        let j = rng.gen_range(0..t);
        histories.push(1 << j);
    }

    // Source dropout: project histories onto the kept sources.
    let table = ContingencyTable::from_histories(kept, histories.iter().map(|&h| h & kept_mask));
    Draw {
        table,
        truth: effective_truth,
    }
}

/// The outcome of one repetition's estimation.
struct Repetition {
    truth: u64,
    outcome: Result<(f64, f64, f64), String>, // (estimate, lo, hi)
}

/// Estimates one drawn table and produces its interval.
fn estimate_draw(
    draw: &Draw,
    cfg: &CrConfig,
    ccfg: &CoverageConfig,
    regime: &Regime,
    repetition: u64,
) -> Result<(f64, f64, f64), String> {
    // Synthetic truths have no routed-space limit: plain Poisson cells.
    let cell_model = CellModel::Poisson;
    let alpha = 1.0 - ccfg.nominal;
    match ccfg.method {
        CiMethod::Profile => {
            let mut sel_opts = cfg.selection.clone();
            sel_opts.obs = ghosts_obs::Scope::disabled();
            let sel =
                select_model(&draw.table, cell_model, &sel_opts).map_err(|e| e.to_string())?;
            let range = profile_interval_opts(
                &draw.table,
                &sel.model,
                cell_model,
                alpha,
                &cfg.fit,
                &sel_opts.obs,
            )
            .map_err(|e| e.to_string())?;
            Ok((range.point, range.lower, range.upper))
        }
        CiMethod::BootstrapPercentile { replicates } => {
            let bcfg = BootstrapConfig {
                replicates,
                // Every repetition gets its own independent replicate
                // stream family.
                seed: derive_indexed_seed(ccfg.seed, &regime.name, repetition),
                alpha,
                parallelism: Parallelism::SEQUENTIAL,
            };
            let mut inner_cfg = cfg.clone();
            inner_cfg.truncated = false;
            inner_cfg.obs = ghosts_obs::Scope::disabled();
            let summary =
                bootstrap_table(&draw.table, None, &inner_cfg, &bcfg).map_err(|e| e.to_string())?;
            let (lo, hi) = summary
                .percentile
                .ok_or_else(|| "no completed bootstrap replicates".to_string())?;
            Ok((summary.point, lo, hi))
        }
    }
}

/// Sweeps every regime: `K` repetitions each, interval per repetition,
/// empirical coverage per regime. Repetitions fan out through the
/// deterministic parallel engine (inner selection forced sequential);
/// per-repetition failures are isolated and counted.
///
/// When `cfg.obs` is enabled each regime emits one `coverage_point`
/// reliability event, so `repro` manifests carry the whole curve.
pub fn coverage_curves(
    truth: &TruthModel,
    regimes: &[Regime],
    cfg: &CrConfig,
    ccfg: &CoverageConfig,
) -> Vec<CoveragePoint> {
    assert!(
        ccfg.nominal > 0.0 && ccfg.nominal < 1.0,
        "nominal level must be in (0, 1)"
    );
    for regime in regimes {
        assert!(
            truth.capture_probs.len() - regime.dropped_sources >= 2,
            "regime '{}' drops too many sources",
            regime.name
        );
    }
    let mut inner = cfg.clone();
    inner.obs = ghosts_obs::Scope::disabled();
    inner.parallelism = Parallelism::SEQUENTIAL;
    if ccfg.parallelism.threads() > 1 {
        inner.selection.parallelism = Parallelism::SEQUENTIAL;
    }

    let mut points = Vec::with_capacity(regimes.len());
    for regime in regimes {
        let indices: Vec<u64> = (0..ccfg.repetitions).collect();
        let reps: Vec<Repetition> =
            ghosts_core::try_par_map(ccfg.parallelism, &indices, |_, &r| {
                let mut rng = indexed_rng(ccfg.seed, &regime.name, r);
                let draw = generate(truth, regime, &mut rng);
                let outcome = estimate_draw(&draw, &inner, ccfg, regime, r);
                Repetition {
                    truth: draw.truth,
                    outcome,
                }
            })
            .into_iter()
            .enumerate()
            .map(|(r, res)| {
                res.unwrap_or_else(|panic| Repetition {
                    // Regenerate the truth for a panicked repetition so the
                    // mean-truth bookkeeping stays deterministic.
                    truth: {
                        let mut rng = indexed_rng(ccfg.seed, &regime.name, r as u64);
                        generate(truth, regime, &mut rng).truth
                    },
                    outcome: Err(panic),
                })
            })
            .collect();

        let mut covered = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut truths = Vec::new();
        let mut estimates = Vec::new();
        let mut est_truths = Vec::new();
        for rep in &reps {
            truths.push(rep.truth as f64);
            match &rep.outcome {
                Ok((estimate, lo, hi)) => {
                    completed += 1;
                    estimates.push(*estimate);
                    est_truths.push(rep.truth as f64);
                    let truth_f = rep.truth as f64;
                    if *lo <= truth_f && truth_f <= *hi {
                        covered += 1;
                    }
                }
                Err(_) => failed += 1,
            }
        }
        let empirical = if completed == 0 {
            0.0
        } else {
            covered as f64 / completed as f64
        };
        let errors = if estimates.is_empty() {
            None
        } else {
            Some(CvErrors {
                rmse: ghosts_stats::summary::rmse(&estimates, &est_truths),
                mae: ghosts_stats::summary::mae(&estimates, &est_truths),
                cases: estimates.len(),
            })
        };
        let point = CoveragePoint {
            regime: regime.name.clone(),
            nominal: ccfg.nominal,
            empirical,
            repetitions: ccfg.repetitions,
            completed,
            failed,
            mean_truth: mean(&truths),
            mean_estimate: mean(&estimates),
            errors,
        };
        if cfg.obs.is_enabled() {
            let mut fields = vec![
                ("regime", FieldValue::Str(point.regime.clone())),
                ("method", FieldValue::Str(ccfg.method.label().to_string())),
                ("nominal", FieldValue::F64(point.nominal)),
                ("empirical", FieldValue::F64(point.empirical)),
                ("repetitions", FieldValue::U64(point.repetitions)),
                ("completed", FieldValue::U64(point.completed)),
                ("failed", FieldValue::U64(point.failed)),
                ("mean_truth", FieldValue::F64(point.mean_truth)),
                ("mean_estimate", FieldValue::F64(point.mean_estimate)),
            ];
            if let Some(e) = point.errors {
                fields.push(("rmse", FieldValue::F64(e.rmse)));
                fields.push(("mae", FieldValue::F64(e.mae)));
            }
            cfg.obs.reliability("coverage_point", &fields);
        }
        points.push(point);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> TruthModel {
        TruthModel {
            population: 1_200,
            capture_probs: vec![0.45, 0.35, 0.3],
        }
    }

    fn ccfg(repetitions: u64) -> CoverageConfig {
        CoverageConfig {
            nominal: 0.95,
            repetitions,
            seed: 7,
            method: CiMethod::Profile,
            parallelism: Parallelism::SEQUENTIAL,
        }
    }

    fn cfg() -> CrConfig {
        CrConfig {
            min_stratum_observed: 0,
            truncated: false,
            ..CrConfig::paper()
        }
    }

    #[test]
    fn clean_regime_coverage_is_high() {
        let points = coverage_curves(&truth(), &[Regime::clean("baseline")], &cfg(), &ccfg(30));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.completed + p.failed, 30);
        assert!(p.completed > 0);
        // Generous Monte-Carlo bound: a calibrated 95% interval should
        // cover well over half the time even at K=30.
        assert!(
            p.empirical > 0.6,
            "clean empirical coverage {} too low",
            p.empirical
        );
        // The clean regime's truth is exactly the population.
        assert!((p.mean_truth - 1_200.0).abs() < 1e-9);
    }

    #[test]
    fn nat_shrinks_truth_and_dropout_keeps_it() {
        let nat = Regime {
            nat_density: 0.3,
            ..Regime::clean("nat")
        };
        let drop = Regime {
            dropped_sources: 1,
            ..Regime::clean("drop")
        };
        let points = coverage_curves(&truth(), &[nat, drop], &cfg(), &ccfg(10));
        assert!(points[0].mean_truth < 1_000.0, "NAT merges individuals");
        assert!((points[1].mean_truth - 1_200.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_is_thread_invariant() {
        let regimes = [Regime::clean("baseline")];
        let seq = coverage_curves(&truth(), &regimes, &cfg(), &ccfg(12));
        let par = coverage_curves(
            &truth(),
            &regimes,
            &cfg(),
            &CoverageConfig {
                parallelism: Parallelism::Fixed(4),
                ..ccfg(12)
            },
        );
        assert_eq!(seq[0].empirical.to_bits(), par[0].empirical.to_bits());
        assert_eq!(
            seq[0].mean_estimate.to_bits(),
            par[0].mean_estimate.to_bits()
        );
        assert_eq!(seq[0].completed, par[0].completed);
    }

    #[test]
    #[should_panic]
    fn dropping_too_many_sources_panics() {
        let bad = Regime {
            dropped_sources: 2,
            ..Regime::clean("bad")
        };
        coverage_curves(&truth(), &[bad], &cfg(), &ccfg(2));
    }
}
